//! Property-based tests over the core DSPatch data structures and the
//! simulator substrate, using proptest.

use dspatch::{
    quantize_fraction, CompressedPattern, DsPatch, DsPatchConfig, PageBuffer, PredictionQuality,
    SaturatingCounter, SpatialPattern,
};
use dspatch_types::{
    AccessKind, Addr, BandwidthQuartile, MemoryAccess, PageAddr, Pc, PrefetchContext, Prefetcher,
};
use proptest::prelude::*;

proptest! {
    /// Anchoring and un-anchoring a pattern by the same offset is the
    /// identity, for every pattern and offset.
    #[test]
    fn anchor_round_trips(bits in any::<u64>(), offset in 0usize..64) {
        let pattern = SpatialPattern::from_bits(bits);
        prop_assert_eq!(pattern.anchor(offset).unanchor(offset), pattern);
        prop_assert_eq!(pattern.anchor(offset).popcount(), pattern.popcount());
    }

    /// Anchoring is invariant to which access of the set triggers first in
    /// the sense that the *set* of anchored deltas equals the set of offsets
    /// minus the trigger, modulo 64.
    #[test]
    fn anchored_pattern_contains_trigger_at_bit_zero(bits in any::<u64>(), offset in 0usize..64) {
        let mut pattern = SpatialPattern::from_bits(bits);
        pattern.set(offset);
        prop_assert!(pattern.anchor(offset).get(0));
    }

    /// Compression never loses a touched block: decompressing the compressed
    /// pattern always covers the original.
    #[test]
    fn compression_is_a_superset(bits in any::<u64>()) {
        let pattern = SpatialPattern::from_bits(bits);
        let expanded = pattern.compress().decompress();
        prop_assert_eq!(expanded.bits() & pattern.bits(), pattern.bits());
        // And the overprediction is bounded by one line per touched block.
        let over = CompressedPattern::compression_mispredictions(pattern);
        prop_assert!(over <= pattern.compress().popcount());
    }

    /// OR-ing patterns never reduces coverage of either operand; AND-ing
    /// never exceeds either operand.
    #[test]
    fn or_and_monotonicity(a in any::<u64>(), b in any::<u64>()) {
        let pa = SpatialPattern::from_bits(a);
        let pb = SpatialPattern::from_bits(b);
        let or = pa | pb;
        let and = pa & pb;
        prop_assert_eq!(or.bits() & pa.bits(), pa.bits());
        prop_assert_eq!(or.bits() & pb.bits(), pb.bits());
        prop_assert!(and.popcount() <= pa.popcount().min(pb.popcount()));
        prop_assert!(or.popcount() >= pa.popcount().max(pb.popcount()));
    }

    /// The quantizer never inverts ordering: a strictly larger fraction maps
    /// to an equal or higher quartile.
    #[test]
    fn quantizer_is_monotonic(n1 in 0u32..=64, n2 in 0u32..=64, d in 1u32..=64) {
        let (low, high) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(quantize_fraction(low, d) <= quantize_fraction(high, d));
    }

    /// Accuracy and coverage are always within their defining bounds.
    #[test]
    fn prediction_quality_counts_are_consistent(pred in any::<u64>(), real in any::<u64>()) {
        let q = PredictionQuality::measure(
            SpatialPattern::from_bits(pred),
            SpatialPattern::from_bits(real),
        );
        prop_assert!(q.accurate <= q.predicted);
        prop_assert!(q.accurate <= q.real);
        prop_assert!(q.accuracy_fraction() <= 1.0 && q.accuracy_fraction() >= 0.0);
        prop_assert!(q.coverage_fraction() <= 1.0 && q.coverage_fraction() >= 0.0);
    }

    /// Saturating counters stay within [0, max] under any operation sequence.
    #[test]
    fn saturating_counter_stays_in_range(ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut counter = SaturatingCounter::two_bit();
        for op in ops {
            if op {
                counter.increment();
            } else {
                counter.decrement();
            }
            prop_assert!(counter.value() <= counter.max());
        }
    }

    /// The page buffer never tracks more pages than its capacity and always
    /// reports triggers for the first access to a segment.
    #[test]
    fn page_buffer_respects_capacity(
        capacity in 1usize..32,
        accesses in proptest::collection::vec((0u64..64, 0usize..64, 0u64..1024), 1..300),
    ) {
        let mut pb = PageBuffer::new(capacity);
        for (page, offset, pc) in accesses {
            let outcome = pb.record_access(PageAddr::new(page), offset, Pc::new(pc));
            if let Some(trigger) = outcome.trigger {
                prop_assert_eq!(trigger.offset, offset);
            }
            prop_assert!(pb.len() <= capacity);
        }
    }

    /// DSPatch never prefetches outside the page of the triggering access,
    /// never prefetches the trigger line itself, and issues at most 63 lines
    /// per trigger — for arbitrary access streams and bandwidth levels.
    #[test]
    fn dspatch_prefetches_stay_in_page(
        stream in proptest::collection::vec((0u64..32, 0u64..64, 0u64..8, 0u8..4), 1..400),
    ) {
        let mut prefetcher = DsPatch::new(DsPatchConfig::default());
        let mut sink = dspatch_types::PrefetchSink::new();
        for (page, offset, pc, bw) in stream {
            let addr = Addr::new(page * 4096 + offset * 64);
            let access = MemoryAccess::new(Pc::new(0x400 + pc * 8), addr, AccessKind::Load);
            let ctx = PrefetchContext::default()
                .with_bandwidth(BandwidthQuartile::from_bits(bw));
            sink.clear();
            prefetcher.on_access(&access, &ctx, &mut sink);
            prop_assert!(sink.len() < 64);
            for request in sink.requests() {
                prop_assert_eq!(request.line.page(), addr.page());
                prop_assert_ne!(request.line, addr.line());
            }
        }
    }
}

proptest! {
    /// A counter built with any maximum saturates exactly at that maximum:
    /// `max` increments reach it, further increments are no-ops, and the
    /// same holds symmetrically for decrements at zero.
    #[test]
    fn saturating_counter_saturates_at_both_bounds(max in 1u8..=16, extra in 0u8..32) {
        let mut counter = SaturatingCounter::new(max);
        for _ in 0..max {
            counter.increment();
        }
        prop_assert_eq!(counter.value(), max);
        prop_assert!(counter.is_saturated());
        for _ in 0..extra {
            prop_assert_eq!(counter.increment(), max);
        }
        for _ in 0..max {
            counter.decrement();
        }
        prop_assert_eq!(counter.value(), 0);
        prop_assert!(counter.is_zero());
        for _ in 0..extra {
            prop_assert_eq!(counter.decrement(), 0);
        }
    }

    /// Increment and decrement return exactly the value a subsequent
    /// `value()` call reports, for any operation sequence.
    #[test]
    fn saturating_counter_returns_its_new_value(
        max in 1u8..=16,
        ops in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut counter = SaturatingCounter::new(max);
        for op in ops {
            let returned = if op { counter.increment() } else { counter.decrement() };
            prop_assert_eq!(returned, counter.value());
            prop_assert!(counter.value() <= counter.max());
        }
    }

    /// The quantizer hits the exact quartile boundaries of the paper
    /// (Section 3.2): `floor(4n/d)` clamped to Q3.
    #[test]
    fn quantizer_matches_quartile_boundaries(n in 0u32..=2048, d in 1u32..=2048) {
        let expected = match (u64::from(n) * 4) / u64::from(d) {
            0 => BandwidthQuartile::Q0,
            1 => BandwidthQuartile::Q1,
            2 => BandwidthQuartile::Q2,
            _ => BandwidthQuartile::Q3,
        };
        prop_assert_eq!(quantize_fraction(n, d), expected);
    }

    /// Quantization only depends on the ratio: scaling numerator and
    /// denominator by the same factor never changes the quartile.
    #[test]
    fn quantizer_is_scale_invariant(n in 0u32..=256, d in 1u32..=256, k in 1u32..=64) {
        prop_assert_eq!(quantize_fraction(n * k, d * k), quantize_fraction(n, d));
    }

    /// Compression is idempotent: once a pattern has been through a
    /// compress→decompress round trip, further round trips are the identity.
    #[test]
    fn compression_round_trip_is_idempotent(bits in any::<u64>()) {
        let compressed = SpatialPattern::from_bits(bits).compress();
        let expanded = compressed.decompress();
        prop_assert_eq!(expanded.compress(), compressed);
        prop_assert_eq!(expanded.compress().decompress(), expanded);
    }

    /// Compressing keeps per-block occupancy: block `b` of the compressed
    /// pattern is set iff any of the two lines of block `b` was touched.
    #[test]
    fn compression_tracks_block_occupancy(bits in any::<u64>()) {
        let pattern = SpatialPattern::from_bits(bits);
        let compressed = pattern.compress();
        for block in 0..32 {
            let touched = pattern.get(2 * block) || pattern.get(2 * block + 1);
            prop_assert_eq!(compressed.get(block), touched);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The binary trace format preserves **every** record field — pc, addr,
    /// kind, `gap` and the `dependent` flag — for arbitrary records, through
    /// both the materializing reader and the streaming file source.
    #[test]
    fn trace_io_round_trips_gap_and_dependent_flags(
        raw in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), any::<u32>(), any::<bool>()),
            0..150,
        ),
    ) {
        use dspatch_trace::io::{read_trace, write_trace};
        use dspatch_trace::{Trace, TraceRecord};

        let records: Vec<TraceRecord> = raw
            .into_iter()
            .map(|(pc, addr, store, gap, dependent)| {
                let record = if store {
                    TraceRecord::store(pc, addr)
                } else {
                    TraceRecord::load(pc, addr)
                };
                record.with_gap(gap).with_dependent(dependent)
            })
            .collect();
        let trace = Trace::new("prop-io", records);
        let mut buffer = Vec::new();
        prop_assert!(write_trace(&trace, &mut buffer).is_ok());
        let read = read_trace(buffer.as_slice()).expect("round trip");
        prop_assert_eq!(&read, &trace);
        // The flags byte holds exactly two bits; nothing else may leak in.
        for (a, b) in read.records.iter().zip(trace.records.iter()) {
            prop_assert_eq!(a.gap, b.gap);
            prop_assert_eq!(a.dependent, b.dependent);
        }
    }

    /// Heterogeneous mix generation is a pure function of its arguments
    /// (count, cores, seed) and every generated mix has exactly the
    /// requested core count, drawn from the memory-intensive pool.
    #[test]
    fn heterogeneous_mixes_are_deterministic_with_consistent_cores(
        count in 0usize..12,
        cores in 1usize..6,
        seed in any::<u64>(),
    ) {
        use dspatch_trace::heterogeneous_mixes;

        let a = heterogeneous_mixes(count, cores, seed);
        let b = heterogeneous_mixes(count, cores, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), count);
        let pool: std::collections::BTreeSet<String> =
            dspatch_trace::memory_intensive_suite()
                .into_iter()
                .map(|w| w.name)
                .collect();
        for mix in &a {
            prop_assert_eq!(mix.cores(), cores);
            prop_assert_eq!(mix.workloads.len(), cores);
            for workload in &mix.workloads {
                prop_assert!(
                    pool.contains(&workload.name),
                    "mix workload '{}' is not memory-intensive",
                    workload.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hostile bytes never panic the trace openers. A valid binary trace is
    /// arbitrarily truncated and byte-flipped; `FileTraceSource::open` and
    /// `open_trace_source` must then either succeed — and the stream drain
    /// exactly as many records as the header promises — or return a typed
    /// [`dspatch_trace::TraceFileError`]. (A damaged magic demotes the file
    /// to the text importer, so this also feeds binary garbage through the
    /// ChampSim parser.) The in-memory `read_trace` gets the same bytes.
    #[test]
    fn mutated_binary_traces_fail_typed_or_stream_exactly(
        raw in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), any::<u32>()),
            0..40,
        ),
        cut in any::<u64>(),
        flip_at in any::<u64>(),
        flip_to in any::<u8>(),
        mutation in 0u8..4,
    ) {
        use dspatch_trace::io::{open_trace_source, read_trace, write_trace, FileTraceSource};
        use dspatch_trace::{LengthHint, Trace, TraceRecord, TraceSource};

        let records: Vec<TraceRecord> = raw
            .into_iter()
            .map(|(pc, addr, store, gap)| {
                let record = if store {
                    TraceRecord::store(pc, addr)
                } else {
                    TraceRecord::load(pc, addr)
                };
                record.with_gap(gap)
            })
            .collect();
        let mut bytes = Vec::new();
        write_trace(&Trace::new("fuzz", records), &mut bytes).expect("serialize");
        // Mutation 0 leaves the trace intact so the Ok path is exercised too.
        if mutation == 1 || mutation == 3 {
            let keep = (cut % (bytes.len() as u64 + 1)) as usize;
            bytes.truncate(keep);
        }
        if (mutation == 2 || mutation == 3) && !bytes.is_empty() {
            let at = (flip_at % bytes.len() as u64) as usize;
            bytes[at] = flip_to;
        }

        // read_trace consumes the bytes directly: typed error or full trace.
        let _ = read_trace(bytes.as_slice());

        let path = std::env::temp_dir().join(format!(
            "dspatch_fuzz_binary_{}.dspt",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).expect("temp file");
        // Ok at open time must mean the whole stream is replayable: the
        // openers promise "validated once, never fails mid-run".
        if let Ok(mut source) = FileTraceSource::open(&path) {
            let promised = match source.meta().accesses {
                LengthHint::Exact(n) => n,
                other => return Err(TestCaseError::fail(format!("binary source hint {other:?}"))),
            };
            let mut drained = 0u64;
            while source.next_record().is_some() {
                drained += 1;
            }
            prop_assert_eq!(drained, promised);
        }
        if let Ok(mut source) = open_trace_source(&path) {
            let mut drained = 0u64;
            while source.next_record().is_some() {
                drained += 1;
            }
            if let LengthHint::Exact(promised) = source.meta().accesses {
                prop_assert_eq!(drained, promised);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Hostile text never panics the ChampSim importer: for arbitrary lines
    /// (printable junk and well-formed records interleaved),
    /// `ChampsimTextSource::open` either returns a typed error whose line
    /// number points into the file, or succeeds — and then replay yields
    /// exactly the validated record count.
    #[test]
    fn hostile_champsim_text_fails_typed_or_streams_exactly(
        lines in proptest::collection::vec(
            (0usize..16, any::<u32>(), any::<u32>(), 0u32..50).prop_map(
                |(variant, pc, addr, gap)| match variant {
                    // Well-formed records in the accepted spellings.
                    0 => format!("0x{pc:x} {addr} L {gap}"),
                    1 => format!("{pc} 0x{addr:x} S"),
                    2 => format!("{pc} {addr} load {gap} d"),
                    3 => format!("  {pc} {addr} WRITE 0 DEP  "),
                    // Blanks and comments (skipped by the parser).
                    4 => String::new(),
                    5 => format!("# comment {pc}"),
                    // Malformed in every structural way the parser checks.
                    6 => format!("{pc}"),
                    7 => format!("{pc} {addr}"),
                    8 => format!("{pc} {addr} X {gap}"),
                    9 => format!("{pc} {addr} L {gap} q"),
                    10 => format!("{pc} {addr} L {gap} d extra"),
                    11 => format!("0xzz {addr} L"),
                    12 => format!("{pc} 99999999999999999999999999 L"),
                    13 => format!("{pc},{addr},L"),
                    14 => "\u{7f}\u{1b}[31mjunk\tbytes".to_owned(),
                    _ => format!("-{pc} {addr} L"),
                }
            ),
            0..30,
        ),
    ) {
        use dspatch_trace::io::ChampsimTextSource;
        use dspatch_trace::{LengthHint, TraceFileError, TraceSource};

        let path = std::env::temp_dir().join(format!(
            "dspatch_fuzz_text_{}.trace",
            std::process::id()
        ));
        let text: String = lines.iter().map(|line| format!("{line}\n")).collect();
        std::fs::write(&path, text).expect("temp file");
        match ChampsimTextSource::open(&path) {
            Ok(mut source) => {
                let promised = match source.meta().accesses {
                    LengthHint::Exact(n) => n,
                    other => {
                        return Err(TestCaseError::fail(format!("text source hint {other:?}")))
                    }
                };
                let mut drained = 0u64;
                while source.next_record().is_some() {
                    drained += 1;
                }
                prop_assert_eq!(drained, promised);
            }
            Err(TraceFileError::Malformed { line, .. }) => {
                prop_assert!(line >= 1 && line <= lines.len() as u64);
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error class {other:?}")))
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator conserves instructions (every trace record and gap is
    /// executed exactly once) for arbitrary small traces.
    #[test]
    fn simulator_conserves_instructions(
        accesses in proptest::collection::vec((0u64..128, 0u64..64, 0u32..30), 1..200),
    ) {
        use dspatch_sim::{SimulationBuilder, SystemConfig};
        use dspatch_trace::{Trace, TraceRecord};
        use dspatch_types::NullPrefetcher;

        let records: Vec<TraceRecord> = accesses
            .iter()
            .map(|&(page, offset, gap)| {
                TraceRecord::load(0x400, page * 4096 + offset * 64).with_gap(gap)
            })
            .collect();
        let trace = Trace::new("prop", records);
        let expected = trace.instruction_count();
        let result = SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(trace, NullPrefetcher::new())
            .run();
        prop_assert_eq!(result.cores[0].instructions, expected);
        prop_assert!(result.cores[0].finish_cycle > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Hostile bytes never panic the JSON parser now sitting on a socket
    /// boundary: a valid `CampaignSpec` document is spliced, truncated,
    /// byte-flipped, and seeded with the classic parser traps (duplicate
    /// keys, lone surrogates, nesting bombs). `Json::parse` must either
    /// succeed or return a typed [`JsonError`] whose offset points into the
    /// document, and `CampaignSpec::parse` must turn every surviving
    /// document into a spec or a readable error — never a panic.
    #[test]
    fn mutated_spec_corpora_fail_typed_or_parse(
        corpus in 0usize..3,
        mutation in 0u8..6,
        cut in any::<u64>(),
        flip_at in any::<u64>(),
        flip_to in any::<u8>(),
        splice_at in any::<u64>(),
        trap in 0usize..7,
    ) {
        use dspatch_harness::json::{Json, JsonError, JsonErrorKind, MAX_DEPTH};
        use dspatch_harness::CampaignSpec;

        let seed = match corpus {
            0 => CampaignSpec::template().to_json().render(),
            1 => concat!(
                r#"{"name": "fuzz", "cells": [{"label": "c", "#,
                r#""targets": {"category": "sensitive"}, "#,
                r#""prefetchers": ["dspatch"], "configs": [{"base": "single"}]}]}"#
            ).to_string(),
            _ => r#"{"scale": {"accesses_per_workload": 600, "threads": 2}}"#.to_string(),
        };
        let traps: [&str; 7] = [
            r#""\ud800""#,
            r#""\udc00x""#,
            r#"{"k": 1, "k": 2}"#,
            "\u{0}",
            "1e400",
            "{\"a\":",
            "\"\\u",
        ];

        let mut bytes = seed.into_bytes();
        // Mutation 0 leaves the document intact so the Ok path is hit too.
        if mutation == 1 || mutation == 3 {
            let keep = (cut % (bytes.len() as u64 + 1)) as usize;
            bytes.truncate(keep);
        }
        if (mutation == 2 || mutation == 3) && !bytes.is_empty() {
            let at = (flip_at % bytes.len() as u64) as usize;
            bytes[at] = flip_to;
        }
        if mutation == 4 {
            let at = (splice_at % (bytes.len() as u64 + 1)) as usize;
            let mut spliced = bytes[..at].to_vec();
            spliced.extend_from_slice(traps[trap].as_bytes());
            spliced.extend_from_slice(&bytes[at..]);
            bytes = spliced;
        }
        if mutation == 5 {
            // Nesting bomb wrapped around the document.
            let depth = MAX_DEPTH + 2;
            let mut bomb = "[".repeat(depth).into_bytes();
            bomb.extend_from_slice(&bytes);
            bomb.extend_from_slice("]".repeat(depth).as_bytes());
            bytes = bomb;
        }

        // The parser takes &str; non-UTF-8 mutants exercise the lossy path a
        // network server would apply before parsing.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        match Json::parse(&text) {
            Ok(doc) => {
                // A parsed document must re-render to something re-parseable.
                prop_assert!(Json::parse(&doc.render()).is_ok());
            }
            Err(JsonError { kind, offset, message }) => {
                prop_assert!(offset <= text.len(), "offset {offset} past end");
                prop_assert!(!message.is_empty());
                let _ = kind.label();
                if mutation == 5 {
                    prop_assert_eq!(kind, JsonErrorKind::DepthExceeded);
                }
            }
        }
        // Spec parsing layers its own validation on top; it must never panic.
        let _ = CampaignSpec::parse(&text);
    }
}
