//! Cross-crate integration tests: trace generation → prefetchers → simulator
//! → harness metrics, exercising the public API the way the examples and the
//! benchmark harness do.

use dspatch_harness::experiments;
use dspatch_harness::runner::{run_mix, run_workload, PrefetcherKind, RunScale};
use dspatch_sim::SystemConfig;
use dspatch_trace::workloads::{category_suite, suite, WorkloadCategory};
use dspatch_trace::{heterogeneous_mixes, homogeneous_mixes};

fn tiny_scale() -> RunScale {
    RunScale {
        accesses_per_workload: 1_500,
        workloads_per_category: 1,
        mixes: 1,
        threads: 4,
        sim_workers: 0,
        sampling: None,
    }
}

#[test]
fn every_prefetcher_kind_completes_a_simulation() {
    let scale = tiny_scale();
    let workload = &category_suite(WorkloadCategory::Ispec17)[0];
    let config = SystemConfig::single_thread();
    for kind in [
        PrefetcherKind::Baseline,
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::SmsIso,
        PrefetcherKind::Spp,
        PrefetcherKind::Espp,
        PrefetcherKind::Ebop,
        PrefetcherKind::Dspatch,
        PrefetcherKind::DspatchPlusSpp,
        PrefetcherKind::Streamer,
    ] {
        let result = run_workload(workload, kind, &config, &scale);
        assert_eq!(result.cores.len(), 1, "{}", kind.label());
        assert!(result.cores[0].instructions > 0, "{}", kind.label());
        assert!(result.cores[0].ipc() > 0.0, "{}", kind.label());
    }
}

#[test]
fn prefetchers_reduce_exposed_misses_on_spatial_workloads() {
    // On a Cloud-style spatial workload, DSPatch+SPP must cover a visible
    // fraction of L2 accesses and must not be slower than the baseline.
    let scale = RunScale {
        accesses_per_workload: 6_000,
        ..tiny_scale()
    };
    let workload = &category_suite(WorkloadCategory::Cloud)[0];
    let config = SystemConfig::single_thread();
    let baseline = run_workload(workload, PrefetcherKind::Baseline, &config, &scale);
    let dspatch = run_workload(workload, PrefetcherKind::DspatchPlusSpp, &config, &scale);
    let accounting = dspatch.total_accounting();
    assert!(accounting.prefetches_issued > 0);
    assert!(
        accounting.coverage() > 0.05,
        "expected some coverage, got {:.3}",
        accounting.coverage()
    );
    let speedup = dspatch.speedup_over(&baseline);
    assert!(
        speedup > 0.97,
        "prefetching must not meaningfully slow the workload down ({speedup:.3})"
    );
}

#[test]
fn simulations_are_deterministic() {
    let scale = tiny_scale();
    let workload = &category_suite(WorkloadCategory::Hpc)[0];
    let config = SystemConfig::single_thread();
    let a = run_workload(workload, PrefetcherKind::DspatchPlusSpp, &config, &scale);
    let b = run_workload(workload, PrefetcherKind::DspatchPlusSpp, &config, &scale);
    assert_eq!(a.cores[0].instructions, b.cores[0].instructions);
    assert_eq!(a.cores[0].finish_cycle, b.cores[0].finish_cycle);
    assert_eq!(a.dram.cas_commands, b.dram.cas_commands);
}

#[test]
fn multiprogrammed_mixes_run_on_four_cores() {
    let scale = tiny_scale();
    let config = SystemConfig::multi_programmed();
    let homogeneous = &homogeneous_mixes(4)[0];
    let heterogeneous = &heterogeneous_mixes(1, 4, 7)[0];
    for mix in [homogeneous, heterogeneous] {
        let result = run_mix(mix, PrefetcherKind::DspatchPlusSpp, &config, &scale);
        assert_eq!(result.cores.len(), 4);
        assert!(result.cores.iter().all(|c| c.instructions > 0));
    }
}

#[test]
fn workload_suite_covers_every_category() {
    let all = suite();
    assert_eq!(all.len(), 75);
    for category in WorkloadCategory::ALL {
        assert!(all.iter().any(|w| w.category == category));
    }
}

#[test]
fn table_experiments_render_reports() {
    let table1 = experiments::table1_storage().render();
    assert!(table1.contains("3.6 KB"));
    let table3 = experiments::table3_prefetcher_storage().render();
    assert!(table3.contains("DSPatch") && table3.contains("SMS"));
}

#[test]
fn figure11_analysis_runs_without_simulation() {
    let study = experiments::fig11_delta_and_compression(&tiny_scale());
    assert!(study.plus_minus_one_fraction > 0.0 && study.plus_minus_one_fraction <= 1.0);
    let total: f64 = study.misprediction_buckets.iter().sum();
    assert!((total - 1.0).abs() < 1e-6);
}

#[test]
fn dspatch_standalone_and_adjunct_have_expected_storage_relationship() {
    let dspatch = PrefetcherKind::Dspatch.build().storage_bits();
    let spp = PrefetcherKind::Spp.build().storage_bits();
    let combined = PrefetcherKind::DspatchPlusSpp.build().storage_bits();
    assert_eq!(combined, dspatch + spp);
    // The paper: DSPatch uses less than SPP, and less than 1/20th of SMS.
    assert!(dspatch < spp);
    let sms = PrefetcherKind::Sms.build().storage_bits();
    assert!(dspatch * 20 < sms);
}
