//! Golden parity tests for the Campaign API redesign: every figure function
//! now routes through the shared campaign engine, and these tests assert
//! the results are *identical* (bit-exact, thanks to deterministic traces
//! and simulation) to the pre-redesign direct computation — per-workload
//! baseline + candidate runs composed exactly the way the old bespoke
//! per-figure loops did — plus a JSON↔spec round-trip property test.

use dspatch_harness::campaign::{
    CampaignSpec, CellSpec, ConfigBase, ConfigSpec, PrefetcherSel, ScaleSpec, TargetSelector,
};
use dspatch_harness::figures::FigureId;
use dspatch_harness::runner::{geomean, run_mix, run_workload, PrefetcherKind, RunScale};
use dspatch_prefetchers::{SmsConfig, SmsPrefetcher};
use dspatch_sim::{DramSpeedGrade, SimulationBuilder, SystemConfig};
use dspatch_trace::homogeneous_mixes;
use dspatch_trace::workloads::{category_suite, suite, WorkloadCategory};
use proptest::prelude::*;

fn tiny() -> RunScale {
    RunScale {
        accesses_per_workload: 800,
        workloads_per_category: 1,
        mixes: 1,
        threads: 4,
        sim_workers: 0,
        sampling: None,
    }
}

/// The pre-redesign per-workload speedup loop: baseline then candidate,
/// simulated fresh for every (workload, kind) pair.
fn direct_speedups(
    workloads: &[dspatch_trace::WorkloadSpec],
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> Vec<f64> {
    workloads
        .iter()
        .map(|workload| {
            let baseline = run_workload(workload, PrefetcherKind::Baseline, config, scale);
            run_workload(workload, kind, config, scale).speedup_over(&baseline)
        })
        .collect()
}

#[test]
fn fig4_matches_the_pre_redesign_direct_computation() {
    let scale = tiny();
    let fig = dspatch_harness::experiments::fig4_baseline_prefetchers(&scale);
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
    ];
    let config = SystemConfig::single_thread();
    let mut expected = Vec::new();
    let mut per_kind_all: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for category in WorkloadCategory::ALL {
        let workloads = scale.select_workloads(category_suite(category));
        if workloads.is_empty() {
            continue;
        }
        let mut deltas = Vec::new();
        for (k, kind) in kinds.iter().enumerate() {
            let speedups = direct_speedups(&workloads, *kind, &config, &scale);
            per_kind_all[k].extend(speedups.iter().copied());
            deltas.push(geomean(&speedups) - 1.0);
        }
        expected.push((category.label().to_owned(), deltas));
    }
    expected.push((
        "GEOMEAN".to_owned(),
        per_kind_all.iter().map(|s| geomean(s) - 1.0).collect(),
    ));
    assert_eq!(
        fig.rows, expected,
        "campaign-backed fig4 must be bit-identical"
    );
}

#[test]
fn fig17_matches_the_pre_redesign_direct_computation() {
    let scale = tiny();
    let fig = dspatch_harness::experiments::fig17_homogeneous(&scale);
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let mixes = scale.select_mixes(homogeneous_mixes(4));
    let config = SystemConfig::multi_programmed();
    let expected: Vec<(String, PrefetcherKind, f64)> = kinds
        .iter()
        .map(|kind| {
            let speedups: Vec<f64> = mixes
                .iter()
                .map(|mix| {
                    let baseline = run_mix(mix, PrefetcherKind::Baseline, &config, &scale);
                    run_mix(mix, *kind, &config, &scale).speedup_over(&baseline)
                })
                .collect();
            (
                "homogeneous DDR4-2133".to_owned(),
                *kind,
                geomean(&speedups) - 1.0,
            )
        })
        .collect();
    assert_eq!(
        fig.rows, expected,
        "campaign-backed fig17 must be bit-identical"
    );
}

#[test]
fn fig19_matches_the_pre_redesign_direct_computation() {
    let scale = tiny();
    let fig = dspatch_harness::experiments::fig19_ablation(&scale);
    let config = SystemConfig::single_thread().with_dram(1, DramSpeedGrade::Ddr4_1600);
    let workloads = scale.select_workloads(dspatch_trace::workloads::memory_intensive_suite());
    for (kind, delta) in &fig.rows {
        let expected = geomean(&direct_speedups(&workloads, *kind, &config, &scale)) - 1.0;
        assert_eq!(*delta, expected, "{}", kind.label());
    }
}

#[test]
fn fig5_matches_the_pre_redesign_direct_computation() {
    let scale = tiny();
    let fig = dspatch_harness::experiments::fig5_sms_storage_sweep(&scale);
    let workloads = scale.select_workloads(suite());
    let config = SystemConfig::single_thread();
    for (entries, _, delta) in &fig.rows {
        let speedups: Vec<f64> = workloads
            .iter()
            .map(|workload| {
                let baseline = run_workload(workload, PrefetcherKind::Baseline, &config, &scale);
                let result = SimulationBuilder::new(config.clone())
                    .with_core(
                        workload.generate(scale.accesses_per_workload),
                        SmsPrefetcher::new(SmsConfig::with_pht_entries(*entries)),
                    )
                    .run();
                result.speedup_over(&baseline)
            })
            .collect();
        assert_eq!(*delta, geomean(&speedups) - 1.0, "PHT={entries}");
    }
}

#[test]
fn every_named_figure_runs_through_the_registry() {
    let scale = RunScale {
        accesses_per_workload: 600,
        workloads_per_category: 1,
        mixes: 1,
        threads: 4,
        sim_workers: 0,
        sampling: None,
    };
    for id in FigureId::ALL {
        let table = id.run(&scale);
        let text = table.render();
        assert!(!text.trim().is_empty(), "{} rendered empty", id.name());
        assert!(
            !table.headers.is_empty(),
            "{} produced a headerless table",
            id.name()
        );
        // Every format stays available for every figure.
        assert!(dspatch_harness::Json::parse(&table.to_json().render()).is_ok());
        assert!(table.to_csv().lines().count() >= 1);
    }
}

/// Deterministic pseudo-random spec builder for the round-trip property.
fn arbitrary_spec(seed: u64) -> CampaignSpec {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move |bound: u64| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound.max(1)
    };
    let kinds = PrefetcherKind::ALL;
    let categories = WorkloadCategory::ALL;
    let cell_count = 1 + next(3) as usize;
    let cells = (0..cell_count)
        .map(|i| {
            let targets = match next(6) {
                0 => TargetSelector::Suite,
                1 => TargetSelector::MemoryIntensive,
                2 => TargetSelector::Category(categories[next(9) as usize]),
                3 => TargetSelector::Workloads(vec![
                    format!("workload-{}", next(100)),
                    "name with \"quotes\" and ≥ unicode".to_owned(),
                ]),
                4 => TargetSelector::HomogeneousMixes {
                    cores: 1 + next(8) as usize,
                },
                // Seeds ≤ 2^53 serialize as JSON numbers, larger ones as
                // decimal strings; exercise both encodings.
                _ => TargetSelector::HeterogeneousMixes {
                    count: next(100) as usize,
                    cores: 1 + next(8) as usize,
                    seed: if next(2) == 0 {
                        next(1 << 53)
                    } else {
                        u64::MAX - next(1 << 40)
                    },
                },
            };
            let mut prefetchers: Vec<PrefetcherSel> = (0..1 + next(4))
                .map(|_| PrefetcherSel::Kind(kinds[next(15) as usize]))
                .collect();
            if next(2) == 0 {
                prefetchers.push(PrefetcherSel::SmsPht(1 << next(15)));
            }
            let mut config = if next(2) == 0 {
                ConfigSpec::single_thread()
            } else {
                ConfigSpec::multi_programmed()
            };
            if next(2) == 0 {
                config =
                    config.with_dram(1 + next(2) as usize, DramSpeedGrade::ALL[next(3) as usize]);
            }
            if next(2) == 0 {
                config = config.with_llc_bytes(1 << (20 + next(4)));
            }
            CellSpec {
                label: format!("cell {i} · τ={}", next(1000)),
                targets,
                prefetchers,
                config,
                baseline: next(2) == 0,
            }
        })
        .collect();
    let scale = match next(3) {
        0 => None,
        1 => Some(ScaleSpec::Preset(
            ["smoke", "quick", "full"][next(3) as usize].to_owned(),
        )),
        _ => Some(ScaleSpec::Custom {
            accesses_per_workload: next(100_000) as usize,
            workloads_per_category: next(10) as usize,
            mixes: next(10) as usize,
            threads: if next(2) == 0 {
                None
            } else {
                Some(1 + next(64) as usize)
            },
            sim_workers: next(3) as usize,
            sampling: if next(2) == 0 {
                None
            } else {
                Some(dspatch_harness::SamplingPlan {
                    warmup_accesses: 1 + next(5_000),
                    interval_accesses: 1 + next(2_000),
                    intervals: 1 + next(8) as u32,
                    seed: next(1 << 30),
                })
            },
        }),
    };
    CampaignSpec {
        name: format!("campaign \"{seed}\" — line1\nline2\t≥50%"),
        scale,
        cells,
    }
}

proptest! {
    #[test]
    fn spec_round_trips_through_json(seed in 0u64..512) {
        let spec = arbitrary_spec(seed);
        let pretty = spec.to_json().render();
        let reparsed = CampaignSpec::parse(&pretty).expect("rendered spec parses");
        prop_assert_eq!(&reparsed, &spec);
        // The compact form round-trips identically.
        let compact = spec.to_json().render_compact();
        let reparsed_compact = CampaignSpec::parse(&compact).expect("compact spec parses");
        prop_assert_eq!(&reparsed_compact, &spec);
        // Base enum survives (spot check the first cell).
        let first = &reparsed.cells[0];
        prop_assert!(matches!(
            first.config.base,
            ConfigBase::SingleThread | ConfigBase::MultiProgrammed
        ));
    }
}
