//! Verifies the allocation-free promises of the two hot-path APIs:
//!
//! * **prefetchers** — after warm-up, `on_access` performs zero heap
//!   allocations for every prefetcher, with a reused sink;
//! * **streaming trace sources** — after warm-up, pulling records from a
//!   [`dspatch_trace::TraceSource`] (every synthetic generator, including
//!   weighted mixes) performs zero heap allocations, which is what makes
//!   the O(1)-memory claim of the streaming trace layer real rather than
//!   merely amortized.
//!
//! A counting global allocator tallies allocation calls; each subject is
//! warmed on a deterministic stream (filling tables and growing reused
//! buffers to steady-state capacity) and then driven through a second pass
//! during which the allocation count must not move.
//!
//! This file deliberately contains a single `#[test]` so no concurrent test
//! thread can allocate while a measurement window is open.

use dspatch_prefetchers::{
    AdjunctPrefetcher, AmpmConfig, AmpmPrefetcher, BopConfig, BopPrefetcher, SmsConfig,
    SmsPrefetcher, SppConfig, SppPrefetcher, StreamConfig, StreamPrefetcher, StrideConfig,
    StridePrefetcher,
};
use dspatch_types::{
    AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, PrefetchSink, Prefetcher, CACHE_LINE_BYTES,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

/// Global tally (kept for completeness) plus a per-thread tally. The
/// measurement windows read the **thread-local** counter: the libtest
/// harness's main thread allocates on its own schedule (progress output,
/// channel bookkeeping), and counting it made the test flaky.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(std::cell::Cell::get)
}

fn count_one() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    // A const-initialized thread-local never allocates on access, so the
    // allocator may touch it re-entrantly.
    THREAD_ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A deterministic mixed access stream: strided streams, repeated spatial
/// layouts across pages and a bandwidth level that varies — enough to fill
/// every prefetcher's tables and trigger real predictions.
fn stream(len: usize) -> Vec<(MemoryAccess, PrefetchContext)> {
    let mut out = Vec::with_capacity(len);
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for i in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let page = (i as u64 / 5) % 4096;
        let offset = match i % 5 {
            0 => 0,
            1 => 3,
            2 => 6,
            3 => 9,
            _ => (state >> 58) % 64,
        };
        let pc = 0x400000 + (i as u64 % 7) * 4;
        let access = MemoryAccess::new(
            Pc::new(pc),
            Addr::new(page * 4096 + offset * CACHE_LINE_BYTES as u64),
            AccessKind::Load,
        );
        let ctx = PrefetchContext::at_cycle(i as u64)
            .with_bandwidth(dspatch_types::BandwidthQuartile::from_bits((i % 4) as u8));
        out.push((access, ctx));
    }
    out
}

fn assert_steady_state_alloc_free(prefetcher: &mut dyn Prefetcher, name: &str) {
    let warmup = stream(6_000);
    // Start at steady-state capacity (a page holds at most 64 lines, so no
    // single access can push more than ~2×64 merged requests); buffer growth
    // is an amortized warm-up cost by design, per-access allocation is not.
    let mut sink = PrefetchSink::with_capacity(256);
    for (access, ctx) in &warmup {
        sink.clear();
        prefetcher.on_access(access, ctx, &mut sink);
    }
    // Steady state: the same stream again must not allocate at all.
    let before = thread_allocations();
    let mut issued = 0usize;
    for (access, ctx) in &warmup {
        sink.clear();
        prefetcher.on_access(access, ctx, &mut sink);
        issued += sink.len();
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "{name}: on_access allocated in steady state ({} allocations over {} accesses, {} requests)",
        after - before,
        warmup.len(),
        issued
    );
}

/// Streaming trace sources must not allocate per record in steady state.
/// The warm-up pass grows each source's reused buffers (e.g. the spatial
/// generator's visit buffer) to capacity; the measured pass must then be
/// allocation-free.
fn assert_streaming_source_alloc_free(spec: &dspatch_trace::GeneratorSpec, name: &str) {
    use dspatch_trace::{SynthSource, TraceSource};
    // A length far beyond the pulls below: the mixed generator re-creates a
    // part stream only at its replay period, so none occurs mid-measurement.
    let mut source = SynthSource::new(name, spec.clone(), 0xD5, 1 << 40);
    for _ in 0..6_000 {
        source.next_record();
    }
    let before = thread_allocations();
    for _ in 0..6_000 {
        source.next_record();
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "{name}: streaming source allocated in steady state ({} allocations over 6000 records)",
        after - before,
    );
}

#[test]
fn prefetcher_hot_path_is_allocation_free_in_steady_state() {
    let mut prefetchers: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        (
            "stride",
            Box::new(StridePrefetcher::new(StrideConfig::default())),
        ),
        (
            "stream",
            Box::new(StreamPrefetcher::new(StreamConfig::default())),
        ),
        ("ampm", Box::new(AmpmPrefetcher::new(AmpmConfig::default()))),
        ("bop", Box::new(BopPrefetcher::new(BopConfig::default()))),
        ("sms", Box::new(SmsPrefetcher::new(SmsConfig::default()))),
        ("spp", Box::new(SppPrefetcher::new(SppConfig::default()))),
        (
            "dspatch",
            Box::new(dspatch::DsPatch::new(dspatch::DsPatchConfig::default())),
        ),
        (
            "dspatch+spp",
            Box::new(AdjunctPrefetcher::new(
                SppPrefetcher::new(SppConfig::default()),
                dspatch::DsPatch::new(dspatch::DsPatchConfig::default()),
            )),
        ),
        ("null", Box::new(dspatch_types::NullPrefetcher::new())),
    ];
    for (name, prefetcher) in &mut prefetchers {
        assert_steady_state_alloc_free(prefetcher.as_mut(), name);
    }

    // The streaming trace layer: every generator family, including the
    // weighted mix the 75-workload suite is built from.
    use dspatch_trace::{
        CodeHeavyGen, GeneratorSpec, IrregularGen, MixedGen, PointerChaseGen, SpatialPatternGen,
        StreamGen, StridedGen,
    };
    let sources: Vec<(&str, GeneratorSpec)> = vec![
        ("stream-source", GeneratorSpec::Stream(StreamGen::default())),
        (
            "strided-source",
            GeneratorSpec::Strided(StridedGen::default()),
        ),
        (
            "spatial-source",
            GeneratorSpec::Spatial(SpatialPatternGen::default()),
        ),
        (
            "irregular-source",
            GeneratorSpec::Irregular(IrregularGen::default()),
        ),
        (
            "chase-source",
            GeneratorSpec::PointerChase(PointerChaseGen::default()),
        ),
        (
            "code-heavy-source",
            GeneratorSpec::CodeHeavy(CodeHeavyGen::default()),
        ),
        (
            "mixed-source",
            GeneratorSpec::Mixed(MixedGen::new(vec![
                (3, GeneratorSpec::Stream(StreamGen::default())),
                (2, GeneratorSpec::Spatial(SpatialPatternGen::default())),
                (1, GeneratorSpec::Irregular(IrregularGen::default())),
            ])),
        ),
    ];
    for (name, spec) in &sources {
        assert_streaming_source_alloc_free(spec, name);
    }
}
