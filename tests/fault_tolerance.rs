//! Fault-tolerance integration tests: per-job isolation and quarantine,
//! bounded deterministic retry, crash-safe journaling, and kill-and-resume
//! parity — a campaign interrupted mid-flight and resumed from its journal
//! must produce **bit-identical** output (rows, sims, rendered JSON/CSV,
//! and the spec-deterministic executor stats) to an uninterrupted run.
//!
//! All faults are injected through the deterministic
//! `dspatch_harness::faults::FaultPlan` harness, so every failure fires at
//! a fixed, reproducible point.

use dspatch_harness::campaign::{
    run_campaign, run_campaign_with, CampaignResult, CampaignSpec, CellSpec, ConfigSpec,
    ExecOptions, PrefetcherSel, RetryPolicy, TargetSelector,
};
use dspatch_harness::runner::{PrefetcherKind, RunScale};
use dspatch_harness::{Fault, FaultPlan, HarnessError};
use std::path::PathBuf;

fn tiny() -> RunScale {
    RunScale {
        accesses_per_workload: 600,
        workloads_per_category: 1,
        mixes: 1,
        threads: 2,
        sim_workers: 0,
        sampling: None,
    }
}

/// Two explicit workloads × (baseline + SPP + BOP): 6 deduplicated jobs.
fn spec() -> CampaignSpec {
    let pool = dspatch_trace::suite();
    CampaignSpec::single_cell(
        "fault tolerance",
        CellSpec {
            label: "cell".to_owned(),
            targets: TargetSelector::Workloads(vec![pool[0].name.clone(), pool[1].name.clone()]),
            prefetchers: vec![
                PrefetcherSel::Kind(PrefetcherKind::Spp),
                PrefetcherSel::Kind(PrefetcherKind::Bop),
            ],
            config: ConfigSpec::single_thread(),
            baseline: true,
        },
    )
}

fn temp_journal(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dspatch_fault_tolerance_{label}_{}.jsonl",
        std::process::id()
    ))
}

/// Fast retries so transient-fault tests don't sleep for real.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        backoff_ms: 1,
    }
}

/// Every observable output a user can diff: rendered table, JSON document,
/// CSV, plus the raw rows/sims (SimResult is PartialEq, so this is
/// bit-level for every counter) and the spec-deterministic stats.
fn assert_bit_identical(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.sims, b.sims);
    assert_eq!(a.to_table().render(), b.to_table().render());
    assert_eq!(a.to_json().render(), b.to_json().render());
    assert_eq!(a.to_csv(), b.to_csv());
    // Baseline-memoization accounting must survive a resume unchanged.
    assert_eq!(a.stats.sims_run, b.stats.sims_run);
    assert_eq!(a.stats.baseline_sims, b.stats.baseline_sims);
    assert_eq!(a.stats.memo_hits, b.stats.memo_hits);
    assert_eq!(a.stats.threads, b.stats.threads);
}

#[test]
fn a_panicking_cell_is_quarantined_without_sinking_the_campaign() {
    let spec = spec();
    let scale = tiny();
    let reference = run_campaign(&spec, &scale).expect("clean run");
    let target = reference.rows[0].target.clone();

    let opts = ExecOptions {
        retry: fast_retry(),
        faults: Some(FaultPlan::new().poison(
            target.clone(),
            PrefetcherKind::Spp.label(),
            Fault::Panic,
        )),
        ..ExecOptions::default()
    };
    let result = run_campaign_with(&spec, &scale, &opts).expect("campaign must complete");

    // Exactly the poisoned (target, SPP) job is gone; every other row
    // survives with results identical to the clean run.
    assert_eq!(result.failures.len(), 1);
    assert_eq!(result.stats.quarantined, 1);
    let failure = &result.failures[0];
    assert_eq!(failure.target, target);
    assert_eq!(failure.prefetcher, PrefetcherKind::Spp.label());
    assert_eq!(failure.attempts, 2, "1 initial + 1 retry");
    match &failure.error {
        HarnessError::Quarantined { attempts, last, .. } => {
            assert_eq!(*attempts, 2);
            assert!(
                matches!(**last, HarnessError::CellPanic { .. }),
                "got {last:?}"
            );
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }
    assert_eq!(result.rows.len(), reference.rows.len() - 1);
    assert!(!result
        .rows
        .iter()
        .any(|row| row.target == target && row.prefetcher == PrefetcherKind::Spp.label()));
    for row in &result.rows {
        let reference_row = reference
            .rows
            .iter()
            .find(|r| r.target == row.target && r.prefetcher == row.prefetcher)
            .expect("row exists in the clean run");
        assert_eq!(result.sim_of(row), reference.sim_of(reference_row));
        assert_eq!(
            result.speedup(row).map(f64::to_bits),
            reference.speedup(reference_row).map(f64::to_bits)
        );
    }
    // The quarantine is visible in the JSON document.
    let json = result.to_json();
    let failures = json
        .get("failures")
        .and_then(dspatch_harness::Json::as_arr)
        .expect("failures array present");
    assert_eq!(failures.len(), 1);
}

#[test]
fn a_quarantined_baseline_keeps_the_rows_without_speedups() {
    let spec = spec();
    let scale = tiny();
    let target = dspatch_trace::suite()[0].name.clone();
    let opts = ExecOptions {
        retry: fast_retry(),
        faults: Some(FaultPlan::new().poison(
            target.clone(),
            PrefetcherKind::Baseline.label(),
            Fault::Io,
        )),
        ..ExecOptions::default()
    };
    let result = run_campaign_with(&spec, &scale, &opts).expect("campaign must complete");
    assert_eq!(result.failures.len(), 1);
    assert!(
        matches!(
            &result.failures[0].error,
            HarnessError::Quarantined { last, .. } if matches!(**last, HarnessError::CellIo { .. })
        ),
        "got {:?}",
        result.failures[0].error
    );
    // Candidate rows for that target survive, but have no baseline to
    // normalize against.
    let affected: Vec<_> = result.rows.iter().filter(|r| r.target == target).collect();
    assert_eq!(affected.len(), 2, "SPP and BOP rows stay");
    for row in affected {
        assert!(row.baseline.is_none());
        assert!(result.speedup(row).is_none());
    }
}

#[test]
fn transient_faults_retry_and_converge_to_the_clean_result() {
    let spec = spec();
    let scale = tiny();
    let reference = run_campaign(&spec, &scale).expect("clean run");
    let target = reference.rows[0].target.clone();

    for fault in [
        Fault::TransientPanic { failures: 1 },
        Fault::TransientIo { failures: 1 },
    ] {
        let opts = ExecOptions {
            retry: fast_retry(),
            faults: Some(FaultPlan::new().poison(
                target.clone(),
                PrefetcherKind::Bop.label(),
                fault,
            )),
            ..ExecOptions::default()
        };
        let result = run_campaign_with(&spec, &scale, &opts).expect("campaign must complete");
        assert!(result.failures.is_empty(), "{fault:?} must recover");
        assert!(result.stats.retries >= 1, "{fault:?} must consume a retry");
        assert_bit_identical(&result, &reference);
    }

    // One failure more than the budget: quarantined after both attempts.
    let opts = ExecOptions {
        retry: fast_retry(),
        faults: Some(FaultPlan::new().poison(
            target,
            PrefetcherKind::Bop.label(),
            Fault::TransientPanic { failures: 2 },
        )),
        ..ExecOptions::default()
    };
    let result = run_campaign_with(&spec, &scale, &opts).expect("campaign must complete");
    assert_eq!(result.failures.len(), 1);
    assert_eq!(result.failures[0].attempts, 2);
}

#[test]
fn kill_and_resume_is_bit_identical_to_an_uninterrupted_run() {
    let spec = spec();
    let scale = tiny();
    let path = temp_journal("kill_resume");
    let _ = std::fs::remove_file(&path);

    // The uninterrupted reference: journaled, fault-free.
    let opts = ExecOptions {
        journal: Some(path.clone()),
        ..ExecOptions::default()
    };
    let reference = run_campaign_with(&spec, &scale, &opts).expect("clean journaled run");
    assert!(reference.failures.is_empty());

    // "Kill" the campaign mid-flight: keep the meta line and the first two
    // completed-cell records, as if the process died before the rest.
    let full = std::fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() >= 4, "expected meta + >=3 records");
    let truncated: String = lines[..3].iter().map(|line| format!("{line}\n")).collect();
    std::fs::write(&path, truncated).expect("truncate journal");

    // Resume: only the missing cells re-execute.
    let opts = ExecOptions {
        journal: Some(path.clone()),
        resume: true,
        ..ExecOptions::default()
    };
    let resumed = run_campaign_with(&spec, &scale, &opts).expect("resumed run");
    assert_eq!(resumed.stats.journal_hits, 2, "two cells replayed");
    assert_bit_identical(&resumed, &reference);

    // The journal is whole again: a second resume replays everything.
    let opts = ExecOptions {
        journal: Some(path.clone()),
        resume: true,
        ..ExecOptions::default()
    };
    let replayed = run_campaign_with(&spec, &scale, &opts).expect("fully replayed run");
    assert_eq!(replayed.stats.journal_hits, replayed.stats.sims_run);
    assert_bit_identical(&replayed, &reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_mid_campaign_panic_resumes_into_the_clean_result() {
    let spec = spec();
    let scale = tiny();
    let reference = run_campaign(&spec, &scale).expect("clean run");
    let target = reference.rows[0].target.clone();
    let path = temp_journal("panic_resume");
    let _ = std::fs::remove_file(&path);

    // First run: journaled, with one cell poisoned to panic every attempt.
    // The campaign completes with that cell quarantined; the journal holds
    // every *other* cell plus a failure record.
    let opts = ExecOptions {
        retry: fast_retry(),
        faults: Some(FaultPlan::new().poison(
            target.clone(),
            PrefetcherKind::Spp.label(),
            Fault::Panic,
        )),
        journal: Some(path.clone()),
        ..ExecOptions::default()
    };
    let faulted = run_campaign_with(&spec, &scale, &opts).expect("faulted run completes");
    assert_eq!(faulted.failures.len(), 1);

    // Resume without the fault: exactly the quarantined cell re-executes
    // (failure records never replay), and the merged result is bit-identical
    // to the uninterrupted fault-free run.
    let opts = ExecOptions {
        journal: Some(path.clone()),
        resume: true,
        ..ExecOptions::default()
    };
    let resumed = run_campaign_with(&spec, &scale, &opts).expect("resumed run");
    assert!(resumed.failures.is_empty());
    assert_eq!(
        resumed.stats.journal_hits,
        resumed.stats.sims_run - 1,
        "only the quarantined cell re-executed"
    );
    assert_bit_identical(&resumed, &reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_torn_journal_tail_is_recovered_on_resume() {
    let spec = spec();
    let scale = tiny();
    let path = temp_journal("torn_tail");
    let _ = std::fs::remove_file(&path);

    let opts = ExecOptions {
        journal: Some(path.clone()),
        ..ExecOptions::default()
    };
    let reference = run_campaign_with(&spec, &scale, &opts).expect("clean journaled run");

    // Tear the final record mid-bytes — the kill -9 signature.
    let bytes = std::fs::read(&path).expect("journal readable");
    std::fs::write(&path, &bytes[..bytes.len() - 25]).expect("tear");

    let opts = ExecOptions {
        journal: Some(path.clone()),
        resume: true,
        ..ExecOptions::default()
    };
    let resumed = run_campaign_with(&spec, &scale, &opts).expect("resumed run");
    assert!(resumed.stats.journal_hits >= 1);
    assert_bit_identical(&resumed, &reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resuming_under_a_different_scale_is_a_typed_mismatch() {
    let spec = spec();
    let scale = tiny();
    let path = temp_journal("mismatch");
    let _ = std::fs::remove_file(&path);

    let opts = ExecOptions {
        journal: Some(path.clone()),
        ..ExecOptions::default()
    };
    run_campaign_with(&spec, &scale, &opts).expect("clean journaled run");

    // A different access count is a different campaign identity...
    let mut rescaled = scale;
    rescaled.accesses_per_workload = 700;
    let opts = ExecOptions {
        journal: Some(path.clone()),
        resume: true,
        ..ExecOptions::default()
    };
    let err = run_campaign_with(&spec, &rescaled, &opts).expect_err("must refuse");
    assert!(
        matches!(
            err,
            HarnessError::Mismatch {
                field: "fingerprint",
                ..
            }
        ),
        "got {err:?}"
    );

    // ...but a different thread count is not: results never depend on it.
    let mut rethreaded = scale;
    rethreaded.threads = 1;
    let resumed = run_campaign_with(&spec, &rethreaded, &opts).expect("threads are a machine knob");
    assert_eq!(resumed.stats.journal_hits, resumed.stats.sims_run);
    std::fs::remove_file(&path).ok();
}

#[test]
fn mid_file_journal_corruption_is_a_typed_error_on_resume() {
    let spec = spec();
    let scale = tiny();
    let path = temp_journal("corrupt");
    let _ = std::fs::remove_file(&path);

    // The CorruptJournal fault lets the simulation succeed but mangles its
    // journal record. Poisoning the baseline of the first target puts the
    // damage early in the file (single worker keeps the order exact), so on
    // resume it is *mid-file* corruption — a hard error, unlike a torn tail.
    let mut serial = scale;
    serial.threads = 1;
    let target = dspatch_trace::suite()[0].name.clone();
    let opts = ExecOptions {
        faults: Some(FaultPlan::new().poison(
            target,
            PrefetcherKind::Baseline.label(),
            Fault::CorruptJournal,
        )),
        journal: Some(path.clone()),
        ..ExecOptions::default()
    };
    let result = run_campaign_with(&spec, &serial, &opts).expect("corruption is write-side only");
    assert!(result.failures.is_empty());

    let opts = ExecOptions {
        journal: Some(path.clone()),
        resume: true,
        ..ExecOptions::default()
    };
    let err = run_campaign_with(&spec, &serial, &opts).expect_err("must refuse");
    match &err {
        HarnessError::Corrupt { line, .. } => assert_eq!(*line, 2),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
