//! Schema-upgrade guarantees for the unified result schema.
//!
//! `tests/fixtures/` holds byte-exact store/journal files written by the
//! **previous** release's writers (store v1 `{"cell": ...}` records,
//! journal v1 `{"sim": {"key", "result"}}` records), plus torn-tail
//! variants simulating a crash mid-append. These tests prove the current
//! readers load them through the `ResultRow` upgrade path and that the
//! result payloads re-render **bit-for-bit** — if a serializer change ever
//! breaks compatibility with shipped files, these fail first.

use dspatch_harness::journal::{read_journal, sim_result_to_json, JournalMeta};
use dspatch_harness::{Json, ResultRow, ResultStore};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Fresh scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dspatch-schema-upgrade-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn install_store(tag: &str, fixture_name: &str) -> PathBuf {
    let dir = scratch(tag);
    std::fs::copy(fixture(fixture_name), dir.join("results.jsonl")).expect("install fixture");
    dir
}

#[test]
fn store_v1_cells_load_and_rerender_bit_for_bit() {
    let dir = install_store("store-v1", "store_v1_results.jsonl");
    let store = ResultStore::open(&dir).expect("v1 store opens");
    assert_eq!(store.len(), 2, "both fixture cells load");

    let text = std::fs::read_to_string(fixture("store_v1_results.jsonl")).expect("read fixture");
    for line in text.lines().skip(1) {
        let parsed = Json::parse(line).expect("fixture line parses");
        let cell = parsed.get("cell").expect("cell record");
        let fingerprint = cell
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint");
        let row = store
            .get_row(fingerprint)
            .unwrap_or_else(|| panic!("fingerprint {fingerprint} loaded"));
        assert!(row.is_legacy(), "v1 cells surface as legacy rows");
        assert_eq!(row.fingerprint, fingerprint);
        assert!(row.workload.is_empty() && row.code_version.is_empty());

        // Re-render the fixture line from the loaded row: byte equality
        // proves the SimResult payload survived the upgrade path exactly.
        let rebuilt = Json::obj([(
            "cell",
            Json::obj([
                ("fingerprint", Json::str(&row.fingerprint)),
                ("result", sim_result_to_json(&row.result)),
            ]),
        )])
        .render_compact();
        assert_eq!(rebuilt, line, "cell {fingerprint} re-renders bit-for-bit");
    }
}

#[test]
fn store_v1_torn_tail_is_dropped_and_store_stays_appendable() {
    let dir = install_store("store-v1-torn", "store_v1_torn.jsonl");
    let store_path;
    {
        let mut store = ResultStore::open(&dir).expect("torn v1 store opens");
        store_path = store.path().to_path_buf();
        assert_eq!(store.len(), 1, "torn final cell silently dropped");
        let survivor = store.rows().next().expect("surviving row").clone();

        // The store must keep accepting current-schema rows after the
        // legacy truncation...
        let fresh = ResultRow::new(
            "feedfacefeedface".to_owned(),
            "upgrade".to_owned(),
            "linpack".to_owned(),
            "SPP".to_owned(),
            "1T".to_owned(),
            2000,
            String::new(),
            survivor.result.clone(),
        );
        assert!(store.insert(&fresh).expect("append after upgrade"));
        assert_eq!(store.len(), 2);
    }
    // ...and the mixed v1-meta/v2-record file must reload cleanly.
    let reopened = ResultStore::open(&dir).expect("mixed-version store reopens");
    assert_eq!(reopened.len(), 2);
    let row = reopened
        .get_row("feedfacefeedface")
        .expect("v2 row persisted");
    assert!(!row.is_legacy());
    assert_eq!(row.workload, "linpack");
    assert!(store_path.exists());
}

#[test]
fn journal_v1_sims_load_and_rerender_bit_for_bit() {
    let path = fixture("journal_v1.jsonl");
    let text = std::fs::read_to_string(&path).expect("read fixture");
    let meta_line = text.lines().next().expect("meta line");
    let meta_json = Json::parse(meta_line).expect("meta parses");
    let meta = JournalMeta {
        campaign: meta_json
            .get("campaign")
            .and_then(Json::as_str)
            .expect("campaign")
            .to_owned(),
        fingerprint: meta_json
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint")
            .to_owned(),
    };

    let contents = read_journal(&path, &meta).expect("v1 journal reads");
    assert_eq!(contents.sims.len(), 2, "both fixture sims load");
    assert!(contents.failures.is_empty());
    assert_eq!(
        contents.clean_len,
        text.len() as u64,
        "whole fixture is a clean prefix"
    );

    for line in text.lines().skip(1) {
        let parsed = Json::parse(line).expect("fixture line parses");
        let sim = parsed.get("sim").expect("sim record");
        let key = sim.get("key").and_then(Json::as_str).expect("job key");
        let result = contents
            .sims
            .get(key)
            .unwrap_or_else(|| panic!("sim {key} loaded"));
        let rebuilt = Json::obj([(
            "sim",
            Json::obj([
                ("key", Json::str(key)),
                ("result", sim_result_to_json(result)),
            ]),
        )])
        .render_compact();
        assert_eq!(rebuilt, line, "sim {key} re-renders bit-for-bit");
    }
}

#[test]
fn journal_v1_torn_tail_is_tolerated() {
    let path = fixture("journal_v1_torn.jsonl");
    let text = std::fs::read_to_string(&path).expect("read fixture");
    let meta_json = Json::parse(text.lines().next().expect("meta line")).expect("meta parses");
    let meta = JournalMeta {
        campaign: meta_json
            .get("campaign")
            .and_then(Json::as_str)
            .expect("campaign")
            .to_owned(),
        fingerprint: meta_json
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint")
            .to_owned(),
    };
    let contents = read_journal(&path, &meta).expect("torn v1 journal reads");
    assert_eq!(contents.sims.len(), 1, "torn final record dropped");
    // Clean prefix = meta line + first complete record (with newlines).
    let clean: u64 = text.lines().take(2).map(|line| line.len() as u64 + 1).sum();
    assert_eq!(contents.clean_len, clean);
}
