//! Golden parity for the parallel multi-core engine: turning
//! [`dspatch_sim::SystemConfig::parallel_cores`] on — with any worker
//! count — must produce **bit-identical** [`dspatch_sim::SimResult`]s to
//! the serial run. Multi-core simulations always execute the bounded-lag
//! epoch schedule; the flag only chooses how many OS threads evaluate it,
//! so equality holds by construction and these tests pin it for every
//! registry prefetcher and across randomized configurations.

use dspatch_harness::runner::PrefetcherKind;
use dspatch_sim::{SimResult, SimulationBuilder, SystemConfig};
use dspatch_trace::heterogeneous_mixes;
use proptest::prelude::*;

const SMOKE_ACCESSES: usize = 1_200;

fn run_mix(
    config: SystemConfig,
    kind: PrefetcherKind,
    accesses: usize,
    mix_index: usize,
) -> SimResult {
    let mix = &heterogeneous_mixes(3, 4, 7)[mix_index];
    let mut builder = SimulationBuilder::new(config);
    for workload in &mix.workloads {
        builder = builder.with_core(workload.source(accesses), kind.build_any());
    }
    builder.run()
}

fn parallel_config(workers: usize) -> SystemConfig {
    let mut config = SystemConfig::multi_programmed();
    config.parallel_cores = true;
    config.parallel_workers = workers;
    config
}

/// The headline guarantee: for **every** prefetcher in the registry, a
/// heterogeneous 4-core mix simulated with `parallel_cores` on is
/// bit-identical to the serial simulation of the same mix.
#[test]
fn every_registry_prefetcher_is_bit_identical_with_parallel_cores() {
    for kind in PrefetcherKind::ALL {
        let serial = run_mix(SystemConfig::multi_programmed(), kind, SMOKE_ACCESSES, 0);
        let parallel = run_mix(parallel_config(4), kind, SMOKE_ACCESSES, 0);
        assert_eq!(
            serial,
            parallel,
            "{}: parallel_cores changed the simulation result",
            kind.label()
        );
    }
}

/// The worker count is a pure scheduling knob: 1, 2, 3 and 4 epoch workers
/// (and the auto setting) all agree.
#[test]
fn every_worker_count_agrees() {
    let reference = run_mix(parallel_config(1), PrefetcherKind::DspatchPlusSpp, 2_000, 1);
    for workers in [0usize, 2, 3, 4] {
        let result = run_mix(
            parallel_config(workers),
            PrefetcherKind::DspatchPlusSpp,
            2_000,
            1,
        );
        assert_eq!(
            reference, result,
            "worker count {workers} changed the simulation result"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized configurations: epoch length (including degenerate 1-cycle
    /// epochs), cycle skipping, trace length and worker count never break
    /// serial/parallel equality.
    #[test]
    fn random_configs_stay_bit_identical(
        epoch_cycles in 0u64..4_000,
        cycle_skipping in any::<bool>(),
        workers in 2usize..=4,
        accesses in 200usize..1_000,
        mix_index in 0usize..3,
    ) {
        let mut serial = SystemConfig::multi_programmed();
        serial.parallel_epoch_cycles = epoch_cycles;
        serial.cycle_skipping = cycle_skipping;
        let mut parallel = serial.clone();
        parallel.parallel_cores = true;
        parallel.parallel_workers = workers;
        let kind = PrefetcherKind::DspatchPlusSpp;
        prop_assert_eq!(
            run_mix(serial, kind, accesses, mix_index),
            run_mix(parallel, kind, accesses, mix_index),
            "epoch_cycles={} cycle_skipping={} workers={}",
            epoch_cycles,
            cycle_skipping,
            workers
        );
    }
}
