//! Smoke tests running every repository example end-to-end at tiny scale,
//! so the examples cannot silently rot: `cargo test` fails if an example
//! stops compiling, panics, or prints nothing.
//!
//! Each test shells out to `cargo run --example <name>` (the examples are
//! already compiled by the time the test harness runs) with
//! `DSPATCH_EXAMPLE_ACCESSES` set so the demo-sized simulations shrink to a
//! fraction of a second.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .env("DSPATCH_EXAMPLE_ACCESSES", "400")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn `cargo run --example {name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` succeeded but printed nothing"
    );
}

#[test]
fn quickstart_runs_to_completion() {
    run_example("quickstart");
}

#[test]
fn spatial_scan_runs_to_completion() {
    run_example("spatial_scan");
}

#[test]
fn bandwidth_adaptive_runs_to_completion() {
    run_example("bandwidth_adaptive");
}

#[test]
fn multicore_mix_runs_to_completion() {
    run_example("multicore_mix");
}

#[test]
fn custom_campaign_runs_to_completion() {
    run_example("custom_campaign");
}

#[test]
fn trace_replay_runs_to_completion() {
    run_example("trace_replay");
}
