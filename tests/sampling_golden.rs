//! Sampled-simulation golden tests: checkpoint fidelity for every registry
//! prefetcher, and statistical validity of the interval estimates.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Bit-identical restore** — for every prefetcher in the registry, a
//!    machine checkpointed after functional warm-up and restored from the
//!    serialized bytes produces *exactly* the measurement the original
//!    machine does. This exercises the full `SnapshotState` surface (every
//!    predictor's save/load, caches, DRAM, accounting) through the public
//!    byte format, not just in-memory clones.
//! 2. **CI coverage** — on a pinned (workload, prefetcher) matrix, the
//!    sampled run's 95% confidence interval covers the exact run's IPC.
//!    Everything is seed-deterministic, so this is a golden test, not a
//!    flaky statistical one: a regression in warm-up, placement, or
//!    aggregation moves the interval away from the exact value.

use dspatch_harness::runner::{run_workload, PrefetcherKind, RunScale};
use dspatch_harness::sampling::{run_sampled_workload, warmup_checkpoint, SamplingPlan};
use dspatch_sim::{MachineState, SimulationBuilder, SystemConfig};
use dspatch_trace::workloads::{category_suite, WorkloadCategory};

fn plan() -> SamplingPlan {
    SamplingPlan {
        warmup_accesses: 6_000,
        interval_accesses: 1_500,
        intervals: 8,
        seed: 42,
    }
}

fn scale() -> RunScale {
    RunScale {
        accesses_per_workload: 40_000,
        workloads_per_category: 1,
        mixes: 0,
        threads: 1,
        sim_workers: 0,
        sampling: Some(plan()),
    }
}

#[test]
fn checkpoints_round_trip_bit_identically_for_every_registry_prefetcher() {
    let workload = &category_suite(WorkloadCategory::Ispec17)[0];
    let config = SystemConfig::single_thread();
    for kind in PrefetcherKind::ALL {
        let mut machine = SimulationBuilder::new(config.clone())
            .with_core(workload.source(20_000), kind.build_any())
            .into_machine();
        machine.run_functional(4_000);
        let state = machine
            .capture()
            .expect("functional boundary is capturable");

        // Through the full byte format, as a checkpoint file would travel.
        let bytes = state.as_bytes().to_vec();
        let reloaded = MachineState::from_bytes(bytes).expect("bytes validate");
        assert_eq!(state, reloaded, "{kind:?}: byte round trip");

        let mut restored = SimulationBuilder::new(config.clone())
            .with_core(workload.source(20_000), kind.build_any())
            .into_machine();
        restored.restore(&reloaded).expect("restore succeeds");

        let original = machine.run_interval(2_000);
        let replayed = restored.run_interval(2_000);
        assert_eq!(
            original, replayed,
            "{kind:?}: restored machine must measure bit-identically"
        );
    }
}

#[test]
fn neutral_warmup_restores_into_any_prefetcher_column() {
    // The campaign executor warms once with the null prefetcher and forks
    // the checkpoint across columns; every registry prefetcher must accept
    // that foreign-tagged checkpoint (keeping its own predictor fresh).
    let workload = &category_suite(WorkloadCategory::Cloud)[0];
    let config = SystemConfig::single_thread();
    let warm = warmup_checkpoint(Box::new(workload.source(20_000)), &config, &plan())
        .expect("neutral warm-up captures");
    for kind in PrefetcherKind::ALL {
        let mut machine = SimulationBuilder::new(config.clone())
            .with_core(workload.source(20_000), kind.build_any())
            .into_machine();
        machine
            .restore(&warm)
            .unwrap_or_else(|e| panic!("{kind:?}: foreign-tag restore failed: {e}"));
        let interval = machine.run_interval(1_000);
        assert!(
            interval.cores[0].l1.demand_hits + interval.cores[0].l1.demand_misses > 0,
            "{kind:?}: restored machine must actually measure"
        );
    }
}

#[test]
fn sampled_confidence_intervals_cover_exact_ipc() {
    let config = SystemConfig::single_thread();
    let matrix = [
        (WorkloadCategory::Cloud, PrefetcherKind::Spp),
        (WorkloadCategory::Cloud, PrefetcherKind::DspatchPlusSpp),
        (WorkloadCategory::Ispec17, PrefetcherKind::DspatchPlusSpp),
        (WorkloadCategory::Server, PrefetcherKind::Bop),
    ];
    for (category, kind) in matrix {
        let workload = &category_suite(category)[0];
        let exact_scale = RunScale {
            sampling: None,
            ..scale()
        };
        let exact = run_workload(workload, kind, &config, &exact_scale);
        let exact_ipc = exact.cores[0].ipc();

        let sampled = run_sampled_workload(workload, kind.build_any(), &config, &scale(), None)
            .expect("plan fits the workload");
        let stats = sampled.sampling.expect("sampled result carries stats");
        assert!(
            stats.ipc.covers(exact_ipc),
            "{}/{kind:?}: sampled IPC {} ± {} must cover exact {exact_ipc}",
            workload.name,
            stats.ipc.mean,
            stats.ipc.ci95,
        );
        // The estimate is also *useful*: the half-width stays within 50% of
        // the mean for these pinned seeds (an estimator regression that
        // blows up the variance fails here even if coverage holds).
        assert!(
            stats.ipc.ci95 <= stats.ipc.mean * 0.5,
            "{}/{kind:?}: CI half-width {} too wide for mean {}",
            workload.name,
            stats.ipc.ci95,
            stats.ipc.mean,
        );
    }
}
