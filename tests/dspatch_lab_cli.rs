//! End-to-end tests of the `dspatch-lab` binary: a paper figure and a
//! custom spec file, in all three output formats.

use dspatch_harness::Json;
use std::process::Command;

fn dspatch_lab(args: &[&str]) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "-p",
            "dspatch-harness",
            "--bin",
            "dspatch-lab",
            "--",
        ])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn dspatch-lab {args:?}: {e}"));
    assert!(
        output.status.success(),
        "dspatch-lab {args:?} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn runs_a_paper_figure_in_every_format() {
    // Table 1 and Figure 11 need no simulation, keeping the test quick while
    // still exercising the figure registry end to end.
    let table = dspatch_lab(&["--figure", "table1", "--format", "table"]);
    assert!(table.contains("SPT"));

    let json = dspatch_lab(&["--figure", "table1", "--format", "json"]);
    let parsed = Json::parse(&json).expect("figure JSON is valid");
    assert_eq!(
        parsed.get("title").and_then(Json::as_str),
        Some("Table 1: DSPatch storage overhead")
    );

    let csv = dspatch_lab(&["--figure", "fig11", "--format", "csv"]);
    assert!(csv.lines().next().unwrap().contains("Metric,Value"));
}

#[test]
fn runs_a_custom_spec_file_in_every_format() {
    let spec = r#"{
        "name": "cli smoke",
        "scale": {"accesses_per_workload": 500, "workloads_per_category": 1, "mixes": 1, "threads": 2},
        "cells": [{
            "label": "cloud",
            "targets": {"category": "cloud"},
            "prefetchers": ["spp", "dspatch_plus_spp"],
            "config": {"base": "single_thread"},
            "baseline": true
        }]
    }"#;
    let dir = std::env::temp_dir().join("dspatch-lab-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("spec.json");
    std::fs::write(&path, spec).expect("write spec");
    let path = path.to_str().expect("utf-8 temp path");

    let json = dspatch_lab(&["--spec", path, "--format", "json"]);
    let parsed = Json::parse(&json).expect("campaign JSON is valid");
    assert_eq!(
        parsed.get("campaign").and_then(Json::as_str),
        Some("cli smoke")
    );
    // 1 workload × (1 memoized baseline + 2 candidates).
    assert_eq!(
        parsed
            .get("stats")
            .and_then(|s| s.get("sims_run"))
            .and_then(Json::as_u64),
        Some(3)
    );

    let csv = dspatch_lab(&["--spec", path, "--format", "csv"]);
    assert!(csv.starts_with("Cell,Target,Config,Prefetcher"));
    assert_eq!(csv.lines().count(), 3, "header + one row per prefetcher");

    let table = dspatch_lab(&["--spec", path, "--format", "table"]);
    assert!(table.contains("DSPatch+SPP") && table.contains("Speedup"));
}

#[test]
fn template_spec_round_trips_through_the_parser() {
    let template = dspatch_lab(&["--template"]);
    let spec = dspatch_harness::CampaignSpec::parse(&template).expect("template parses");
    assert_eq!(spec.name, "example campaign");
    assert_eq!(spec.cells.len(), 2);
}
