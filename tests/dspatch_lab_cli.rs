//! End-to-end tests of the `dspatch-lab` binary: a paper figure and a
//! custom spec file, in all three output formats.

use dspatch_harness::Json;
use std::process::Command;

fn dspatch_lab(args: &[&str]) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "-p",
            "dspatch-harness",
            "--bin",
            "dspatch-lab",
            "--",
        ])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn dspatch-lab {args:?}: {e}"));
    assert!(
        output.status.success(),
        "dspatch-lab {args:?} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

/// Runs `dspatch-lab` expecting a failure; returns (exit code, stderr).
fn dspatch_lab_fails(args: &[&str]) -> (i32, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "-p",
            "dspatch-harness",
            "--bin",
            "dspatch-lab",
            "--",
        ])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn dspatch-lab {args:?}: {e}"));
    assert!(
        !output.status.success(),
        "dspatch-lab {args:?} unexpectedly succeeded:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn misplaced_flags_are_usage_errors_not_silently_ignored() {
    // Campaign-only flags without a campaign used to be dropped on the
    // floor; each must now exit 2 with a usage message.
    for args in [
        &["--figure", "table1", "--retries", "2"] as &[&str],
        &["--figure", "table1", "--resume", "run.journal"],
        &["--figure", "table1", "--store", "store-dir"],
        &["--list", "--retries", "2"],
    ] {
        let (code, stderr) = dspatch_lab_fails(args);
        assert_eq!(code, 2, "dspatch-lab {args:?}: {stderr}");
        assert!(
            stderr.contains("only apply to --spec campaigns"),
            "dspatch-lab {args:?}: {stderr}"
        );
    }
    // Report-shaping flags are meaningless for --list/--template.
    for args in [
        &["--list", "--format", "json"] as &[&str],
        &["--template", "--scale", "smoke"],
        &["--list", "--threads", "4"],
    ] {
        let (code, stderr) = dspatch_lab_fails(args);
        assert_eq!(code, 2, "dspatch-lab {args:?}: {stderr}");
        assert!(
            stderr.contains("do not apply to --list/--template"),
            "dspatch-lab {args:?}: {stderr}"
        );
    }
}

#[test]
fn runs_a_paper_figure_in_every_format() {
    // Table 1 and Figure 11 need no simulation, keeping the test quick while
    // still exercising the figure registry end to end.
    let table = dspatch_lab(&["--figure", "table1", "--format", "table"]);
    assert!(table.contains("SPT"));

    let json = dspatch_lab(&["--figure", "table1", "--format", "json"]);
    let parsed = Json::parse(&json).expect("figure JSON is valid");
    assert_eq!(
        parsed.get("title").and_then(Json::as_str),
        Some("Table 1: DSPatch storage overhead")
    );

    let csv = dspatch_lab(&["--figure", "fig11", "--format", "csv"]);
    assert!(csv.lines().next().unwrap().contains("Metric,Value"));
}

#[test]
fn runs_a_custom_spec_file_in_every_format() {
    let spec = r#"{
        "name": "cli smoke",
        "scale": {"accesses_per_workload": 500, "workloads_per_category": 1, "mixes": 1, "threads": 2},
        "cells": [{
            "label": "cloud",
            "targets": {"category": "cloud"},
            "prefetchers": ["spp", "dspatch_plus_spp"],
            "config": {"base": "single_thread"},
            "baseline": true
        }]
    }"#;
    let dir = std::env::temp_dir().join("dspatch-lab-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("spec.json");
    std::fs::write(&path, spec).expect("write spec");
    let path = path.to_str().expect("utf-8 temp path");

    let json = dspatch_lab(&["--spec", path, "--format", "json"]);
    let parsed = Json::parse(&json).expect("campaign JSON is valid");
    assert_eq!(
        parsed.get("campaign").and_then(Json::as_str),
        Some("cli smoke")
    );
    // 1 workload × (1 memoized baseline + 2 candidates).
    assert_eq!(
        parsed
            .get("stats")
            .and_then(|s| s.get("sims_run"))
            .and_then(Json::as_u64),
        Some(3)
    );

    let csv = dspatch_lab(&["--spec", path, "--format", "csv"]);
    assert!(csv.starts_with("Cell,Target,Config,Prefetcher"));
    assert_eq!(csv.lines().count(), 3, "header + one row per prefetcher");

    let table = dspatch_lab(&["--spec", path, "--format", "table"]);
    assert!(table.contains("DSPatch+SPP") && table.contains("Speedup"));
}

#[test]
fn template_spec_round_trips_through_the_parser() {
    let template = dspatch_lab(&["--template"]);
    let spec = dspatch_harness::CampaignSpec::parse(&template).expect("template parses");
    assert_eq!(spec.name, "example campaign");
    assert_eq!(spec.cells.len(), 2);
}

#[test]
fn list_prints_the_full_inventory() {
    let listing = dspatch_lab(&["--list"]);
    // Every figure id...
    for id in dspatch_harness::FigureId::ALL {
        assert!(listing.contains(id.name()), "missing figure {}", id.name());
    }
    // ...every workload name (memory-intensive ones carry a marker)...
    for workload in dspatch_trace::suite() {
        assert!(
            listing.contains(&workload.name),
            "missing workload {}",
            workload.name
        );
    }
    assert!(
        listing.contains("mcf06*"),
        "memory-intensive marker missing"
    );
    // ...every scale preset with its knobs, and the prefetcher names.
    for preset in ["smoke", "quick", "full"] {
        assert!(listing.contains(preset), "missing scale preset {preset}");
    }
    assert!(listing.contains("accesses/workload"));
    assert!(listing.contains("dspatch_plus_spp"));
}

#[test]
fn replays_an_external_trace_file_in_both_formats() {
    use dspatch_trace::{suite, TraceSource};

    // Process-unique names so concurrent test runs on one machine never
    // race on the same files.
    let dir = std::env::temp_dir().join(format!("dspatch-lab-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Native binary trace.
    let workload = &suite()[0];
    let trace = workload.generate(1_500);
    let binary_path = dir.join("replay.dspt");
    dspatch_trace::io::save_trace(&trace, &binary_path).expect("save");
    let table = dspatch_lab(&[
        "--trace-file",
        binary_path.to_str().expect("utf-8 path"),
        "--prefetchers",
        "spp,dspatch_plus_spp",
    ]);
    assert!(table.contains("External trace replay"));
    assert!(table.contains("Baseline") && table.contains("DSPatch+SPP"));
    std::fs::remove_file(&binary_path).ok();

    // ChampSim-style text trace, JSON output.
    let text_path = dir.join("replay.champsim.txt");
    let mut text = String::from("# synthetic text trace\n");
    let mut source = workload.source(400);
    while let Some(record) = source.next_record() {
        text.push_str(&format!(
            "{:#x} {:#x} {} {}{}\n",
            record.pc.as_u64(),
            record.addr.as_u64(),
            if record.kind.is_load() { "L" } else { "S" },
            record.gap,
            if record.dependent { " D" } else { "" },
        ));
    }
    std::fs::write(&text_path, text).expect("write text trace");
    let json = dspatch_lab(&[
        "--trace-file",
        text_path.to_str().expect("utf-8 path"),
        "--format",
        "json",
    ]);
    let parsed = Json::parse(&json).expect("replay JSON is valid");
    let title = parsed.get("title").and_then(Json::as_str).expect("title");
    assert!(title.contains("400 accesses"), "got title: {title}");
    std::fs::remove_file(&text_path).ok();
}
