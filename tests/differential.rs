//! Differential tests for the hot-path rewrites: the flattened arena
//! `Cache` is checked against a naive reference LRU model, and the
//! sink-based prefetcher API is checked against per-call collection
//! semantics (a reused sink must produce exactly the concatenation of
//! per-access request sets, with no state leaking through the buffer).

use dspatch_prefetchers::{
    AdjunctPrefetcher, AmpmConfig, AmpmPrefetcher, BopConfig, BopPrefetcher, SmsConfig,
    SmsPrefetcher, SppConfig, SppPrefetcher, StreamConfig, StreamPrefetcher, StrideConfig,
    StridePrefetcher,
};
use dspatch_sim::{Cache, CacheConfig};
use dspatch_types::{
    AccessKind, Addr, LineAddr, MemoryAccess, Pc, PrefetchContext, PrefetchRequest, PrefetchSink,
    Prefetcher, CACHE_LINE_BYTES,
};
use proptest::prelude::*;

/// A deliberately naive set-associative true-LRU model mirroring the seed
/// implementation: per-set grow-then-replace vectors, linear scans,
/// timestamp LRU with low-priority insertion near LRU.
struct ReferenceCache {
    sets: Vec<Vec<RefWay>>,
    ways: usize,
    clock: u64,
    demand_hits: u64,
    demand_misses: u64,
    prefetch_unused_evictions: u64,
}

#[derive(Clone, Copy)]
struct RefWay {
    line: u64,
    prefetched: bool,
    used: bool,
    lru: u64,
}

impl ReferenceCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::new(); sets],
            ways,
            clock: 0,
            demand_hits: 0,
            demand_misses: 0,
            prefetch_unused_evictions: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.sets.len()
    }

    fn demand_lookup(&mut self, line: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.line == line) {
            way.lru = clock;
            way.used = true;
            self.demand_hits += 1;
            true
        } else {
            self.demand_misses += 1;
            false
        }
    }

    fn fill(&mut self, line: u64, is_prefetch: bool, low_priority: bool) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let set_index = self.set_of(line);
        let set = &mut self.sets[set_index];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            if !is_prefetch {
                way.used = true;
            }
            way.lru = clock;
            return None;
        }
        let new_way = RefWay {
            line,
            prefetched: is_prefetch,
            used: false,
            lru: if low_priority {
                clock.saturating_sub(1 << 20)
            } else {
                clock
            },
        };
        if set.len() < ways {
            set.push(new_way);
            return None;
        }
        let victim_index = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.lru)
            .map(|(i, _)| i)
            .expect("set at capacity");
        let victim = set[victim_index];
        if victim.prefetched && !victim.used {
            self.prefetch_unused_evictions += 1;
        }
        set[victim_index] = new_way;
        Some(victim.line)
    }

    fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[derive(Debug, Clone, Copy)]
enum CacheOp {
    DemandLookup(u64),
    PrefetchFill(u64, bool),
    DemandFill(u64),
}

fn cache_op_strategy(lines: u64) -> impl Strategy<Value = CacheOp> {
    (0u8..4, 0..lines, any::<bool>()).prop_map(|(kind, line, low_priority)| match kind {
        0 => CacheOp::DemandLookup(line),
        1 => CacheOp::PrefetchFill(line, low_priority),
        2 => CacheOp::DemandFill(line),
        // Weight lookups a little higher: they exercise LRU promotion.
        _ => CacheOp::DemandLookup(line),
    })
}

proptest! {
    /// The arena cache is observationally identical to the reference model
    /// over arbitrary operation sequences: same hits, same misses, same
    /// evictions (line and order), same occupancy and same
    /// unused-prefetch-eviction count. Power-of-two set counts are used so
    /// the reference's `%` indexing and the arena's masking agree.
    #[test]
    fn arena_cache_matches_reference_lru(
        sets_log2 in 0usize..4,
        ways in 1usize..5,
        ops in proptest::collection::vec(cache_op_strategy(96), 1..400),
    ) {
        let sets = 1usize << sets_log2;
        let config = CacheConfig::new("diff", sets * ways * CACHE_LINE_BYTES, ways, 1, 4);
        prop_assert_eq!(config.sets(), sets);
        let mut arena = Cache::new(config);
        let mut reference = ReferenceCache::new(sets, ways);
        for op in ops {
            match op {
                CacheOp::DemandLookup(line) => {
                    let a = arena.demand_lookup(LineAddr::new(line));
                    let r = reference.demand_lookup(line);
                    prop_assert_eq!(a, r, "hit/miss diverged on lookup of {}", line);
                }
                CacheOp::PrefetchFill(line, low_priority) => {
                    let a = arena.fill(LineAddr::new(line), true, low_priority);
                    let r = reference.fill(line, true, low_priority);
                    prop_assert_eq!(a.map(|e| e.line.as_u64()), r, "prefetch-fill eviction diverged");
                }
                CacheOp::DemandFill(line) => {
                    let a = arena.fill(LineAddr::new(line), false, false);
                    let r = reference.fill(line, false, false);
                    prop_assert_eq!(a.map(|e| e.line.as_u64()), r, "demand-fill eviction diverged");
                }
            }
        }
        prop_assert_eq!(arena.stats().demand_hits, reference.demand_hits);
        prop_assert_eq!(arena.stats().demand_misses, reference.demand_misses);
        prop_assert_eq!(
            arena.stats().prefetch_unused_evictions,
            reference.prefetch_unused_evictions
        );
        prop_assert_eq!(arena.resident_lines(), reference.resident());
    }
}

/// Drives `build()` twice over the same access stream — once collecting each
/// access's requests into a fresh `Vec` (the seed API's semantics), once
/// appending everything into a single reused sink — and asserts the reused
/// sink saw exactly the concatenation. Any prefetcher that cleared, dropped
/// or re-read the sink's prior contents would diverge.
fn assert_sink_matches_collect<P: Prefetcher, F: Fn() -> P>(
    build: F,
    stream: &[(u64, u64, u8)],
    label: &str,
) {
    let mut collected: Vec<PrefetchRequest> = Vec::new();
    let mut fresh = build();
    for &(pc, addr, bw) in stream {
        let access = MemoryAccess::new(Pc::new(pc), Addr::new(addr), AccessKind::Load);
        let ctx = PrefetchContext::default()
            .with_bandwidth(dspatch_types::BandwidthQuartile::from_bits(bw));
        collected.extend(fresh.collect_requests(&access, &ctx));
    }

    let mut reused = build();
    let mut sink = PrefetchSink::new();
    for &(pc, addr, bw) in stream {
        let access = MemoryAccess::new(Pc::new(pc), Addr::new(addr), AccessKind::Load);
        let ctx = PrefetchContext::default()
            .with_bandwidth(dspatch_types::BandwidthQuartile::from_bits(bw));
        reused.on_access(&access, &ctx, &mut sink);
    }
    assert_eq!(
        sink.requests(),
        collected.as_slice(),
        "{label}: reused sink diverged from per-call collection"
    );
}

fn access_stream_strategy() -> impl Strategy<Value = Vec<(u64, u64, u8)>> {
    proptest::collection::vec(
        (0u64..16, 0u64..(1 << 18), 0u8..4)
            .prop_map(|(pc, line, bw)| (0x400000 + pc * 4, line * CACHE_LINE_BYTES as u64, bw)),
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every prefetcher emits the same request sequence through a reused
    /// sink as through per-access collection, for arbitrary access streams.
    #[test]
    fn sink_api_matches_per_call_collection(stream in access_stream_strategy()) {
        assert_sink_matches_collect(
            || StridePrefetcher::new(StrideConfig::default()),
            &stream,
            "stride",
        );
        assert_sink_matches_collect(
            || StreamPrefetcher::new(StreamConfig::default()),
            &stream,
            "stream",
        );
        assert_sink_matches_collect(
            || AmpmPrefetcher::new(AmpmConfig::default()),
            &stream,
            "ampm",
        );
        assert_sink_matches_collect(|| BopPrefetcher::new(BopConfig::default()), &stream, "bop");
        assert_sink_matches_collect(|| SmsPrefetcher::new(SmsConfig::default()), &stream, "sms");
        assert_sink_matches_collect(|| SppPrefetcher::new(SppConfig::default()), &stream, "spp");
        assert_sink_matches_collect(
            || dspatch::DsPatch::new(dspatch::DsPatchConfig::default()),
            &stream,
            "dspatch",
        );
        assert_sink_matches_collect(
            || {
                AdjunctPrefetcher::new(
                    SppPrefetcher::new(SppConfig::default()),
                    dspatch::DsPatch::new(dspatch::DsPatchConfig::default()),
                )
            },
            &stream,
            "dspatch+spp",
        );
    }
}

/// Golden-value check that the sink API reproduces the seed `Vec` API's
/// request sequences for a recorded input: the stream prefetcher's behaviour
/// is simple enough to state exactly.
#[test]
fn stream_prefetcher_golden_requests() {
    let mut pf = StreamPrefetcher::new(StreamConfig::default());
    let mut sink = PrefetchSink::new();
    let ctx = PrefetchContext::default();
    // First touch of a page prefetches the next `degree` (4) lines upward.
    let access = MemoryAccess::new(Pc::new(1), Addr::new(0x8000), AccessKind::Load);
    pf.on_access(&access, &ctx, &mut sink);
    let lines: Vec<u64> = sink.requests().iter().map(|r| r.line.as_u64()).collect();
    let base = 0x8000 / CACHE_LINE_BYTES as u64;
    assert_eq!(lines, vec![base + 1, base + 2, base + 3, base + 4]);
    // A descending second access within the same page flips direction;
    // requests append after the first batch because the caller did not clear
    // the sink.
    let second = base + 20;
    let access = MemoryAccess::new(
        Pc::new(1),
        Addr::new(0x8000 + 30 * CACHE_LINE_BYTES as u64),
        AccessKind::Load,
    );
    pf.on_access(&access, &ctx, &mut sink);
    sink.truncate(4); // drop the ascending batch from the warm-up access
    let access = MemoryAccess::new(
        Pc::new(1),
        Addr::new(0x8000 + 20 * CACHE_LINE_BYTES as u64),
        AccessKind::Load,
    );
    pf.on_access(&access, &ctx, &mut sink);
    assert_eq!(sink.len(), 8);
    assert_eq!(
        sink.requests()[4..]
            .iter()
            .map(|r| r.line.as_u64())
            .collect::<Vec<_>>(),
        vec![second - 1, second - 2, second - 3, second - 4]
    );
}

/// The cycle-skip fast-forward must be *exact*: a machine with
/// `cycle_skipping` disabled steps every cycle through the reference loop,
/// and the entire `SimResult` — instruction counts, finish cycles, total
/// cycles, every cache/DRAM/pollution statistic — must be bit-identical.
mod cycle_skip {
    use super::*;
    use dspatch_prefetchers::lineup;
    use dspatch_sim::{SimResult, SimulationBuilder, SystemConfig};
    use dspatch_trace::{Trace, TraceRecord};

    fn run(records: Vec<TraceRecord>, skipping: bool, prefetch: bool) -> SimResult {
        let mut config = SystemConfig::single_thread();
        config.cycle_skipping = skipping;
        let prefetcher: Box<dyn Prefetcher> = if prefetch {
            lineup::dspatch_plus_spp()
        } else {
            Box::new(dspatch_types::NullPrefetcher::new())
        };
        SimulationBuilder::new(config)
            .with_core(Trace::new("skip-diff", records), prefetcher)
            .run()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn skipped_run_is_bit_identical_to_cycle_by_cycle(
            accesses in proptest::collection::vec(
                (0u64..256, 0u64..64, 0u32..80, any::<bool>()),
                1..250,
            ),
            prefetch in any::<bool>(),
        ) {
            let records: Vec<TraceRecord> = accesses
                .iter()
                .map(|&(page, offset, gap, dependent)| {
                    let mut record = TraceRecord::load(0x400, page * 4096 + offset * 64)
                        .with_gap(gap);
                    if dependent {
                        record = record.with_dependent(true);
                    }
                    record
                })
                .collect();
            let skipped = run(records.clone(), true, prefetch);
            let reference = run(records, false, prefetch);
            prop_assert_eq!(skipped, reference);
        }
    }
}
