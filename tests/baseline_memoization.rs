//! Proves the campaign engine's baseline memoization by counting actual
//! simulator invocations ([`dspatch_sim::simulations_started`]): a figure
//! with K prefetcher columns must run each (workload, config) baseline
//! exactly once — K+1 simulations per workload instead of the pre-redesign
//! 2K (a fresh baseline per column).
//!
//! This file deliberately holds a single `#[test]` so no concurrently
//! running test in the same process can perturb the global counter.

use dspatch_harness::campaign::{
    run_campaign, CampaignSpec, CellSpec, ConfigSpec, PrefetcherSel, TargetSelector,
};
use dspatch_harness::experiments;
use dspatch_harness::runner::{PrefetcherKind, RunScale};
use dspatch_sim::simulations_started;

#[test]
fn baselines_simulate_once_per_workload_and_config() {
    let scale = RunScale {
        accesses_per_workload: 600,
        workloads_per_category: 1,
        mixes: 1,
        threads: 2,
        sim_workers: 0,
        sampling: None,
    };

    // Figure 4: 9 categories × 1 workload, K = 3 prefetcher columns.
    let workloads = 9;
    let kinds = 3;
    let before = simulations_started();
    let fig = experiments::fig4_baseline_prefetchers(&scale);
    let ran = (simulations_started() - before) as usize;
    assert_eq!(fig.rows.len(), 10, "9 categories + GEOMEAN");
    assert_eq!(
        ran,
        workloads * (kinds + 1),
        "each workload must simulate once per column plus ONE memoized baseline"
    );
    assert!(
        ran < workloads * kinds * 2,
        "must beat the pre-redesign cost of a fresh baseline per column"
    );

    // Figure 5: one cell, four parameterized SMS columns over the capped
    // 9-workload suite — baselines must be shared across all four sweep
    // points (pre-redesign: simulated per point).
    let before = simulations_started();
    let sweep = experiments::fig5_sms_storage_sweep(&scale);
    let ran = (simulations_started() - before) as usize;
    assert_eq!(sweep.rows.len(), 4);
    assert_eq!(ran, workloads * (4 + 1));

    // The executor's own accounting agrees with the global counter.
    let spec = CampaignSpec::single_cell(
        "counter cross-check",
        CellSpec {
            label: "hpc".to_owned(),
            targets: TargetSelector::Category(dspatch_trace::workloads::WorkloadCategory::Hpc),
            prefetchers: vec![
                PrefetcherSel::Kind(PrefetcherKind::Spp),
                PrefetcherSel::Kind(PrefetcherKind::Bop),
            ],
            config: ConfigSpec::single_thread(),
            baseline: true,
        },
    );
    let before = simulations_started();
    let result = run_campaign(&spec, &scale).expect("valid spec");
    let ran = (simulations_started() - before) as usize;
    assert_eq!(ran, result.stats.sims_run);
    assert_eq!(result.stats.baseline_sims, 1);
    assert_eq!(ran, 3, "1 workload × (1 baseline + 2 candidates)");
}
