//! Golden parity for the streaming trace layer: feeding the simulator a
//! lazily-evaluated [`dspatch_trace::SynthSource`] must produce **bit-identical**
//! [`dspatch_sim::SimResult`]s to feeding it the materialized `Trace` — for
//! every workload in the suite, and for multi-programmed mixes. The streaming
//! path is O(1) in trace length; these tests prove that costs nothing in
//! fidelity.

use dspatch_harness::runner::PrefetcherKind;
use dspatch_prefetchers::AnyPrefetcher;
use dspatch_sim::{SimResult, SimulationBuilder, SystemConfig};
use dspatch_trace::{
    collect_source, heterogeneous_mixes, homogeneous_mixes, suite, ChainSource, IntoTraceSource,
    TraceSource,
};

const SMOKE_ACCESSES: usize = 1_200;

fn run_single(source: impl IntoTraceSource, kind: PrefetcherKind) -> SimResult {
    SimulationBuilder::new(SystemConfig::single_thread())
        .with_core(source, kind.build())
        .run()
}

#[test]
fn every_suite_workload_streams_bit_identically_to_its_materialized_trace() {
    for workload in suite() {
        let trace = workload.generate(SMOKE_ACCESSES);
        let source = workload.source(SMOKE_ACCESSES);
        // The records themselves agree...
        {
            let mut probe = workload.source(SMOKE_ACCESSES);
            assert_eq!(
                collect_source(&mut probe),
                trace,
                "{}: source records diverge from materialized trace",
                workload.name
            );
        }
        // ...and so does the full simulation through the headline prefetcher.
        let materialized = run_single(trace, PrefetcherKind::DspatchPlusSpp);
        let streamed = run_single(source, PrefetcherKind::DspatchPlusSpp);
        assert_eq!(
            materialized, streamed,
            "{}: streaming and materialized SimResults diverge",
            workload.name
        );
    }
}

#[test]
fn multi_programmed_mixes_stream_bit_identically() {
    let config = SystemConfig::multi_programmed();
    for mix in homogeneous_mixes(4).into_iter().take(2) {
        let mut materialized = SimulationBuilder::new(config.clone());
        let mut streamed = SimulationBuilder::new(config.clone());
        for workload in &mix.workloads {
            materialized = materialized.with_core(
                workload.generate(SMOKE_ACCESSES),
                PrefetcherKind::DspatchPlusSpp.build(),
            );
            streamed = streamed.with_core(
                workload.source(SMOKE_ACCESSES),
                PrefetcherKind::DspatchPlusSpp.build(),
            );
        }
        assert_eq!(materialized.run(), streamed.run(), "{}", mix.name);
    }
}

/// Static dispatch is a pure call-convention change: for **every** registry
/// prefetcher, a heterogeneous 4-core mix simulated with the statically
/// dispatched [`AnyPrefetcher`] must be bit-identical to the same mix
/// simulated through the boxed `dyn Prefetcher` escape hatch.
#[test]
fn every_registry_prefetcher_is_bit_identical_between_static_and_boxed_dispatch() {
    let mix = &heterogeneous_mixes(1, 4, 7)[0];
    let config = SystemConfig::multi_programmed();
    for kind in PrefetcherKind::ALL {
        let mut static_dispatch = SimulationBuilder::new(config.clone());
        let mut boxed_dispatch = SimulationBuilder::new(config.clone());
        for workload in &mix.workloads {
            static_dispatch =
                static_dispatch.with_core(workload.source(SMOKE_ACCESSES), kind.build_any());
            // `kind.build()` yields Box<dyn Prefetcher>, which converts into
            // the AnyPrefetcher::Boxed escape hatch.
            boxed_dispatch =
                boxed_dispatch.with_core(workload.source(SMOKE_ACCESSES), kind.build());
        }
        assert!(
            !matches!(kind.build_any(), AnyPrefetcher::Boxed(_)),
            "{}: registry kinds must construct statically dispatched variants",
            kind.label()
        );
        assert_eq!(
            static_dispatch.run(),
            boxed_dispatch.run(),
            "{}: static and boxed dispatch diverged on mix {}",
            kind.label(),
            mix.name
        );
    }
}

#[test]
fn forked_and_reset_sources_replay_the_same_simulation() {
    let workload = &suite()[0];
    let mut source = workload.source(SMOKE_ACCESSES);
    // Consume part of the source, then fork: the fork starts from scratch.
    for _ in 0..100 {
        source.next_record();
    }
    let from_fork = run_single(source.fork(), PrefetcherKind::Spp);
    source.reset();
    let from_reset = run_single(source, PrefetcherKind::Spp);
    let fresh = run_single(workload.source(SMOKE_ACCESSES), PrefetcherKind::Spp);
    assert_eq!(from_fork, fresh);
    assert_eq!(from_reset, fresh);
}

#[test]
fn file_backed_replay_matches_the_in_memory_simulation() {
    let workload = &suite()[3];
    let trace = workload.generate(SMOKE_ACCESSES);
    let path = std::env::temp_dir().join(format!(
        "dspatch_streaming_golden_{}.dspt",
        std::process::id()
    ));
    dspatch_trace::io::save_trace(&trace, &path).expect("save trace");
    let source = dspatch_trace::io::open_trace_source(&path).expect("open trace");
    let from_file = run_single(source, PrefetcherKind::DspatchPlusSpp);
    std::fs::remove_file(&path).ok();
    let in_memory = run_single(trace, PrefetcherKind::DspatchPlusSpp);
    assert_eq!(from_file, in_memory);
}

#[test]
fn chained_sources_simulate_like_the_concatenated_trace() {
    let workloads = suite();
    let (a, b) = (&workloads[0], &workloads[1]);
    let mut concatenated = a.generate(600);
    concatenated.extend(b.generate(600).records);
    let chain = ChainSource::new(
        concatenated.name.clone(),
        vec![Box::new(a.source(600)), Box::new(b.source(600))],
    );
    let materialized = run_single(concatenated, PrefetcherKind::Spp);
    let streamed = run_single(chain, PrefetcherKind::Spp);
    assert_eq!(materialized, streamed);
}
