//! Build and run a custom experiment campaign programmatically: the same
//! declarative [`CampaignSpec`] the `dspatch-lab --spec` CLI consumes as a
//! JSON file, constructed in Rust. The engine deduplicates simulations and
//! memoizes every (workload, config) baseline, so adding prefetcher columns
//! costs one simulation each — not two.
//!
//! Run with `cargo run --release --example custom_campaign`.

use dspatch_harness::campaign::{
    run_campaign, CampaignSpec, CellSpec, ConfigSpec, PrefetcherSel, ScaleSpec, TargetSelector,
};
use dspatch_harness::runner::PrefetcherKind;
use dspatch_repro::example_accesses;
use dspatch_sim::DramSpeedGrade;
use dspatch_trace::workloads::WorkloadCategory;

fn main() {
    let spec = CampaignSpec {
        name: "custom campaign: cloud workloads under bandwidth pressure".to_owned(),
        scale: Some(ScaleSpec::Custom {
            accesses_per_workload: example_accesses(6_000),
            workloads_per_category: 2,
            mixes: 1,
            threads: None, // available_parallelism
            sim_workers: 0,
            sampling: None,
        }),
        cells: vec![
            CellSpec {
                label: "full bandwidth".to_owned(),
                targets: TargetSelector::Category(WorkloadCategory::Cloud),
                prefetchers: vec![
                    PrefetcherSel::Kind(PrefetcherKind::Spp),
                    PrefetcherSel::Kind(PrefetcherKind::DspatchPlusSpp),
                ],
                config: ConfigSpec::single_thread(),
                baseline: true,
            },
            CellSpec {
                label: "starved (1ch DDR4-1600)".to_owned(),
                targets: TargetSelector::Category(WorkloadCategory::Cloud),
                prefetchers: vec![
                    PrefetcherSel::Kind(PrefetcherKind::Spp),
                    PrefetcherSel::Kind(PrefetcherKind::DspatchPlusSpp),
                ],
                config: ConfigSpec::single_thread().with_dram(1, DramSpeedGrade::Ddr4_1600),
                baseline: true,
            },
        ],
    };

    // The spec is a data file: this JSON is exactly what `dspatch-lab
    // --spec my_campaign.json` accepts.
    println!("--- spec ---\n{}", spec.to_json().render());

    let scale = spec
        .scale
        .as_ref()
        .expect("spec carries a scale")
        .resolve()
        .expect("valid scale");
    let result = run_campaign(&spec, &scale).expect("valid campaign");
    println!("--- report ---\n{}", result.to_table().render());
    println!(
        "{} rows from {} simulations ({} baselines, {} requests served by the memo table) on {} threads",
        result.rows.len(),
        result.stats.sims_run,
        result.stats.baseline_sims,
        result.stats.memo_hits,
        result.stats.threads
    );
}
