//! Compare DSPatch, SPP and DSPatch+SPP on one Cloud-style workload running
//! on the full simulated memory hierarchy.
//!
//! Run with `cargo run --release --example spatial_scan`.

use dspatch_harness::runner::{run_workload, PrefetcherKind, RunScale};
use dspatch_repro::example_accesses;
use dspatch_sim::SystemConfig;
use dspatch_trace::workloads::{category_suite, WorkloadCategory};

fn main() {
    let scale = RunScale {
        accesses_per_workload: example_accesses(20_000),
        workloads_per_category: 1,
        mixes: 1,
        threads: 1,
        sim_workers: 0,
        sampling: None,
    };
    let workload = &category_suite(WorkloadCategory::Cloud)[0];
    let config = SystemConfig::single_thread();
    println!("workload: {} ({})\n", workload.name, workload.category);

    let baseline = run_workload(workload, PrefetcherKind::Baseline, &config, &scale);
    println!(
        "{:<14} ipc {:.3}  (coverage –, DRAM CAS {})",
        "baseline",
        baseline.cores[0].ipc(),
        baseline.dram.cas_commands
    );
    for kind in [
        PrefetcherKind::Spp,
        PrefetcherKind::Dspatch,
        PrefetcherKind::DspatchPlusSpp,
    ] {
        let result = run_workload(workload, kind, &config, &scale);
        let acc = result.total_accounting();
        println!(
            "{:<14} ipc {:.3}  speedup {:+.1}%  coverage {:.0}%  accuracy {:.0}%  DRAM CAS {}",
            kind.label(),
            result.cores[0].ipc(),
            (result.speedup_over(&baseline) - 1.0) * 100.0,
            acc.coverage() * 100.0,
            acc.accuracy() * 100.0,
            result.dram.cas_commands,
        );
    }
}
