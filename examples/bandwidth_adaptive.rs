//! Show DSPatch's bandwidth adaptivity: the same workload simulated across
//! the paper's six DRAM configurations (Figure 15 at reduced scale).
//!
//! Run with `cargo run --release --example bandwidth_adaptive`.

use dspatch_harness::runner::{perf_delta, PrefetcherKind, RunScale};
use dspatch_repro::example_accesses;
use dspatch_sim::{DramConfig, SystemConfig};
use dspatch_trace::workloads::memory_intensive_suite;

fn main() {
    let scale = RunScale {
        accesses_per_workload: example_accesses(8_000),
        workloads_per_category: 1,
        mixes: 1,
        threads: 8,
        sim_workers: 0,
        sampling: None,
    };
    let workloads = scale.select_workloads(memory_intensive_suite());
    println!("{} memory-intensive workloads per point\n", workloads.len());
    println!(
        "{:<10} {:>10} {:>12} {:>14}",
        "DRAM", "peak GB/s", "SPP", "DSPatch+SPP"
    );
    for (channels, speed) in SystemConfig::bandwidth_sweep() {
        let config = SystemConfig::single_thread().with_dram(channels, speed);
        let dram = DramConfig::with_speed(channels, speed);
        let spp = perf_delta(&workloads, PrefetcherKind::Spp, &config, &scale);
        let dsp = perf_delta(&workloads, PrefetcherKind::DspatchPlusSpp, &config, &scale);
        println!(
            "{:<10} {:>10.1} {:>11.1}% {:>13.1}%",
            dram.label(),
            dram.peak_bandwidth_gbps(),
            spp * 100.0,
            dsp * 100.0
        );
    }
}
