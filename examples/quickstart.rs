//! Quickstart: train DSPatch on a spatially-patterned access stream and show
//! what it learns and prefetches.
//!
//! Run with `cargo run --release --example quickstart`.

use dspatch::{DsPatch, DsPatchConfig};
use dspatch_types::{
    AccessKind, Addr, BandwidthQuartile, MemoryAccess, Pc, PrefetchContext, Prefetcher,
};

fn main() {
    let mut prefetcher = DsPatch::new(DsPatchConfig::default());
    println!(
        "DSPatch storage budget:\n{}\n",
        prefetcher.storage_breakdown()
    );

    // A program that touches the same sparse object layout (lines 0, 3, 6, 9,
    // 12 of a page) in many different pages, always triggered by the same PC,
    // and with the per-page order scrambled by out-of-order execution.
    let trigger_pc = Pc::new(0x400beef);
    let layout = [0u64, 3, 6, 9, 12];
    let ctx = PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q0);
    for page in 0..200u64 {
        let mut order = layout;
        order.rotate_left((page % layout.len() as u64) as usize);
        for offset in order {
            let addr = Addr::new(page * 4096 + offset * 64);
            let access = MemoryAccess::new(trigger_pc, addr, AccessKind::Load);
            let _ = prefetcher.collect_requests(&access, &ctx);
        }
    }

    // A brand-new page triggered by the same PC: DSPatch replays the learnt
    // coverage-biased pattern.
    let trigger = MemoryAccess::new(trigger_pc, Addr::new(10_000 * 4096), AccessKind::Load);
    let low_bw = prefetcher.collect_requests(&trigger, &ctx);
    println!(
        "low bandwidth utilization  -> {} prefetches (coverage-biased)",
        low_bw.len()
    );
    for request in &low_bw {
        println!("  prefetch {}", request.line.to_addr());
    }

    // The same trigger under high bandwidth pressure selects the
    // accuracy-biased pattern (or throttles completely).
    let busy = PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q3);
    let trigger = MemoryAccess::new(trigger_pc, Addr::new(10_001 * 4096), AccessKind::Load);
    let high_bw = prefetcher.collect_requests(&trigger, &busy);
    println!(
        "high bandwidth utilization -> {} prefetches (accuracy-biased)",
        high_bw.len()
    );

    let stats = prefetcher.stats();
    println!(
        "\ntriggers: {}, CovP predictions: {}, AccP predictions: {}, throttled: {}",
        stats.triggers, stats.covp_predictions, stats.accp_predictions, stats.throttled_predictions
    );
}
