//! Trace replay: export a workload as an on-disk trace, then stream it back
//! through the simulator — the external-trace workflow behind
//! `dspatch-lab --trace-file`, shown as a library API.
//!
//! The file streams into the machine through the pull-based `TraceSource`
//! layer: resident memory is the read buffer, not the trace, so the same
//! code replays billion-access captures. Run with
//! `cargo run --release --example trace_replay`.

use dspatch_harness::runner::PrefetcherKind;
use dspatch_sim::{SimulationBuilder, SystemConfig};
use dspatch_trace::io::{open_trace_source, save_trace};
use dspatch_trace::suite;

fn main() {
    let accesses = dspatch_repro::example_accesses(40_000);

    // Pretend "cassandra-read" is an externally captured trace: write it to
    // disk in the native binary format. (A ChampSim-style text file would
    // work identically — `open_trace_source` sniffs the format.)
    let workload = suite()
        .into_iter()
        .find(|w| w.name == "cassandra-read")
        .expect("suite workload");
    let path = std::env::temp_dir().join(format!("dspatch_replay_{}.dspt", std::process::id()));
    save_trace(&workload.generate(accesses), &path).expect("write trace file");

    // Open it once, then fork the source per run: each simulation streams
    // the file independently from record zero.
    let source = open_trace_source(&path).expect("open trace file");
    let meta = source.meta();
    println!(
        "replaying '{}' from {} ({} accesses)\n",
        meta.name,
        path.display(),
        meta.accesses.value()
    );

    let run = |kind: PrefetcherKind| {
        SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(source.fork(), kind.build())
            .run()
    };
    let baseline = run(PrefetcherKind::Baseline);
    for kind in [
        PrefetcherKind::Spp,
        PrefetcherKind::Dspatch,
        PrefetcherKind::DspatchPlusSpp,
    ] {
        let result = run(kind);
        println!(
            "{:12} IPC {:.3}  speedup {:.4}x",
            kind.label(),
            result.cores[0].ipc(),
            result.speedup_over(&baseline)
        );
    }
    std::fs::remove_file(&path).ok();
}
