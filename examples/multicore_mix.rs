//! Four-core multi-programmed run: a heterogeneous mix of memory-intensive
//! workloads sharing the LLC and two DDR4-2133 channels (Figure 17/18 at
//! reduced scale).
//!
//! Run with `cargo run --release --example multicore_mix`.

use dspatch_harness::runner::{run_mix, PrefetcherKind, RunScale};
use dspatch_repro::example_accesses;
use dspatch_sim::SystemConfig;
use dspatch_trace::heterogeneous_mixes;

fn main() {
    let scale = RunScale {
        accesses_per_workload: example_accesses(8_000),
        workloads_per_category: 0,
        mixes: 1,
        threads: 1,
        sim_workers: 0,
        sampling: None,
    };
    let mix = &heterogeneous_mixes(1, 4, 42)[0];
    let config = SystemConfig::multi_programmed();
    println!("mix: {}", mix.name);
    for (i, w) in mix.workloads.iter().enumerate() {
        println!("  core {i}: {} ({})", w.name, w.category);
    }
    println!();

    let baseline = run_mix(mix, PrefetcherKind::Baseline, &config, &scale);
    for kind in [
        PrefetcherKind::Baseline,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ] {
        let result = run_mix(mix, kind, &config, &scale);
        let ipcs: Vec<String> = result
            .cores
            .iter()
            .map(|c| format!("{:.2}", c.ipc()))
            .collect();
        println!(
            "{:<14} per-core IPC [{}]  delta over baseline {:+.1}%  avg DRAM utilization {:.0}%",
            kind.label(),
            ipcs.join(", "),
            (result.speedup_over(&baseline) - 1.0) * 100.0,
            result.dram.average_utilization() * 100.0,
        );
    }
}
