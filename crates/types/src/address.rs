//! Address newtypes used throughout the workspace.
//!
//! Three granularities appear in the paper and in the simulator:
//!
//! * byte addresses ([`Addr`]) as produced by the program,
//! * 64 B cache-line addresses ([`LineAddr`]) as tracked by the caches and
//!   prefetchers, and
//! * 4 KB physical-page addresses ([`PageAddr`]), the spatial region DSPatch
//!   learns bit-patterns over.
//!
//! The newtypes prevent the classic "was this already shifted?" bug class:
//! a [`LineAddr`] can never be accidentally treated as a byte address.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one cache line in bytes (paper, Table 2).
pub const CACHE_LINE_BYTES: usize = 64;
/// Size of one physical page / spatial region in bytes (paper, Section 3.3).
pub const PAGE_BYTES: usize = 4096;
/// Size of one 2 KB page segment; DSPatch triggers prefetches per segment
/// (paper, Section 3.7).
pub const SEGMENT_BYTES: usize = 2048;
/// Number of cache lines in a 4 KB page (64).
pub const LINES_PER_PAGE: usize = PAGE_BYTES / CACHE_LINE_BYTES;
/// Number of cache lines in a 2 KB segment (32).
pub const LINES_PER_SEGMENT: usize = SEGMENT_BYTES / CACHE_LINE_BYTES;

const LINE_SHIFT: u32 = CACHE_LINE_BYTES.trailing_zeros();
const PAGE_SHIFT: u32 = PAGE_BYTES.trailing_zeros();

/// A byte-granularity physical address.
///
/// # Example
///
/// ```
/// use dspatch_types::Addr;
/// let a = Addr::new(0x1000 + 130);
/// assert_eq!(a.page_line_offset(), 2);
/// assert_eq!(a.page().as_u64(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cache line this byte belongs to.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Returns the 4 KB page this byte belongs to.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_SHIFT)
    }

    /// Returns the cache-line offset within the 4 KB page, in `0..64`.
    pub const fn page_line_offset(self) -> usize {
        ((self.0 >> LINE_SHIFT) & (LINES_PER_PAGE as u64 - 1)) as usize
    }

    /// Returns the byte offset within the 4 KB page, in `0..4096`.
    pub const fn page_byte_offset(self) -> usize {
        (self.0 & (PAGE_BYTES as u64 - 1)) as usize
    }

    /// Adds a byte delta, saturating at zero for negative results.
    pub fn offset_by(self, delta: i64) -> Self {
        Self(self.0.saturating_add_signed(delta))
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Self::new(value)
    }
}

impl From<Addr> for u64 {
    fn from(value: Addr) -> Self {
        value.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A 64 B cache-line address (byte address shifted right by 6).
///
/// # Example
///
/// ```
/// use dspatch_types::{Addr, LineAddr};
/// let line = Addr::new(0x1040).line();
/// assert_eq!(line, LineAddr::new(0x41));
/// assert_eq!(line.to_addr(), Addr::new(0x1040));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number (not a byte address).
    pub const fn new(line_number: u64) -> Self {
        Self(line_number)
    }

    /// Returns the raw line number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts back to a byte address (start of the line).
    pub const fn to_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Returns the page containing this line.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }

    /// Returns the line offset within its 4 KB page, in `0..64`.
    pub const fn page_offset(self) -> usize {
        (self.0 & (LINES_PER_PAGE as u64 - 1)) as usize
    }

    /// Returns the line obtained by adding `delta` lines (saturating at zero).
    pub fn offset_by(self, delta: i64) -> Self {
        Self(self.0.saturating_add_signed(delta))
    }

    /// Signed line delta `self - other`.
    pub fn delta_from(self, other: LineAddr) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl From<Addr> for LineAddr {
    fn from(value: Addr) -> Self {
        value.line()
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A 4 KB page address (byte address shifted right by 12).
///
/// # Example
///
/// ```
/// use dspatch_types::{Addr, PageAddr};
/// let page = PageAddr::new(7);
/// assert_eq!(page.to_addr(), Addr::new(7 * 4096));
/// assert_eq!(page.line_at(3), Addr::new(7 * 4096 + 3 * 64).line());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page number (not a byte address).
    pub const fn new(page_number: u64) -> Self {
        Self(page_number)
    }

    /// Returns the raw page number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts back to the byte address of the start of the page.
    pub const fn to_addr(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }

    /// Returns the line address at `line_offset` (0..64) within this page.
    ///
    /// # Panics
    ///
    /// Panics if `line_offset >= 64`.
    pub fn line_at(self, line_offset: usize) -> LineAddr {
        assert!(
            line_offset < LINES_PER_PAGE,
            "line offset {line_offset} out of range for a 4 KB page"
        );
        LineAddr((self.0 << (PAGE_SHIFT - LINE_SHIFT)) + line_offset as u64)
    }

    /// Returns the line offset of `line` within this page, in `0..64`.
    ///
    /// The caller is responsible for ensuring `line` actually lies in this
    /// page; the offset is computed modulo the page size either way.
    pub const fn line_offset_of(self, line: LineAddr) -> usize {
        line.page_offset()
    }

    /// Returns `true` if `line` lies within this page.
    pub const fn contains(self, line: LineAddr) -> bool {
        line.page().0 == self.0
    }
}

impl From<Addr> for PageAddr {
    fn from(value: Addr) -> Self {
        value.page()
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(LINES_PER_SEGMENT, 32);
        assert_eq!(SEGMENT_BYTES * 2, PAGE_BYTES);
    }

    #[test]
    fn addr_round_trips_through_line_and_page() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().to_addr().as_u64(), 0xdead_beef & !0x3f);
        assert_eq!(a.page().to_addr().as_u64(), 0xdead_beef & !0xfff);
    }

    #[test]
    fn page_line_offset_matches_line_page_offset() {
        for raw in [0u64, 63, 64, 4095, 4096, 0x1234_5678, u64::MAX / 2] {
            let a = Addr::new(raw);
            assert_eq!(a.page_line_offset(), a.line().page_offset());
        }
    }

    #[test]
    fn line_delta_is_signed() {
        let a = LineAddr::new(100);
        let b = LineAddr::new(97);
        assert_eq!(a.delta_from(b), 3);
        assert_eq!(b.delta_from(a), -3);
    }

    #[test]
    fn page_line_at_round_trips_offset() {
        let page = PageAddr::new(42);
        for off in 0..LINES_PER_PAGE {
            let line = page.line_at(off);
            assert!(page.contains(line));
            assert_eq!(page.line_offset_of(line), off);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_line_at_rejects_out_of_range_offset() {
        let _ = PageAddr::new(1).line_at(64);
    }

    #[test]
    fn offset_by_saturates_at_zero() {
        assert_eq!(Addr::new(10).offset_by(-100), Addr::new(0));
        assert_eq!(LineAddr::new(10).offset_by(-100), LineAddr::new(0));
        assert_eq!(LineAddr::new(10).offset_by(5), LineAddr::new(15));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Addr::new(0x40)).is_empty());
        assert!(!format!("{}", LineAddr::new(1)).is_empty());
        assert!(!format!("{}", PageAddr::new(1)).is_empty());
    }
}
