//! The 2-bit DRAM bandwidth-utilization signal.
//!
//! The DSPatch paper (Section 3.2) tracks memory bandwidth utilization with a
//! CAS-command counter at the memory controller, quantizes it into quartiles
//! of the peak bandwidth, and broadcasts the resulting 2-bit value to every
//! core. This module defines that 2-bit value; the counter itself lives in
//! the DRAM model (`dspatch-sim`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Quantized DRAM bandwidth utilization, as broadcast by the memory
/// controller.
///
/// The encoding follows the paper: `Q0` means less than 25 % of peak
/// bandwidth is being used, `Q3` means 75 % or more.
///
/// # Example
///
/// ```
/// use dspatch_types::BandwidthQuartile;
/// assert_eq!(BandwidthQuartile::from_fraction(0.10), BandwidthQuartile::Q0);
/// assert_eq!(BandwidthQuartile::from_fraction(0.60), BandwidthQuartile::Q2);
/// assert!(BandwidthQuartile::Q3.is_high());
/// assert!(!BandwidthQuartile::Q1.is_high());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum BandwidthQuartile {
    /// Utilization below 25 % of peak.
    #[default]
    Q0,
    /// Utilization in [25 %, 50 %).
    Q1,
    /// Utilization in [50 %, 75 %).
    Q2,
    /// Utilization at or above 75 % of peak.
    Q3,
}

impl BandwidthQuartile {
    /// All quartiles in increasing order of utilization.
    pub const ALL: [BandwidthQuartile; 4] = [
        BandwidthQuartile::Q0,
        BandwidthQuartile::Q1,
        BandwidthQuartile::Q2,
        BandwidthQuartile::Q3,
    ];

    /// Builds the quartile from a utilization fraction in `[0, 1]`.
    /// Values outside the range are clamped.
    pub fn from_fraction(fraction: f64) -> Self {
        let f = fraction.clamp(0.0, 1.0);
        if f >= 0.75 {
            BandwidthQuartile::Q3
        } else if f >= 0.50 {
            BandwidthQuartile::Q2
        } else if f >= 0.25 {
            BandwidthQuartile::Q1
        } else {
            BandwidthQuartile::Q0
        }
    }

    /// Returns the 2-bit hardware encoding (0..=3).
    pub const fn as_bits(self) -> u8 {
        match self {
            BandwidthQuartile::Q0 => 0,
            BandwidthQuartile::Q1 => 1,
            BandwidthQuartile::Q2 => 2,
            BandwidthQuartile::Q3 => 3,
        }
    }

    /// Builds the quartile from a 2-bit encoding; values above 3 saturate to
    /// [`BandwidthQuartile::Q3`].
    pub const fn from_bits(bits: u8) -> Self {
        match bits {
            0 => BandwidthQuartile::Q0,
            1 => BandwidthQuartile::Q1,
            2 => BandwidthQuartile::Q2,
            _ => BandwidthQuartile::Q3,
        }
    }

    /// Utilization is 75 % of peak or more — the "throttle for accuracy"
    /// region of the DSPatch selection logic.
    pub const fn is_high(self) -> bool {
        matches!(self, BandwidthQuartile::Q3)
    }

    /// Utilization is 50 % of peak or more.
    pub const fn is_above_half(self) -> bool {
        matches!(self, BandwidthQuartile::Q2 | BandwidthQuartile::Q3)
    }

    /// Lower bound of the quartile as a fraction of peak bandwidth.
    pub const fn lower_bound(self) -> f64 {
        match self {
            BandwidthQuartile::Q0 => 0.0,
            BandwidthQuartile::Q1 => 0.25,
            BandwidthQuartile::Q2 => 0.50,
            BandwidthQuartile::Q3 => 0.75,
        }
    }
}

impl fmt::Display for BandwidthQuartile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BandwidthQuartile::Q0 => write!(f, "<25%"),
            BandwidthQuartile::Q1 => write!(f, "25-50%"),
            BandwidthQuartile::Q2 => write!(f, "50-75%"),
            BandwidthQuartile::Q3 => write!(f, ">=75%"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_boundaries_map_to_expected_quartiles() {
        assert_eq!(BandwidthQuartile::from_fraction(0.0), BandwidthQuartile::Q0);
        assert_eq!(
            BandwidthQuartile::from_fraction(0.2499),
            BandwidthQuartile::Q0
        );
        assert_eq!(
            BandwidthQuartile::from_fraction(0.25),
            BandwidthQuartile::Q1
        );
        assert_eq!(
            BandwidthQuartile::from_fraction(0.4999),
            BandwidthQuartile::Q1
        );
        assert_eq!(BandwidthQuartile::from_fraction(0.5), BandwidthQuartile::Q2);
        assert_eq!(
            BandwidthQuartile::from_fraction(0.75),
            BandwidthQuartile::Q3
        );
        assert_eq!(BandwidthQuartile::from_fraction(1.0), BandwidthQuartile::Q3);
    }

    #[test]
    fn fraction_clamps_out_of_range() {
        assert_eq!(
            BandwidthQuartile::from_fraction(-1.0),
            BandwidthQuartile::Q0
        );
        assert_eq!(BandwidthQuartile::from_fraction(9.0), BandwidthQuartile::Q3);
    }

    #[test]
    fn bits_round_trip() {
        for q in BandwidthQuartile::ALL {
            assert_eq!(BandwidthQuartile::from_bits(q.as_bits()), q);
        }
        assert_eq!(BandwidthQuartile::from_bits(200), BandwidthQuartile::Q3);
    }

    #[test]
    fn ordering_matches_utilization() {
        assert!(BandwidthQuartile::Q0 < BandwidthQuartile::Q1);
        assert!(BandwidthQuartile::Q2 < BandwidthQuartile::Q3);
        assert!(BandwidthQuartile::Q3.is_above_half());
        assert!(BandwidthQuartile::Q2.is_above_half());
        assert!(!BandwidthQuartile::Q1.is_above_half());
    }

    #[test]
    fn lower_bounds_are_monotonic() {
        let bounds: Vec<f64> = BandwidthQuartile::ALL
            .iter()
            .map(|q| q.lower_bound())
            .collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
