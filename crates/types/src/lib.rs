//! Common types shared across the DSPatch reproduction workspace.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Addr`], [`LineAddr`], [`PageAddr`] — byte, cache-line and 4 KB page
//!   addresses with the conversions the prefetchers and the simulator need.
//! * [`MemoryAccess`] — a single demand access observed by a cache level
//!   (program counter, address, read/write, core id).
//! * [`PrefetchRequest`] and the [`Prefetcher`] trait — the interface between
//!   the simulator's cache hierarchy and any prefetching algorithm.
//! * [`BandwidthQuartile`] — the 2-bit DRAM bandwidth-utilization signal the
//!   memory controller broadcasts to all cores (DSPatch paper, Section 3.2).
//!
//! # Example
//!
//! ```
//! use dspatch_types::{Addr, CACHE_LINE_BYTES, PAGE_BYTES};
//!
//! let a = Addr::new(0x1234_5678);
//! let line = a.line();
//! let page = a.page();
//! assert_eq!(line.to_addr().as_u64() % CACHE_LINE_BYTES as u64, 0);
//! assert_eq!(page.to_addr().as_u64() % PAGE_BYTES as u64, 0);
//! assert_eq!(page.line_offset_of(line), a.page_line_offset());
//! ```

pub mod access;
pub mod address;
pub mod bandwidth;
pub mod prefetch;
pub mod snapshot;

pub use access::{AccessKind, CoreId, MemoryAccess, Pc};
pub use address::{
    Addr, LineAddr, PageAddr, CACHE_LINE_BYTES, LINES_PER_PAGE, LINES_PER_SEGMENT, PAGE_BYTES,
    SEGMENT_BYTES,
};
pub use bandwidth::BandwidthQuartile;
pub use prefetch::{
    FillLevel, NullPrefetcher, PrefetchContext, PrefetchRequest, PrefetchSink, Prefetcher,
};
pub use snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
