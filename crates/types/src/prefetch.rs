//! The prefetcher interface shared by DSPatch, the baseline prefetchers and
//! the simulator.
//!
//! A prefetcher is attached to one cache level. The hierarchy calls
//! [`Prefetcher::on_access`] for every access that level observes (for L2
//! prefetchers in this reproduction, that is every L1 miss — demand or
//! prefetch — exactly as in the paper's methodology, Section 4.1), passing a
//! [`PrefetchContext`] that carries the current cycle, whether the access hit
//! in the cache, and the broadcast [`BandwidthQuartile`]. The prefetcher
//! returns zero or more [`PrefetchRequest`]s; the hierarchy filters ones that
//! are already resident or in flight and issues the rest.

use crate::access::MemoryAccess;
use crate::address::LineAddr;
use crate::bandwidth::BandwidthQuartile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The cache level a prefetched line should be filled into.
///
/// The paper's L2 prefetchers fill into the L2 and the LLC; SPP additionally
/// demotes low-confidence prefetches to fill only into the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FillLevel {
    /// Fill into the L1 data cache (used only by the L1 stride prefetcher).
    L1,
    /// Fill into the L2 cache (and, by inclusion, the LLC).
    L2,
    /// Fill only into the last-level cache.
    Llc,
}

impl fmt::Display for FillLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FillLevel::L1 => write!(f, "L1"),
            FillLevel::L2 => write!(f, "L2"),
            FillLevel::Llc => write!(f, "LLC"),
        }
    }
}

/// A single prefetch candidate produced by a prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_types::{FillLevel, LineAddr, PrefetchRequest};
/// let req = PrefetchRequest::new(LineAddr::new(0x100))
///     .with_fill_level(FillLevel::Llc)
///     .with_low_priority(true);
/// assert_eq!(req.line, LineAddr::new(0x100));
/// assert!(req.low_priority);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefetchRequest {
    /// The cache line to prefetch.
    pub line: LineAddr,
    /// Where the line should be filled.
    pub fill_level: FillLevel,
    /// When set, the line is inserted with low replacement priority. DSPatch
    /// requests this for coverage-biased prefetches whose `MeasureCovP`
    /// counter is saturated (paper, Section 3.6).
    pub low_priority: bool,
}

impl PrefetchRequest {
    /// Creates a normal-priority request that fills into the L2.
    pub fn new(line: LineAddr) -> Self {
        Self {
            line,
            fill_level: FillLevel::L2,
            low_priority: false,
        }
    }

    /// Sets the fill level.
    pub fn with_fill_level(mut self, fill_level: FillLevel) -> Self {
        self.fill_level = fill_level;
        self
    }

    /// Sets the replacement-priority hint.
    pub fn with_low_priority(mut self, low_priority: bool) -> Self {
        self.low_priority = low_priority;
        self
    }
}

/// Per-access context handed to a prefetcher by the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PrefetchContext {
    /// Current core clock cycle.
    pub cycle: u64,
    /// Whether the triggering access hit in the cache level the prefetcher is
    /// attached to.
    pub cache_hit: bool,
    /// The 2-bit DRAM bandwidth-utilization quartile broadcast by the memory
    /// controller.
    pub bandwidth: BandwidthQuartile,
}

impl PrefetchContext {
    /// Creates a context for `cycle` with the remaining fields defaulted.
    pub fn at_cycle(cycle: u64) -> Self {
        Self {
            cycle,
            ..Self::default()
        }
    }

    /// Sets the cache-hit flag.
    pub fn with_cache_hit(mut self, cache_hit: bool) -> Self {
        self.cache_hit = cache_hit;
        self
    }

    /// Sets the bandwidth quartile.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthQuartile) -> Self {
        self.bandwidth = bandwidth;
        self
    }
}

/// A hardware prefetching algorithm.
///
/// Implementations must be deterministic functions of the access stream they
/// observe so that simulation results are reproducible.
pub trait Prefetcher {
    /// Human-readable name used in reports ("SPP", "DSPatch+SPP", ...).
    fn name(&self) -> &str;

    /// Observes one access at the attached cache level and returns prefetch
    /// candidates. Candidates may duplicate lines that are already cached;
    /// the hierarchy is responsible for filtering them.
    fn on_access(&mut self, access: &MemoryAccess, ctx: &PrefetchContext) -> Vec<PrefetchRequest>;

    /// Notifies the prefetcher that `line` was filled into the attached
    /// cache. `was_prefetch` distinguishes prefetch fills from demand fills.
    /// The default implementation ignores the notification.
    fn on_fill(&mut self, line: LineAddr, was_prefetch: bool) {
        let _ = (line, was_prefetch);
    }

    /// Hardware storage budget of the prefetcher in bits, used to reproduce
    /// the storage columns of Tables 1 and 3.
    fn storage_bits(&self) -> u64;
}

/// A prefetcher that never issues prefetches. Used as the no-prefetching
/// baseline and as a placeholder in configurations without an L2 prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub fn new() -> Self {
        Self
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn on_access(
        &mut self,
        _access: &MemoryAccess,
        _ctx: &PrefetchContext,
    ) -> Vec<PrefetchRequest> {
        Vec::new()
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessKind, Pc};
    use crate::address::Addr;

    #[test]
    fn null_prefetcher_is_silent_and_free() {
        let mut p = NullPrefetcher::new();
        let access = MemoryAccess::new(Pc::new(1), Addr::new(0x1000), AccessKind::Load);
        assert!(p.on_access(&access, &PrefetchContext::default()).is_empty());
        assert_eq!(p.storage_bits(), 0);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn request_builder_sets_fields() {
        let req = PrefetchRequest::new(LineAddr::new(7))
            .with_fill_level(FillLevel::Llc)
            .with_low_priority(true);
        assert_eq!(req.fill_level, FillLevel::Llc);
        assert!(req.low_priority);
        let default = PrefetchRequest::new(LineAddr::new(7));
        assert_eq!(default.fill_level, FillLevel::L2);
        assert!(!default.low_priority);
    }

    #[test]
    fn context_builder_sets_fields() {
        let ctx = PrefetchContext::at_cycle(42)
            .with_cache_hit(true)
            .with_bandwidth(BandwidthQuartile::Q3);
        assert_eq!(ctx.cycle, 42);
        assert!(ctx.cache_hit);
        assert_eq!(ctx.bandwidth, BandwidthQuartile::Q3);
    }

    #[test]
    fn prefetcher_trait_is_object_safe() {
        let mut boxed: Box<dyn Prefetcher> = Box::new(NullPrefetcher::new());
        let access = MemoryAccess::new(Pc::new(1), Addr::new(0), AccessKind::Load);
        assert!(boxed
            .on_access(&access, &PrefetchContext::default())
            .is_empty());
    }
}
