//! The prefetcher interface shared by DSPatch, the baseline prefetchers and
//! the simulator.
//!
//! A prefetcher is attached to one cache level. The hierarchy calls
//! [`Prefetcher::on_access`] for every access that level observes (for L2
//! prefetchers in this reproduction, that is every L1 miss — demand or
//! prefetch — exactly as in the paper's methodology, Section 4.1), passing a
//! [`PrefetchContext`] that carries the current cycle, whether the access hit
//! in the cache, and the broadcast [`BandwidthQuartile`]. The prefetcher
//! appends zero or more [`PrefetchRequest`]s to the caller-owned
//! [`PrefetchSink`]; the hierarchy filters ones that are already resident or
//! in flight and issues the rest.
//!
//! The sink is the hot-path contract: the simulator observes hundreds of
//! millions of accesses per run, so `on_access` must not allocate. The
//! caller keeps one `PrefetchSink` alive across calls (clearing it between
//! accesses) and its buffer reaches a steady-state capacity after warm-up,
//! after which the whole train-predict-issue path is allocation-free.

use crate::access::MemoryAccess;
use crate::address::LineAddr;
use crate::bandwidth::BandwidthQuartile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The cache level a prefetched line should be filled into.
///
/// The paper's L2 prefetchers fill into the L2 and the LLC; SPP additionally
/// demotes low-confidence prefetches to fill only into the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FillLevel {
    /// Fill into the L1 data cache (used only by the L1 stride prefetcher).
    L1,
    /// Fill into the L2 cache (and, by inclusion, the LLC).
    L2,
    /// Fill only into the last-level cache.
    Llc,
}

impl fmt::Display for FillLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FillLevel::L1 => write!(f, "L1"),
            FillLevel::L2 => write!(f, "L2"),
            FillLevel::Llc => write!(f, "LLC"),
        }
    }
}

/// A single prefetch candidate produced by a prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_types::{FillLevel, LineAddr, PrefetchRequest};
/// let req = PrefetchRequest::new(LineAddr::new(0x100))
///     .with_fill_level(FillLevel::Llc)
///     .with_low_priority(true);
/// assert_eq!(req.line, LineAddr::new(0x100));
/// assert!(req.low_priority);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefetchRequest {
    /// The cache line to prefetch.
    pub line: LineAddr,
    /// Where the line should be filled.
    pub fill_level: FillLevel,
    /// When set, the line is inserted with low replacement priority. DSPatch
    /// requests this for coverage-biased prefetches whose `MeasureCovP`
    /// counter is saturated (paper, Section 3.6).
    pub low_priority: bool,
}

impl PrefetchRequest {
    /// Creates a normal-priority request that fills into the L2.
    pub fn new(line: LineAddr) -> Self {
        Self {
            line,
            fill_level: FillLevel::L2,
            low_priority: false,
        }
    }

    /// Sets the fill level.
    pub fn with_fill_level(mut self, fill_level: FillLevel) -> Self {
        self.fill_level = fill_level;
        self
    }

    /// Sets the replacement-priority hint.
    pub fn with_low_priority(mut self, low_priority: bool) -> Self {
        self.low_priority = low_priority;
        self
    }
}

/// Per-access context handed to a prefetcher by the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PrefetchContext {
    /// Current core clock cycle.
    pub cycle: u64,
    /// Whether the triggering access hit in the cache level the prefetcher is
    /// attached to.
    pub cache_hit: bool,
    /// The 2-bit DRAM bandwidth-utilization quartile broadcast by the memory
    /// controller.
    pub bandwidth: BandwidthQuartile,
}

impl PrefetchContext {
    /// Creates a context for `cycle` with the remaining fields defaulted.
    pub fn at_cycle(cycle: u64) -> Self {
        Self {
            cycle,
            ..Self::default()
        }
    }

    /// Sets the cache-hit flag.
    pub fn with_cache_hit(mut self, cache_hit: bool) -> Self {
        self.cache_hit = cache_hit;
        self
    }

    /// Sets the bandwidth quartile.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthQuartile) -> Self {
        self.bandwidth = bandwidth;
        self
    }
}

/// A reusable, caller-owned buffer prefetchers append their requests to.
///
/// The sink exists so the per-access hot path performs no heap allocation in
/// steady state: the simulator keeps one sink per hook point alive for the
/// whole run and [`clear`](PrefetchSink::clear)s it between accesses, so the
/// backing buffer is allocated once during warm-up and then only reused.
///
/// # Example
///
/// ```
/// use dspatch_types::{LineAddr, PrefetchRequest, PrefetchSink};
/// let mut sink = PrefetchSink::new();
/// sink.push(PrefetchRequest::new(LineAddr::new(3)));
/// assert_eq!(sink.len(), 1);
/// assert_eq!(sink.requests()[0].line, LineAddr::new(3));
/// sink.clear();
/// assert!(sink.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchSink {
    requests: Vec<PrefetchRequest>,
}

impl PrefetchSink {
    /// Creates an empty sink (no allocation until the first push).
    pub const fn new() -> Self {
        Self {
            requests: Vec::new(),
        }
    }

    /// Creates a sink with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            requests: Vec::with_capacity(capacity),
        }
    }

    /// Appends one request.
    #[inline]
    pub fn push(&mut self, request: PrefetchRequest) {
        self.requests.push(request);
    }

    /// Removes all requests, keeping the allocated capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.requests.clear();
    }

    /// Number of buffered requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the sink holds no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The buffered requests, in push order.
    #[inline]
    pub fn requests(&self) -> &[PrefetchRequest] {
        &self.requests
    }

    /// Truncates the buffer to at most `len` requests.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.requests.truncate(len);
    }

    /// Mutable access to the buffered requests, for callers that merge or
    /// compact a range in place (e.g. the composite prefetcher
    /// deduplicating its adjunct's candidates without a scratch copy).
    #[inline]
    pub fn requests_mut(&mut self) -> &mut [PrefetchRequest] {
        &mut self.requests
    }

    /// Current capacity of the backing buffer (steady-state allocation
    /// checks in tests observe this).
    pub fn capacity(&self) -> usize {
        self.requests.capacity()
    }

    /// Consumes the sink, returning the backing vector.
    pub fn into_vec(self) -> Vec<PrefetchRequest> {
        self.requests
    }
}

impl Extend<PrefetchRequest> for PrefetchSink {
    fn extend<T: IntoIterator<Item = PrefetchRequest>>(&mut self, iter: T) {
        self.requests.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PrefetchSink {
    type Item = &'a PrefetchRequest;
    type IntoIter = std::slice::Iter<'a, PrefetchRequest>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

/// A hardware prefetching algorithm.
///
/// Implementations must be deterministic functions of the access stream they
/// observe so that simulation results are reproducible.
///
/// `Send` is a supertrait so a per-core machine (which owns its prefetcher)
/// can be moved onto an epoch worker thread by the sharded multi-core
/// engine; prefetchers are plain state machines, so this costs nothing.
pub trait Prefetcher: Send {
    /// Human-readable name used in reports ("SPP", "DSPatch+SPP", ...).
    fn name(&self) -> &str;

    /// Observes one access at the attached cache level and **appends**
    /// prefetch candidates to `out` (implementations never clear the sink —
    /// the caller decides when a fresh set starts). Candidates may duplicate
    /// lines that are already cached; the hierarchy is responsible for
    /// filtering them.
    ///
    /// Implementations must not allocate per call in steady state: all
    /// request construction goes through the caller-owned sink.
    fn on_access(&mut self, access: &MemoryAccess, ctx: &PrefetchContext, out: &mut PrefetchSink);

    /// Convenience wrapper collecting one access's requests into a fresh
    /// `Vec`. For tests, examples and one-shot introspection only — the
    /// simulator hot path reuses a sink instead.
    fn collect_requests(
        &mut self,
        access: &MemoryAccess,
        ctx: &PrefetchContext,
    ) -> Vec<PrefetchRequest> {
        let mut sink = PrefetchSink::new();
        self.on_access(access, ctx, &mut sink);
        sink.into_vec()
    }

    /// Notifies the prefetcher that `line` was filled into the attached
    /// cache. `was_prefetch` distinguishes prefetch fills from demand fills.
    /// The default implementation ignores the notification.
    fn on_fill(&mut self, line: LineAddr, was_prefetch: bool) {
        let _ = (line, was_prefetch);
    }

    /// Hardware storage budget of the prefetcher in bits, used to reproduce
    /// the storage columns of Tables 1 and 3.
    fn storage_bits(&self) -> u64;
}

/// A prefetcher that never issues prefetches. Used as the no-prefetching
/// baseline and as a placeholder in configurations without an L2 prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub fn new() -> Self {
        Self
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn on_access(
        &mut self,
        _access: &MemoryAccess,
        _ctx: &PrefetchContext,
        _out: &mut PrefetchSink,
    ) {
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

impl crate::snapshot::SnapshotState for NullPrefetcher {
    fn snapshot_tag(&self) -> &'static str {
        "null"
    }

    fn save_state(
        &self,
        _writer: &mut crate::snapshot::StateWriter,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        Ok(())
    }

    fn load_state(
        &mut self,
        _reader: &mut crate::snapshot::StateReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessKind, Pc};
    use crate::address::Addr;

    #[test]
    fn null_prefetcher_is_silent_and_free() {
        let mut p = NullPrefetcher::new();
        let access = MemoryAccess::new(Pc::new(1), Addr::new(0x1000), AccessKind::Load);
        let mut sink = PrefetchSink::new();
        p.on_access(&access, &PrefetchContext::default(), &mut sink);
        assert!(sink.is_empty());
        assert!(p
            .collect_requests(&access, &PrefetchContext::default())
            .is_empty());
        assert_eq!(p.storage_bits(), 0);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn sink_accumulates_and_clears_without_losing_capacity() {
        let mut sink = PrefetchSink::with_capacity(4);
        for i in 0..4u64 {
            sink.push(PrefetchRequest::new(LineAddr::new(i)));
        }
        assert_eq!(sink.len(), 4);
        let capacity = sink.capacity();
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.capacity(), capacity, "clear must keep the buffer");
        sink.extend((0..2u64).map(|i| PrefetchRequest::new(LineAddr::new(i))));
        assert_eq!(sink.requests().len(), 2);
        sink.truncate(1);
        assert_eq!(sink.len(), 1);
        let lines: Vec<u64> = (&sink).into_iter().map(|r| r.line.as_u64()).collect();
        assert_eq!(lines, vec![0]);
        assert_eq!(sink.into_vec().len(), 1);
    }

    #[test]
    fn request_builder_sets_fields() {
        let req = PrefetchRequest::new(LineAddr::new(7))
            .with_fill_level(FillLevel::Llc)
            .with_low_priority(true);
        assert_eq!(req.fill_level, FillLevel::Llc);
        assert!(req.low_priority);
        let default = PrefetchRequest::new(LineAddr::new(7));
        assert_eq!(default.fill_level, FillLevel::L2);
        assert!(!default.low_priority);
    }

    #[test]
    fn context_builder_sets_fields() {
        let ctx = PrefetchContext::at_cycle(42)
            .with_cache_hit(true)
            .with_bandwidth(BandwidthQuartile::Q3);
        assert_eq!(ctx.cycle, 42);
        assert!(ctx.cache_hit);
        assert_eq!(ctx.bandwidth, BandwidthQuartile::Q3);
    }

    #[test]
    fn prefetcher_trait_is_object_safe() {
        let mut boxed: Box<dyn Prefetcher> = Box::new(NullPrefetcher::new());
        let access = MemoryAccess::new(Pc::new(1), Addr::new(0), AccessKind::Load);
        let mut sink = PrefetchSink::new();
        boxed.on_access(&access, &PrefetchContext::default(), &mut sink);
        assert!(sink.is_empty());
        assert!(boxed
            .collect_requests(&access, &PrefetchContext::default())
            .is_empty());
    }
}
