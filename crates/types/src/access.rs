//! Demand-access events observed by the cache hierarchy.

use crate::address::{Addr, LineAddr, PageAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A program counter value. Prefetchers use the PC as (part of) their
/// signature; DSPatch uses an 8-bit folded hash of the trigger PC.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(u64);

impl Pc {
    /// Creates a PC from its raw value.
    pub const fn new(pc: u64) -> Self {
        Self(pc)
    }

    /// Returns the raw PC value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Folds the PC down to `bits` bits by XOR-ing successive `bits`-wide
    /// chunks together. This is the "folded-XOR hash" the paper uses to index
    /// the 256-entry SPT (Section 3.4) and that SMS-like prefetchers use to
    /// compress PC tags.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn folded_xor(self, bits: u32) -> u64 {
        assert!(bits > 0 && bits <= 64, "fold width must be in 1..=64");
        if bits == 64 {
            return self.0;
        }
        let mask = (1u64 << bits) - 1;
        let mut value = self.0;
        let mut folded = 0u64;
        while value != 0 {
            folded ^= value & mask;
            value >>= bits;
        }
        folded
    }
}

impl From<u64> for Pc {
    fn from(value: u64) -> Self {
        Self::new(value)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

/// Identifier of a core in a multi-core simulation (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AccessKind {
    /// A demand load.
    #[default]
    Load,
    /// A demand store.
    Store,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Load`].
    pub const fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// A single demand access presented to a cache level and to its prefetcher.
///
/// L2 prefetchers in the paper (and in this reproduction) are trained on L1
/// misses — both demand and prefetch misses from the L1 — so the hierarchy
/// constructs one `MemoryAccess` per L1 miss it forwards to the L2.
///
/// # Example
///
/// ```
/// use dspatch_types::{AccessKind, Addr, CoreId, MemoryAccess, Pc};
/// let access = MemoryAccess::new(Pc::new(0x400123), Addr::new(0x7f00_0040), AccessKind::Load)
///     .with_core(CoreId(2));
/// assert_eq!(access.line().page_offset(), 1);
/// assert_eq!(access.core, CoreId(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Program counter of the instruction performing the access.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Core issuing the access.
    pub core: CoreId,
}

impl MemoryAccess {
    /// Creates an access on core 0.
    pub fn new(pc: Pc, addr: Addr, kind: AccessKind) -> Self {
        Self {
            pc,
            addr,
            kind,
            core: CoreId(0),
        }
    }

    /// Returns a copy of the access attributed to `core`.
    pub fn with_core(mut self, core: CoreId) -> Self {
        self.core = core;
        self
    }

    /// Cache line touched by the access.
    pub fn line(&self) -> LineAddr {
        self.addr.line()
    }

    /// 4 KB page touched by the access.
    pub fn page(&self) -> PageAddr {
        self.addr.page()
    }

    /// Cache-line offset within the 4 KB page, in `0..64`.
    pub fn page_line_offset(&self) -> usize {
        self.addr.page_line_offset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_xor_is_within_width() {
        for pc in [0u64, 1, 0xffff_ffff_ffff_ffff, 0x1234_5678_9abc_def0] {
            let folded = Pc::new(pc).folded_xor(8);
            assert!(folded < 256, "fold of {pc:#x} escaped 8 bits: {folded:#x}");
        }
    }

    #[test]
    fn folded_xor_full_width_is_identity() {
        assert_eq!(Pc::new(0xabcd).folded_xor(64), 0xabcd);
    }

    #[test]
    fn folded_xor_distinguishes_nearby_pcs() {
        let a = Pc::new(0x400100).folded_xor(8);
        let b = Pc::new(0x400104).folded_xor(8);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn folded_xor_rejects_zero_width() {
        let _ = Pc::new(1).folded_xor(0);
    }

    #[test]
    fn access_helpers_agree_with_address_helpers() {
        let access = MemoryAccess::new(Pc::new(1), Addr::new(0x2345), AccessKind::Store);
        assert_eq!(access.line(), Addr::new(0x2345).line());
        assert_eq!(access.page(), Addr::new(0x2345).page());
        assert_eq!(
            access.page_line_offset(),
            Addr::new(0x2345).page_line_offset()
        );
        assert!(!access.kind.is_load());
    }
}
