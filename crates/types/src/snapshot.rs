//! Checkpoint serialization primitives: a versioned little-endian byte
//! layout shared by every snapshottable component.
//!
//! The vendored `serde` shim is a no-op (derives emit nothing), so machine
//! checkpoints are hand-serialized: each component implements
//! [`SnapshotState`] and writes its mutable state — never its configuration,
//! which the restoring side rebuilds through the normal constructor path —
//! through a [`StateWriter`] and reads it back through a [`StateReader`].
//! The simulator's `MachineState` composes these per-component sections into
//! one magic-and-version-framed byte blob (see `dspatch_sim::snapshot`).
//!
//! The layout rules are deliberately boring:
//!
//! * all integers are little-endian fixed width; `f64` travels as
//!   `to_bits()`;
//! * strings and nested byte sections are `u32`-length-prefixed;
//! * sequences are `u64`-length-prefixed;
//! * readers fail with a typed [`SnapshotError`] (never panic) on
//!   truncation, so a damaged checkpoint file surfaces as a clean error.

use std::fmt;

/// Typed failure while reading (or refusing to write) snapshot state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the value at `offset` was complete.
    UnexpectedEof {
        /// Byte offset at which the read started.
        offset: usize,
    },
    /// The stream carries a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The component cannot be snapshotted at all (e.g. a type-erased
    /// `Boxed` prefetcher with no serializable representation).
    Unsupported(String),
    /// The bytes parsed but describe an impossible or mismatched state.
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnexpectedEof { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            SnapshotError::Unsupported(what) => write!(f, "cannot snapshot {what}"),
            SnapshotError::Invalid(message) => write!(f, "invalid snapshot: {message}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only byte sink for snapshot state.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes an `i8` as its two's-complement byte.
    pub fn put_i8(&mut self, value: i8) {
        self.buf.push(value as u8);
    }

    /// Writes a little-endian two's-complement `i64`.
    pub fn put_i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Writes a `usize` as a `u64` (checkpoints are host-width-independent).
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Writes a sequence length (`u64` prefix for element loops).
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Writes a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_u32(value.len() as u32);
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Writes a `u32`-length-prefixed nested byte section (e.g. one
    /// component's sub-snapshot).
    pub fn put_section(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes `Option<u64>` as a presence byte plus the value when present.
    pub fn put_opt_u64(&mut self, value: Option<u64>) {
        match value {
            Some(v) => {
                self.put_bool(true);
                self.put_u64(v);
            }
            None => self.put_bool(false),
        }
    }
}

/// Cursor over snapshot bytes; every read is bounds-checked.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over the full byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Errors unless every byte was consumed — catches layout drift where a
    /// reader silently ignores a trailing field.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Invalid`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Invalid(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let start = self.pos;
        let end = start
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(SnapshotError::UnexpectedEof { offset: start })?;
        self.pos = end;
        Ok(&self.buf[start..end])
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::UnexpectedEof`] on truncation (as do all
    /// the sibling readers below).
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte; any nonzero value is `true`.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads an `i8`.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_i8(&mut self) -> Result<i8, SnapshotError> {
        Ok(self.get_u8()? as i8)
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `usize` written by [`StateWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        Ok(self.get_u64()? as usize)
    }

    /// Reads a sequence length, bounded by the bytes actually remaining so
    /// a corrupted length cannot drive a huge allocation.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Invalid`] when the claimed element count exceeds
    /// the remaining bytes (elements occupy at least one byte each).
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(SnapshotError::Invalid(format!(
                "sequence claims {len} elements with only {} bytes left",
                self.remaining()
            )));
        }
        Ok(len as usize)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnexpectedEof`] on truncation,
    /// [`SnapshotError::Invalid`] on non-UTF-8 bytes.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Invalid("string section is not UTF-8".to_owned()))
    }

    /// Reads a `u32`-length-prefixed nested byte section.
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_section(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads `Option<u64>` written by [`StateWriter::put_opt_u64`].
    ///
    /// # Errors
    ///
    /// See [`StateReader::get_u8`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }
}

/// A component whose mutable state can round-trip through the snapshot
/// byte layout.
///
/// Implementations serialize **state only** — configuration is rebuilt by
/// the restoring side through the component's normal constructor, so the
/// byte layout stays small and a config change shows up as a code-version
/// change, not silent misinterpretation. `load_state` runs on a freshly
/// constructed component with the *same* configuration the saved one had.
pub trait SnapshotState {
    /// Stable identity tag, checked before state is loaded across
    /// components (e.g. a prefetcher family name like `"spp"`).
    fn snapshot_tag(&self) -> &'static str;

    /// Serializes the mutable state.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] when the component has no
    /// serializable representation.
    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError>;

    /// Restores the mutable state written by [`SnapshotState::save_state`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on truncated, foreign, or invalid bytes.
    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = StateWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i8(-5);
        w.put_i64(-1_000_000_007);
        w.put_f64(0.1 + 0.2);
        w.put_usize(12345);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_i8().unwrap(), -5);
        assert_eq!(r.get_i64().unwrap(), -1_000_000_007);
        assert_eq!(r.get_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        r.expect_end().unwrap();
    }

    #[test]
    fn strings_and_sections_round_trip() {
        let mut w = StateWriter::new();
        w.put_str("dspatch ✓");
        w.put_section(&[1, 2, 3]);
        w.put_section(&[]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "dspatch ✓");
        assert_eq!(r.get_section().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_section().unwrap(), &[] as &[u8]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = StateWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(SnapshotError::UnexpectedEof { offset: 0 }));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut w = StateWriter::new();
        w.put_u64(u64::MAX); // an absurd sequence length
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(matches!(r.get_len(), Err(SnapshotError::Invalid(_))));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = StateWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert!(matches!(r.expect_end(), Err(SnapshotError::Invalid(_))));
    }
}
