//! Hardware storage accounting (paper, Table 1).
//!
//! Table 1 of the paper breaks DSPatch's 3.6 KB budget down as:
//!
//! | Structure | Entry contents | Entries | Bits |
//! |---|---|---|---|
//! | PB  | page number (36) + bit-pattern (64) + 2 × [PC (8) + offset (6)] = 158 | 64 | 10 112 |
//! | SPT | CovP (32) + 2 × MeasureCovP (2) + 2 × OrCount (2) + AccP (32) + 2 × MeasureAccP (2) = 76 | 256 | 19 456 |
//!
//! [`StorageBreakdown`] recomputes those numbers from a
//! [`DsPatchConfig`](crate::DsPatchConfig) so that configuration sweeps keep
//! the storage column honest.

use crate::config::DsPatchConfig;
use crate::page_buffer::SEGMENTS_PER_PAGE;
use crate::spt::PATTERN_HALVES;
use dspatch_types::LINES_PER_PAGE;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage of the two DSPatch structures, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StorageBreakdown {
    /// Bits of one Page Buffer entry.
    pub pb_entry_bits: u64,
    /// Number of Page Buffer entries.
    pub pb_entries: u64,
    /// Bits of one Signature Prediction Table entry.
    pub spt_entry_bits: u64,
    /// Number of SPT entries.
    pub spt_entries: u64,
}

impl StorageBreakdown {
    /// Computes the breakdown for a configuration.
    pub fn for_config(config: &DsPatchConfig) -> Self {
        let pattern_bits = LINES_PER_PAGE as u64; // 64-bit raw pattern in the PB
        let trigger_bits = SEGMENTS_PER_PAGE as u64
            * (u64::from(config.signature_bits) + u64::from(config.trigger_offset_bits));
        let pb_entry_bits = u64::from(config.page_number_bits)
            + pattern_bits
            + trigger_bits
            + u64::from(config.pb_metadata_bits);

        let compressed_bits = (LINES_PER_PAGE / 2) as u64; // 32-bit CovP / AccP
        let counter_bits = 2u64;
        let spt_entry_bits = compressed_bits * 2 // CovP + AccP
            + PATTERN_HALVES as u64 * counter_bits * 3; // MeasureCovP, MeasureAccP, OrCount

        Self {
            pb_entry_bits,
            pb_entries: config.page_buffer_entries as u64,
            spt_entry_bits,
            spt_entries: config.spt_entries as u64,
        }
    }

    /// Total Page Buffer bits.
    pub fn pb_bits(&self) -> u64 {
        self.pb_entry_bits * self.pb_entries
    }

    /// Total Signature Prediction Table bits.
    pub fn spt_bits(&self) -> u64 {
        self.spt_entry_bits * self.spt_entries
    }

    /// Total bits of both structures.
    pub fn total_bits(&self) -> u64 {
        self.pb_bits() + self.spt_bits()
    }

    /// Total storage in kibibytes.
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

impl fmt::Display for StorageBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "PB : {} entries x {} bits = {} bits",
            self.pb_entries,
            self.pb_entry_bits,
            self.pb_bits()
        )?;
        writeln!(
            f,
            "SPT: {} entries x {} bits = {} bits",
            self.spt_entries,
            self.spt_entry_bits,
            self.spt_bits()
        )?;
        write!(
            f,
            "Total: {} bits = {:.2} KB",
            self.total_bits(),
            self.total_kib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reproduces_table1() {
        let b = StorageBreakdown::for_config(&DsPatchConfig::default());
        assert_eq!(b.pb_entry_bits, 158);
        assert_eq!(b.pb_bits(), 10_112);
        assert_eq!(b.spt_entry_bits, 76);
        assert_eq!(b.spt_bits(), 19_456);
        assert_eq!(b.total_bits(), 29_568);
        let kb = b.total_kib();
        assert!((3.5..3.7).contains(&kb), "expected ~3.6 KB, got {kb}");
    }

    #[test]
    fn storage_scales_with_entry_counts() {
        let small = StorageBreakdown::for_config(&DsPatchConfig {
            spt_entries: 128,
            page_buffer_entries: 32,
            ..DsPatchConfig::default()
        });
        let base = StorageBreakdown::for_config(&DsPatchConfig::default());
        assert_eq!(small.spt_bits() * 2, base.spt_bits());
        assert_eq!(small.pb_bits() * 2, base.pb_bits());
    }

    #[test]
    fn display_mentions_both_structures() {
        let text = StorageBreakdown::for_config(&DsPatchConfig::default()).to_string();
        assert!(text.contains("PB"));
        assert!(text.contains("SPT"));
        assert!(text.contains("KB"));
    }
}
