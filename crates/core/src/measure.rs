//! Quantified prediction accuracy and coverage.
//!
//! The paper (Section 3.5, Figure 8) measures how good a predicted
//! bit-pattern was for a page with three PopCounts:
//!
//! * `Cpred`  — bits set in the predicted pattern,
//! * `Creal`  — bits set in the program's actual access pattern,
//! * `Cacc`   — bits set in `predicted AND program`.
//!
//! Accuracy is `Cacc / Cpred`, coverage is `Cacc / Creal`, and both are
//! quantized into quartiles with shift-and-compare logic rather than a
//! divider. [`PredictionQuality`] packages that computation for either the
//! 64-bit line-granularity patterns or the 32-bit compressed patterns.

use crate::pattern::{CompressedPattern, SpatialPattern};
use dspatch_types::BandwidthQuartile;
use serde::{Deserialize, Serialize};

/// Quantizes `numerator / denominator` into a quartile without dividing,
/// mirroring the shift-and-compare hardware of Figure 8. A zero denominator
/// quantizes to the lowest quartile.
pub fn quantize_fraction(numerator: u32, denominator: u32) -> BandwidthQuartile {
    if denominator == 0 {
        return BandwidthQuartile::Q0;
    }
    let scaled = u64::from(numerator) * 4;
    let denom = u64::from(denominator);
    if scaled >= denom * 3 {
        BandwidthQuartile::Q3
    } else if scaled >= denom * 2 {
        BandwidthQuartile::Q2
    } else if scaled >= denom {
        BandwidthQuartile::Q1
    } else {
        BandwidthQuartile::Q0
    }
}

/// The quantized accuracy and coverage of one pattern prediction for one
/// page (or 2 KB page segment).
///
/// # Example
///
/// ```
/// use dspatch::{PredictionQuality, SpatialPattern};
/// use dspatch_types::BandwidthQuartile;
///
/// // Paper, Figure 8: program has 8 accesses, prediction has 5 bits,
/// // 3 of which were real accesses -> accuracy 3/5, coverage 3/8.
/// let program = SpatialPattern::from_bits(0b1011_0100_0011_1100);
/// let predicted = SpatialPattern::from_bits(0b1010_0110_0000_0001);
/// let q = PredictionQuality::measure(predicted, program);
/// assert_eq!(q.accuracy, BandwidthQuartile::Q2); // 60% -> 50-75%
/// assert_eq!(q.coverage, BandwidthQuartile::Q1); // 37.5% -> 25-50%
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredictionQuality {
    /// Quantized `Cacc / Cpred`.
    pub accuracy: BandwidthQuartile,
    /// Quantized `Cacc / Creal`.
    pub coverage: BandwidthQuartile,
    /// Raw accurate-prefetch count (`Cacc`).
    pub accurate: u32,
    /// Raw predicted count (`Cpred`).
    pub predicted: u32,
    /// Raw program access count (`Creal`).
    pub real: u32,
}

impl PredictionQuality {
    /// Measures a line-granularity prediction against the program pattern.
    pub fn measure(predicted: SpatialPattern, program: SpatialPattern) -> Self {
        Self::from_counts(
            (predicted & program).popcount(),
            predicted.popcount(),
            program.popcount(),
        )
    }

    /// Measures a compressed (128 B-granularity) prediction against the
    /// compressed program pattern, which is what the hardware tables store.
    pub fn measure_compressed(predicted: CompressedPattern, program: CompressedPattern) -> Self {
        Self::from_counts(
            (predicted & program).popcount(),
            predicted.popcount(),
            program.popcount(),
        )
    }

    /// Builds the quality record from raw PopCounts.
    pub fn from_counts(accurate: u32, predicted: u32, real: u32) -> Self {
        Self {
            accuracy: quantize_fraction(accurate, predicted),
            coverage: quantize_fraction(accurate, real),
            accurate,
            predicted,
            real,
        }
    }

    /// Whether quantized accuracy is below `threshold` (exclusive).
    pub fn accuracy_below(&self, threshold: BandwidthQuartile) -> bool {
        self.accuracy < threshold
    }

    /// Whether quantized coverage is below `threshold` (exclusive).
    pub fn coverage_below(&self, threshold: BandwidthQuartile) -> bool {
        self.coverage < threshold
    }

    /// Exact accuracy fraction (for statistics; hardware never computes it).
    pub fn accuracy_fraction(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            f64::from(self.accurate) / f64::from(self.predicted)
        }
    }

    /// Exact coverage fraction (for statistics; hardware never computes it).
    pub fn coverage_fraction(&self) -> f64 {
        if self.real == 0 {
            0.0
        } else {
            f64::from(self.accurate) / f64::from(self.real)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_handles_boundaries() {
        assert_eq!(quantize_fraction(0, 10), BandwidthQuartile::Q0);
        assert_eq!(quantize_fraction(2, 10), BandwidthQuartile::Q0);
        assert_eq!(quantize_fraction(3, 10), BandwidthQuartile::Q1);
        assert_eq!(quantize_fraction(5, 10), BandwidthQuartile::Q2);
        assert_eq!(
            quantize_fraction(7, 10),
            BandwidthQuartile::Q1.max(BandwidthQuartile::Q2)
        );
        assert_eq!(quantize_fraction(8, 10), BandwidthQuartile::Q3);
        assert_eq!(quantize_fraction(10, 10), BandwidthQuartile::Q3);
    }

    #[test]
    fn quantize_zero_denominator_is_lowest() {
        assert_eq!(quantize_fraction(5, 0), BandwidthQuartile::Q0);
    }

    #[test]
    fn quantize_exact_quarters() {
        assert_eq!(quantize_fraction(1, 4), BandwidthQuartile::Q1);
        assert_eq!(quantize_fraction(2, 4), BandwidthQuartile::Q2);
        assert_eq!(quantize_fraction(3, 4), BandwidthQuartile::Q3);
        assert_eq!(quantize_fraction(4, 4), BandwidthQuartile::Q3);
    }

    #[test]
    fn figure8_example_reproduces() {
        let program = SpatialPattern::from_bits(0b1011_0100_0011_1100);
        let predicted = SpatialPattern::from_bits(0b1010_0110_0000_0001);
        let q = PredictionQuality::measure(predicted, program);
        assert_eq!(q.real, 8);
        assert_eq!(q.predicted, 5);
        assert_eq!(q.accurate, 3);
        assert_eq!(q.accuracy, BandwidthQuartile::Q2);
        assert_eq!(q.coverage, BandwidthQuartile::Q1);
    }

    #[test]
    fn perfect_prediction_is_top_quartile_both_ways() {
        let p = SpatialPattern::from_bits(0xF0F0);
        let q = PredictionQuality::measure(p, p);
        assert_eq!(q.accuracy, BandwidthQuartile::Q3);
        assert_eq!(q.coverage, BandwidthQuartile::Q3);
        assert!((q.accuracy_fraction() - 1.0).abs() < f64::EPSILON);
        assert!((q.coverage_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_prediction_has_zero_quality() {
        let q = PredictionQuality::measure(SpatialPattern::EMPTY, SpatialPattern::from_bits(0xFF));
        assert_eq!(q.accuracy, BandwidthQuartile::Q0);
        assert_eq!(q.coverage, BandwidthQuartile::Q0);
        assert_eq!(q.accuracy_fraction(), 0.0);
    }

    #[test]
    fn compressed_measure_matches_manual_counts() {
        let program = CompressedPattern::from_bits(0b1111_0000);
        let predicted = CompressedPattern::from_bits(0b0011_0011);
        let q = PredictionQuality::measure_compressed(predicted, program);
        assert_eq!(q.predicted, 4);
        assert_eq!(q.real, 4);
        assert_eq!(q.accurate, 2);
        assert_eq!(q.accuracy, BandwidthQuartile::Q2);
    }

    #[test]
    fn below_threshold_helpers() {
        let q = PredictionQuality::from_counts(1, 4, 8);
        assert!(q.accuracy_below(BandwidthQuartile::Q2));
        assert!(q.coverage_below(BandwidthQuartile::Q2));
        let perfect = PredictionQuality::from_counts(8, 8, 8);
        assert!(!perfect.accuracy_below(BandwidthQuartile::Q2));
    }
}
