//! Spatial bit-patterns: the core data representation of DSPatch.
//!
//! A [`SpatialPattern`] records which 64 B cache lines of a 4 KB page were
//! accessed, one bit per line. Patterns can be *anchored* to a trigger
//! offset — rotated so that the trigger line becomes bit 0 — which makes
//! patterns from different pages comparable regardless of where in the page
//! the access stream started (paper, Section 3.3 and Figure 2).
//!
//! A [`CompressedPattern`] is the 128 B-granularity representation stored in
//! the Signature Prediction Table: one bit per *pair* of adjacent cache
//! lines, halving storage at a small accuracy cost (paper, Section 3.8).

use dspatch_types::LINES_PER_PAGE;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr};

/// Number of bits in a [`CompressedPattern`] (one per 128 B block of a 4 KB page).
pub const COMPRESSED_BITS: usize = LINES_PER_PAGE / 2;

/// A 64-bit spatial access bit-pattern over one 4 KB page.
///
/// Bit `i` is set when cache line `i` of the page (or, for anchored
/// patterns, the line `i` positions after the trigger, modulo 64) was or is
/// predicted to be accessed.
///
/// # Example
///
/// ```
/// use dspatch::SpatialPattern;
/// let mut p = SpatialPattern::default();
/// p.set(3);
/// p.set(10);
/// assert_eq!(p.popcount(), 2);
/// let anchored = p.anchor(3);
/// assert!(anchored.get(0) && anchored.get(7));
/// assert_eq!(anchored.unanchor(3), p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SpatialPattern(u64);

impl SpatialPattern {
    /// The empty pattern.
    pub const EMPTY: SpatialPattern = SpatialPattern(0);

    /// Creates a pattern from its raw 64-bit representation.
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// Returns the raw 64-bit representation.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Creates a pattern with a single bit set at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 64`.
    pub fn single(offset: usize) -> Self {
        assert!(offset < LINES_PER_PAGE, "offset {offset} out of range");
        Self(1u64 << offset)
    }

    /// Sets the bit for line `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 64`.
    pub fn set(&mut self, offset: usize) {
        assert!(offset < LINES_PER_PAGE, "offset {offset} out of range");
        self.0 |= 1u64 << offset;
    }

    /// Returns whether the bit for line `offset` is set.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 64`.
    pub fn get(self, offset: usize) -> bool {
        assert!(offset < LINES_PER_PAGE, "offset {offset} out of range");
        (self.0 >> offset) & 1 == 1
    }

    /// Returns whether no bit is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set bits (the PopCount operation of the paper, Figure 8).
    pub const fn popcount(self) -> u32 {
        self.0.count_ones()
    }

    /// Anchors the pattern to `trigger_offset`: rotates it so that the
    /// trigger line becomes bit 0. Anchored bit `j` corresponds to the line
    /// `(trigger_offset + j) mod 64` of the original page.
    pub fn anchor(self, trigger_offset: usize) -> Self {
        Self(
            self.0
                .rotate_right((trigger_offset % LINES_PER_PAGE) as u32),
        )
    }

    /// Inverse of [`SpatialPattern::anchor`]: converts an anchored pattern
    /// back to page-relative line offsets.
    pub fn unanchor(self, trigger_offset: usize) -> Self {
        Self(self.0.rotate_left((trigger_offset % LINES_PER_PAGE) as u32))
    }

    /// Iterates over the offsets of set bits in increasing order.
    ///
    /// Runs in one `trailing_zeros` + one clear-lowest-set-bit per set bit
    /// (not one test per possible bit) — this sits on the prediction-issue
    /// hot path, where patterns are typically sparse.
    pub fn iter_offsets(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let offset = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(offset)
            }
        })
    }

    /// Keeps only the first `n` bit positions (used to restrict the second
    /// 2 KB-segment trigger to a 32-line prediction window, Section 3.7).
    pub fn truncate(self, n: usize) -> Self {
        if n >= LINES_PER_PAGE {
            self
        } else if n == 0 {
            Self::EMPTY
        } else {
            Self(self.0 & ((1u64 << n) - 1))
        }
    }

    /// Splits the pattern into its two 32-bit halves `(bits 0..32, bits 32..64)`.
    pub const fn halves(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }

    /// Compresses the pattern to 128 B granularity: output bit `k` is the OR
    /// of input bits `2k` and `2k + 1`.
    ///
    /// Branchless: OR each bit pair down onto its even position, then pack
    /// the even positions together with a log-step bit gather (the inverse
    /// Morton shuffle). This runs on every Page Buffer training event, so
    /// the 32-iteration loop it replaces was measurable.
    pub fn compress(self) -> CompressedPattern {
        let mut gathered = (self.0 | (self.0 >> 1)) & 0x5555_5555_5555_5555;
        gathered = (gathered | (gathered >> 1)) & 0x3333_3333_3333_3333;
        gathered = (gathered | (gathered >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
        gathered = (gathered | (gathered >> 4)) & 0x00FF_00FF_00FF_00FF;
        gathered = (gathered | (gathered >> 8)) & 0x0000_FFFF_0000_FFFF;
        gathered = (gathered | (gathered >> 16)) & 0x0000_0000_FFFF_FFFF;
        CompressedPattern(gathered as u32)
    }
}

impl BitOr for SpatialPattern {
    type Output = SpatialPattern;

    fn bitor(self, rhs: Self) -> Self {
        Self(self.0 | rhs.0)
    }
}

impl BitAnd for SpatialPattern {
    type Output = SpatialPattern;

    fn bitand(self, rhs: Self) -> Self {
        Self(self.0 & rhs.0)
    }
}

impl fmt::Display for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:064b}", self.0)
    }
}

impl fmt::Binary for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// A 32-bit, 128 B-granularity spatial pattern: one bit per pair of adjacent
/// cache lines of a 4 KB page. This is what the Signature Prediction Table
/// stores for both `CovP` and `AccP` (paper, Table 1).
///
/// # Example
///
/// ```
/// use dspatch::{CompressedPattern, SpatialPattern};
/// let mut p = SpatialPattern::default();
/// p.set(0);
/// p.set(5);
/// let c = p.compress();
/// // Decompression expands each 128 B block back to both of its lines.
/// let d = c.decompress();
/// assert!(d.get(0) && d.get(1) && d.get(4) && d.get(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CompressedPattern(u32);

impl CompressedPattern {
    /// The empty compressed pattern.
    pub const EMPTY: CompressedPattern = CompressedPattern(0);

    /// Creates a compressed pattern from its raw 32-bit representation.
    pub const fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// Returns the raw 32-bit representation.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns whether no bit is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set 128 B blocks.
    pub const fn popcount(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns whether block `block` (0..32) is set.
    ///
    /// # Panics
    ///
    /// Panics if `block >= 32`.
    pub fn get(self, block: usize) -> bool {
        assert!(block < COMPRESSED_BITS, "block {block} out of range");
        (self.0 >> block) & 1 == 1
    }

    /// Expands back to line granularity: each set block sets both of its
    /// lines. This is the source of the paper's bounded (< 50 %, typically
    /// ~20 %) compression-induced overprediction (Section 3.8).
    pub fn decompress(self) -> SpatialPattern {
        // Branchless inverse of [`SpatialPattern::compress`]: spread the 32
        // bits onto even positions with a log-step scatter (Morton
        // shuffle), then OR each bit onto its odd neighbour.
        let mut spread = u64::from(self.0);
        spread = (spread | (spread << 16)) & 0x0000_FFFF_0000_FFFF;
        spread = (spread | (spread << 8)) & 0x00FF_00FF_00FF_00FF;
        spread = (spread | (spread << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        spread = (spread | (spread << 2)) & 0x3333_3333_3333_3333;
        spread = (spread | (spread << 1)) & 0x5555_5555_5555_5555;
        SpatialPattern::from_bits(spread | (spread << 1))
    }

    /// Splits into the two 16-bit halves covering the two 2 KB segments of
    /// the (anchored) page: `(blocks 0..16, blocks 16..32)`.
    pub const fn halves(self) -> (u16, u16) {
        (self.0 as u16, (self.0 >> 16) as u16)
    }

    /// Rebuilds a compressed pattern from its two 16-bit halves.
    pub const fn from_halves(low: u16, high: u16) -> Self {
        Self((low as u32) | ((high as u32) << 16))
    }

    /// Keeps only the first `n` blocks.
    pub fn truncate(self, n: usize) -> Self {
        if n >= COMPRESSED_BITS {
            self
        } else if n == 0 {
            Self::EMPTY
        } else {
            Self(self.0 & ((1u32 << n) - 1))
        }
    }

    /// Number of line-granularity mispredictions that compressing
    /// `program` would cause: lines predicted by the compressed form of
    /// `program` that the program never touched.
    pub fn compression_mispredictions(program: SpatialPattern) -> u32 {
        let expanded = program.compress().decompress();
        (expanded.bits() & !program.bits()).count_ones()
    }
}

impl BitOr for CompressedPattern {
    type Output = CompressedPattern;

    fn bitor(self, rhs: Self) -> Self {
        Self(self.0 | rhs.0)
    }
}

impl BitAnd for CompressedPattern {
    type Output = CompressedPattern;

    fn bitand(self, rhs: Self) -> Self {
        Self(self.0 & rhs.0)
    }
}

impl fmt::Display for CompressedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032b}", self.0)
    }
}

impl fmt::Binary for CompressedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    /// Reference (per-bit loop) forms of compress/decompress, kept to pin
    /// the branchless bit-shuffle implementations.
    fn compress_reference(pattern: super::SpatialPattern) -> super::CompressedPattern {
        let mut out = 0u32;
        for k in 0..super::COMPRESSED_BITS {
            if (pattern.bits() >> (2 * k)) & 0b11 != 0 {
                out |= 1 << k;
            }
        }
        super::CompressedPattern::from_bits(out)
    }

    fn decompress_reference(pattern: super::CompressedPattern) -> super::SpatialPattern {
        let mut out = 0u64;
        for k in 0..super::COMPRESSED_BITS {
            if (pattern.bits() >> k) & 1 == 1 {
                out |= 0b11 << (2 * k);
            }
        }
        super::SpatialPattern::from_bits(out)
    }

    #[test]
    fn branchless_compress_and_decompress_match_the_bit_loops() {
        let mut state = 0xACE1_u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let spatial = super::SpatialPattern::from_bits(state);
            assert_eq!(spatial.compress(), compress_reference(spatial));
            let compressed = super::CompressedPattern::from_bits((state >> 16) as u32);
            assert_eq!(compressed.decompress(), decompress_reference(compressed));
        }
        // Edges.
        for bits in [0u64, u64::MAX, 1, 1 << 63, 0x5555_5555_5555_5555] {
            let spatial = super::SpatialPattern::from_bits(bits);
            assert_eq!(spatial.compress(), compress_reference(spatial));
        }
        for bits in [0u32, u32::MAX, 1, 1 << 31] {
            let compressed = super::CompressedPattern::from_bits(bits);
            assert_eq!(compressed.decompress(), decompress_reference(compressed));
        }
    }

    use super::*;

    #[test]
    fn set_get_and_popcount_agree() {
        let mut p = SpatialPattern::default();
        for off in [0, 1, 17, 63] {
            p.set(off);
        }
        assert_eq!(p.popcount(), 4);
        assert!(p.get(0) && p.get(63));
        assert!(!p.get(2));
        assert_eq!(p.iter_offsets().collect::<Vec<_>>(), vec![0, 1, 17, 63]);
    }

    #[test]
    fn iter_offsets_matches_naive_scan() {
        for bits in [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0001,
            0xdead_beef_1234_5678,
            0x5555_5555_5555_5555,
        ] {
            let fast: Vec<usize> = SpatialPattern::from_bits(bits).iter_offsets().collect();
            let naive: Vec<usize> = (0..LINES_PER_PAGE)
                .filter(|i| (bits >> i) & 1 == 1)
                .collect();
            assert_eq!(fast, naive, "bits {bits:#x}");
        }
    }

    #[test]
    fn anchor_moves_trigger_to_bit_zero() {
        // Access stream from the paper's Figure 2 spirit: trigger at offset 5,
        // other accesses at 9 and 12.
        let mut p = SpatialPattern::default();
        p.set(5);
        p.set(9);
        p.set(12);
        let anchored = p.anchor(5);
        assert!(anchored.get(0), "trigger must move to bit 0");
        assert!(anchored.get(4), "delta +4 from trigger");
        assert!(anchored.get(7), "delta +7 from trigger");
        assert_eq!(anchored.popcount(), 3);
    }

    #[test]
    fn anchor_unanchor_round_trip() {
        let p = SpatialPattern::from_bits(0xdead_beef_1234_5678);
        for trigger in 0..LINES_PER_PAGE {
            assert_eq!(p.anchor(trigger).unanchor(trigger), p);
        }
    }

    #[test]
    fn reordered_streams_share_one_anchored_pattern() {
        // Streams B..E of Figure 2: same offsets, different temporal order.
        // Since the pattern is a set of offsets, all orders yield one pattern.
        let offsets = [1usize, 5, 4, 11, 12];
        let mut forward = SpatialPattern::default();
        let mut shuffled = SpatialPattern::default();
        for &o in &offsets {
            forward.set(o);
        }
        for &o in offsets.iter().rev() {
            shuffled.set(o);
        }
        assert_eq!(forward.anchor(1), shuffled.anchor(1));
    }

    #[test]
    fn or_adds_bits_and_never_removes() {
        let a = SpatialPattern::from_bits(0b1010);
        let b = SpatialPattern::from_bits(0b0110);
        let or = a | b;
        assert_eq!(or.bits(), 0b1110);
        assert!(or.popcount() >= a.popcount().max(b.popcount()));
    }

    #[test]
    fn and_removes_bits_and_never_adds() {
        let a = SpatialPattern::from_bits(0b1010);
        let b = SpatialPattern::from_bits(0b0110);
        let and = a & b;
        assert_eq!(and.bits(), 0b0010);
        assert!(and.popcount() <= a.popcount().min(b.popcount()));
    }

    #[test]
    fn truncate_keeps_low_bits_only() {
        let p = SpatialPattern::from_bits(u64::MAX);
        assert_eq!(p.truncate(32).popcount(), 32);
        assert_eq!(p.truncate(0), SpatialPattern::EMPTY);
        assert_eq!(p.truncate(64), p);
        assert_eq!(p.truncate(100), p);
    }

    #[test]
    fn compress_decompress_is_superset() {
        let p = SpatialPattern::from_bits(0x8421_1248_8001_0203);
        let round = p.compress().decompress();
        assert_eq!(
            round.bits() & p.bits(),
            p.bits(),
            "decompression must cover the original"
        );
    }

    #[test]
    fn compress_halves_storage_exactly_for_pairwise_patterns() {
        // A pattern touching both lines of each 128 B block compresses losslessly.
        let p = SpatialPattern::from_bits(0xFFFF_0000_00FF_0000);
        assert_eq!(p.compress().decompress(), p);
        assert_eq!(CompressedPattern::compression_mispredictions(p), 0);
    }

    #[test]
    fn compression_mispredictions_bounded_by_popcount() {
        let p = SpatialPattern::from_bits(0x5555_5555_5555_5555); // worst case: one line per pair
        let mis = CompressedPattern::compression_mispredictions(p);
        assert_eq!(
            mis, 32,
            "worst case mispredicts exactly one line per touched pair"
        );
        assert!(mis <= p.popcount());
    }

    #[test]
    fn compressed_halves_round_trip() {
        let c = CompressedPattern::from_bits(0xdead_beef);
        let (lo, hi) = c.halves();
        assert_eq!(CompressedPattern::from_halves(lo, hi), c);
    }

    #[test]
    fn compressed_truncate_and_get() {
        let c = CompressedPattern::from_bits(0xffff_ffff);
        assert_eq!(c.truncate(16).popcount(), 16);
        assert!(c.get(31));
        assert_eq!(c.truncate(0), CompressedPattern::EMPTY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_panics_out_of_range() {
        let mut p = SpatialPattern::default();
        p.set(64);
    }

    #[test]
    fn display_is_full_width() {
        assert_eq!(format!("{}", SpatialPattern::EMPTY).len(), 64);
        assert_eq!(format!("{}", CompressedPattern::EMPTY).len(), 32);
    }
}
