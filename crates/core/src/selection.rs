//! Run-time selection between the coverage-biased and accuracy-biased
//! bit-patterns (paper, Section 3.6, Figure 10).

use crate::config::SelectionPolicy;
use crate::counters::SaturatingCounter;
use dspatch_types::BandwidthQuartile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The pattern (if any) chosen to generate prefetches for one trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternChoice {
    /// Prefetch with the coverage-biased pattern `CovP`.
    Coverage {
        /// When set, prefetched blocks are filled at low replacement priority
        /// because `MeasureCovP` indicates `CovP` is currently inaccurate.
        low_priority: bool,
    },
    /// Prefetch with the accuracy-biased pattern `AccP`.
    Accuracy,
    /// Issue no prefetches for this trigger.
    NoPrefetch,
}

impl PatternChoice {
    /// Returns whether any prefetching happens.
    pub const fn prefetches(self) -> bool {
        !matches!(self, PatternChoice::NoPrefetch)
    }
}

impl fmt::Display for PatternChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternChoice::Coverage {
                low_priority: false,
            } => write!(f, "CovP"),
            PatternChoice::Coverage { low_priority: true } => write!(f, "CovP(low-priority)"),
            PatternChoice::Accuracy => write!(f, "AccP"),
            PatternChoice::NoPrefetch => write!(f, "none"),
        }
    }
}

/// Implements the decision diagram of Figure 10 (plus the two ablation
/// policies of Figure 19).
///
/// * Bandwidth in the top quartile: use `AccP` unless `MeasureAccP` is
///   saturated (then no prefetches).
/// * Bandwidth in the second quartile: use `AccP` if `MeasureCovP` is
///   saturated (i.e. `CovP` is known-bad), `CovP` otherwise.
/// * Bandwidth below 50 %: use `CovP`; if `MeasureCovP` is saturated the
///   prefetches are filled at low priority to bound pollution.
///
/// # Example
///
/// ```
/// use dspatch::{select_pattern, PatternChoice, SaturatingCounter, SelectionPolicy};
/// use dspatch_types::BandwidthQuartile;
///
/// let fresh = SaturatingCounter::two_bit();
/// let choice = select_pattern(
///     BandwidthQuartile::Q0,
///     fresh,
///     fresh,
///     SelectionPolicy::Full,
/// );
/// assert_eq!(choice, PatternChoice::Coverage { low_priority: false });
/// ```
pub fn select_pattern(
    bandwidth: BandwidthQuartile,
    measure_covp: SaturatingCounter,
    measure_accp: SaturatingCounter,
    policy: SelectionPolicy,
) -> PatternChoice {
    match policy {
        SelectionPolicy::Full => {
            if bandwidth.is_high() {
                if measure_accp.is_saturated() {
                    PatternChoice::NoPrefetch
                } else {
                    PatternChoice::Accuracy
                }
            } else if bandwidth.is_above_half() {
                if measure_covp.is_saturated() {
                    PatternChoice::Accuracy
                } else {
                    PatternChoice::Coverage {
                        low_priority: false,
                    }
                }
            } else {
                PatternChoice::Coverage {
                    low_priority: measure_covp.is_saturated(),
                }
            }
        }
        SelectionPolicy::AlwaysCovP => PatternChoice::Coverage {
            low_priority: measure_covp.is_saturated() && !bandwidth.is_above_half(),
        },
        SelectionPolicy::ModCovP => {
            if bandwidth.is_high() {
                PatternChoice::NoPrefetch
            } else if bandwidth.is_above_half() {
                if measure_covp.is_saturated() {
                    PatternChoice::NoPrefetch
                } else {
                    PatternChoice::Coverage {
                        low_priority: false,
                    }
                }
            } else {
                PatternChoice::Coverage {
                    low_priority: measure_covp.is_saturated(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturated() -> SaturatingCounter {
        let mut c = SaturatingCounter::two_bit();
        for _ in 0..3 {
            c.increment();
        }
        c
    }

    fn fresh() -> SaturatingCounter {
        SaturatingCounter::two_bit()
    }

    #[test]
    fn high_bandwidth_uses_accp_when_it_is_good() {
        let c = select_pattern(
            BandwidthQuartile::Q3,
            fresh(),
            fresh(),
            SelectionPolicy::Full,
        );
        assert_eq!(c, PatternChoice::Accuracy);
    }

    #[test]
    fn high_bandwidth_throttles_when_accp_is_bad() {
        let c = select_pattern(
            BandwidthQuartile::Q3,
            fresh(),
            saturated(),
            SelectionPolicy::Full,
        );
        assert_eq!(c, PatternChoice::NoPrefetch);
        assert!(!c.prefetches());
    }

    #[test]
    fn mid_bandwidth_prefers_covp_unless_it_is_bad() {
        let good = select_pattern(
            BandwidthQuartile::Q2,
            fresh(),
            fresh(),
            SelectionPolicy::Full,
        );
        assert_eq!(
            good,
            PatternChoice::Coverage {
                low_priority: false
            }
        );
        let bad = select_pattern(
            BandwidthQuartile::Q2,
            saturated(),
            fresh(),
            SelectionPolicy::Full,
        );
        assert_eq!(bad, PatternChoice::Accuracy);
    }

    #[test]
    fn low_bandwidth_always_uses_covp_with_priority_demotion() {
        for bw in [BandwidthQuartile::Q0, BandwidthQuartile::Q1] {
            let good = select_pattern(bw, fresh(), fresh(), SelectionPolicy::Full);
            assert_eq!(
                good,
                PatternChoice::Coverage {
                    low_priority: false
                }
            );
            let bad = select_pattern(bw, saturated(), fresh(), SelectionPolicy::Full);
            assert_eq!(bad, PatternChoice::Coverage { low_priority: true });
        }
    }

    #[test]
    fn always_covp_never_uses_accp_or_throttles() {
        for bw in BandwidthQuartile::ALL {
            for cov in [fresh(), saturated()] {
                let c = select_pattern(bw, cov, saturated(), SelectionPolicy::AlwaysCovP);
                assert!(
                    matches!(c, PatternChoice::Coverage { .. }),
                    "got {c} at {bw}"
                );
            }
        }
    }

    #[test]
    fn mod_covp_throttles_at_high_bandwidth_but_never_uses_accp() {
        assert_eq!(
            select_pattern(
                BandwidthQuartile::Q3,
                fresh(),
                fresh(),
                SelectionPolicy::ModCovP
            ),
            PatternChoice::NoPrefetch
        );
        assert_eq!(
            select_pattern(
                BandwidthQuartile::Q2,
                saturated(),
                fresh(),
                SelectionPolicy::ModCovP
            ),
            PatternChoice::NoPrefetch
        );
        assert_eq!(
            select_pattern(
                BandwidthQuartile::Q0,
                fresh(),
                fresh(),
                SelectionPolicy::ModCovP
            ),
            PatternChoice::Coverage {
                low_priority: false
            }
        );
    }

    #[test]
    fn display_names_are_distinct() {
        let names: Vec<String> = [
            PatternChoice::Coverage {
                low_priority: false,
            },
            PatternChoice::Coverage { low_priority: true },
            PatternChoice::Accuracy,
            PatternChoice::NoPrefetch,
        ]
        .iter()
        .map(|c| c.to_string())
        .collect();
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
