//! The Page Buffer (PB).
//!
//! The Page Buffer tracks the most-recently-accessed 4 KB physical pages at
//! the L2 (paper: 64 entries). Each entry accumulates the L1 misses to its
//! page in a 64-bit spatial bit-pattern and records up to two prefetch
//! triggers — the first access to each 2 KB segment of the page, with the
//! triggering PC and page offset (paper, Sections 3.1, 3.3 and 3.7).
//!
//! When an entry is evicted (capacity replacement), its accumulated program
//! bit-pattern and its triggers are handed back to the prefetcher, which uses
//! them to update the Signature Prediction Table.

use crate::pattern::SpatialPattern;
use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{PageAddr, Pc, LINES_PER_PAGE, LINES_PER_SEGMENT};
use serde::{Deserialize, Serialize};

/// Number of 2 KB segments in a 4 KB page (and of triggers per PB entry).
pub const SEGMENTS_PER_PAGE: usize = LINES_PER_PAGE / LINES_PER_SEGMENT;

/// One recorded prefetch trigger: the first access to a 2 KB segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TriggerInfo {
    /// PC of the trigger access.
    pub pc: Pc,
    /// Cache-line offset of the trigger within the 4 KB page (0..64).
    pub offset: usize,
    /// Which 2 KB segment the trigger belongs to (0 or 1).
    pub segment: usize,
}

/// One Page Buffer entry: a tracked 4 KB page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageBufferEntry {
    /// The tracked physical page.
    pub page: PageAddr,
    /// Accumulated program access bit-pattern (one bit per 64 B line).
    pub pattern: SpatialPattern,
    /// Triggers recorded so far, one slot per 2 KB segment.
    pub triggers: [Option<TriggerInfo>; SEGMENTS_PER_PAGE],
    /// LRU timestamp (monotonically increasing access counter).
    last_use: u64,
}

impl PageBufferEntry {
    fn new(page: PageAddr, stamp: u64) -> Self {
        Self {
            page,
            pattern: SpatialPattern::EMPTY,
            triggers: [None; SEGMENTS_PER_PAGE],
            last_use: stamp,
        }
    }

    /// Returns the recorded triggers in segment order, skipping empty slots.
    pub fn recorded_triggers(&self) -> impl Iterator<Item = &TriggerInfo> {
        self.triggers.iter().flatten()
    }

    /// Number of distinct lines accessed in the page so far.
    pub fn access_count(&self) -> u32 {
        self.pattern.popcount()
    }
}

/// Outcome of recording one access in the Page Buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordOutcome {
    /// Set when this access is the first to its 2 KB segment and may
    /// therefore trigger prefetches.
    pub trigger: Option<TriggerInfo>,
    /// Set when recording the access required evicting another page's entry;
    /// the evicted entry carries the training data for the SPT.
    pub evicted: Option<PageBufferEntry>,
    /// Whether the accessed line's bit was newly set (false for repeated
    /// accesses to the same line).
    pub new_line: bool,
}

/// The Page Buffer: a small fully-associative, LRU-replaced structure
/// tracking recently accessed pages.
///
/// # Example
///
/// ```
/// use dspatch::PageBuffer;
/// use dspatch_types::{PageAddr, Pc};
///
/// let mut pb = PageBuffer::new(2);
/// let first = pb.record_access(PageAddr::new(1), 0, Pc::new(0xa));
/// assert!(first.trigger.is_some());
/// assert!(first.evicted.is_none());
/// // Touching two more pages evicts page 1 (capacity 2, LRU).
/// pb.record_access(PageAddr::new(2), 0, Pc::new(0xb));
/// let third = pb.record_access(PageAddr::new(3), 0, Pc::new(0xc));
/// assert_eq!(third.evicted.unwrap().page, PageAddr::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageBuffer {
    entries: Vec<PageBufferEntry>,
    /// Shadow array of `entries[i].page` raw values. The per-access lookup
    /// scans this dense `u64` slab (the whole buffer is 8 cache lines at the
    /// paper's 64 entries) instead of striding through the ~100-byte
    /// entries, and is kept in lock-step with `entries` on every mutation.
    pages: Vec<u64>,
    /// Index of the most-recently-accessed entry. Spatial locality makes
    /// consecutive L1 misses overwhelmingly land in the same page, so this
    /// hint usually replaces the scan with a single compare.
    mru: usize,
    /// Shadow array of `entries[i].last_use`, so the LRU eviction scan
    /// walks a dense `u64` slab instead of striding through the entries.
    last_uses: Vec<u64>,
    capacity: usize,
    clock: u64,
}

impl PageBuffer {
    /// Creates a Page Buffer holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "page buffer capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            pages: Vec::with_capacity(capacity),
            mru: 0,
            last_uses: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
        }
    }

    /// Number of pages currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of tracked pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the entry for `page`, if it is currently tracked.
    pub fn entry(&self, page: PageAddr) -> Option<&PageBufferEntry> {
        self.entries.iter().find(|e| e.page == page)
    }

    /// Iterates over all tracked entries (no particular order).
    pub fn iter(&self) -> impl Iterator<Item = &PageBufferEntry> {
        self.entries.iter()
    }

    /// Records one L1-miss access to line `line_offset` (0..64) of `page`,
    /// performed by instruction `pc`.
    ///
    /// Returns whether the access is a segment trigger, whether an older
    /// entry had to be evicted to make room, and whether the line bit was
    /// newly set.
    ///
    /// # Panics
    ///
    /// Panics if `line_offset >= 64`.
    pub fn record_access(&mut self, page: PageAddr, line_offset: usize, pc: Pc) -> RecordOutcome {
        assert!(
            line_offset < LINES_PER_PAGE,
            "line offset {line_offset} out of range for a 4 KB page"
        );
        self.clock += 1;
        let stamp = self.clock;
        let segment = line_offset / LINES_PER_SEGMENT;
        let mut outcome = RecordOutcome::default();

        let raw = page.as_u64();
        let position = if self.pages.get(self.mru) == Some(&raw) {
            Some(self.mru)
        } else {
            self.pages.iter().position(|&p| p == raw)
        };
        let index = match position {
            Some(i) => i,
            None => {
                if self.entries.len() == self.capacity {
                    let lru = self
                        .last_uses
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &stamp)| stamp)
                        .map(|(i, _)| i)
                        .expect("page buffer is non-empty at capacity");
                    outcome.evicted = Some(self.entries.swap_remove(lru));
                    self.pages.swap_remove(lru);
                    self.last_uses.swap_remove(lru);
                }
                self.entries.push(PageBufferEntry::new(page, stamp));
                self.pages.push(raw);
                self.last_uses.push(stamp);
                self.entries.len() - 1
            }
        };
        self.mru = index;

        self.last_uses[index] = stamp;
        let entry = &mut self.entries[index];
        entry.last_use = stamp;
        outcome.new_line = !entry.pattern.get(line_offset);
        entry.pattern.set(line_offset);
        if entry.triggers[segment].is_none() {
            let trigger = TriggerInfo {
                pc,
                offset: line_offset,
                segment,
            };
            entry.triggers[segment] = Some(trigger);
            outcome.trigger = Some(trigger);
        }
        outcome
    }

    /// Removes and returns every tracked entry, e.g. at the end of a
    /// simulation so that partially-observed pages still train the SPT.
    pub fn drain(&mut self) -> Vec<PageBufferEntry> {
        self.pages.clear();
        self.last_uses.clear();
        self.mru = 0;
        std::mem::take(&mut self.entries)
    }
}

impl SnapshotState for PageBuffer {
    fn snapshot_tag(&self) -> &'static str {
        "page-buffer"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.entries.len());
        for entry in &self.entries {
            writer.put_u64(entry.page.as_u64());
            writer.put_u64(entry.pattern.bits());
            for trigger in &entry.triggers {
                match trigger {
                    Some(t) => {
                        writer.put_bool(true);
                        writer.put_u64(t.pc.as_u64());
                        writer.put_usize(t.offset);
                        writer.put_usize(t.segment);
                    }
                    None => writer.put_bool(false),
                }
            }
            writer.put_u64(entry.last_use);
        }
        writer.put_usize(self.mru);
        writer.put_u64(self.clock);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let len = reader.get_len()?;
        if len > self.capacity {
            return Err(SnapshotError::Invalid(format!(
                "page buffer holds {} entries but only {} are configured",
                len, self.capacity
            )));
        }
        self.entries.clear();
        self.pages.clear();
        self.last_uses.clear();
        for _ in 0..len {
            let page = PageAddr::new(reader.get_u64()?);
            let pattern = SpatialPattern::from_bits(reader.get_u64()?);
            let mut triggers = [None; SEGMENTS_PER_PAGE];
            for slot in &mut triggers {
                if reader.get_bool()? {
                    *slot = Some(TriggerInfo {
                        pc: Pc::new(reader.get_u64()?),
                        offset: reader.get_usize()?,
                        segment: reader.get_usize()?,
                    });
                }
            }
            let last_use = reader.get_u64()?;
            // Rebuild the shadow arrays in lock-step, exactly as the access
            // path maintains them.
            self.pages.push(page.as_u64());
            self.last_uses.push(last_use);
            self.entries.push(PageBufferEntry {
                page,
                pattern,
                triggers,
                last_use,
            });
        }
        self.mru = reader.get_usize()?;
        if self.mru >= self.entries.len() && !self.entries.is_empty() {
            return Err(SnapshotError::Invalid(format!(
                "MRU index {} is out of bounds for {} entries",
                self.mru,
                self.entries.len()
            )));
        }
        self.mru = self.mru.min(self.entries.len().saturating_sub(1));
        self.clock = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(x: u64) -> Pc {
        Pc::new(x)
    }

    #[test]
    fn first_access_to_each_segment_is_a_trigger() {
        let mut pb = PageBuffer::new(4);
        let page = PageAddr::new(10);
        let a = pb.record_access(page, 3, pc(1));
        assert_eq!(
            a.trigger,
            Some(TriggerInfo {
                pc: pc(1),
                offset: 3,
                segment: 0
            })
        );
        // Second access to the same segment is not a trigger.
        let b = pb.record_access(page, 9, pc(2));
        assert!(b.trigger.is_none());
        // First access to the second 2 KB segment is a trigger.
        let c = pb.record_access(page, 40, pc(3));
        assert_eq!(
            c.trigger,
            Some(TriggerInfo {
                pc: pc(3),
                offset: 40,
                segment: 1
            })
        );
    }

    #[test]
    fn pattern_accumulates_all_accessed_lines() {
        let mut pb = PageBuffer::new(4);
        let page = PageAddr::new(5);
        for off in [0usize, 5, 5, 63, 31] {
            pb.record_access(page, off, pc(9));
        }
        let entry = pb.entry(page).expect("page must be tracked");
        assert_eq!(entry.access_count(), 4);
        assert!(entry.pattern.get(0) && entry.pattern.get(5) && entry.pattern.get(63));
    }

    #[test]
    fn new_line_flag_distinguishes_repeat_accesses() {
        let mut pb = PageBuffer::new(4);
        let page = PageAddr::new(5);
        assert!(pb.record_access(page, 7, pc(1)).new_line);
        assert!(!pb.record_access(page, 7, pc(1)).new_line);
    }

    #[test]
    fn lru_entry_is_evicted_at_capacity() {
        let mut pb = PageBuffer::new(2);
        pb.record_access(PageAddr::new(1), 0, pc(1));
        pb.record_access(PageAddr::new(2), 0, pc(1));
        // Re-touch page 1 so page 2 becomes the LRU.
        pb.record_access(PageAddr::new(1), 1, pc(1));
        let out = pb.record_access(PageAddr::new(3), 0, pc(1));
        let evicted = out.evicted.expect("capacity eviction expected");
        assert_eq!(evicted.page, PageAddr::new(2));
        assert_eq!(pb.len(), 2);
    }

    #[test]
    fn evicted_entry_carries_pattern_and_triggers() {
        let mut pb = PageBuffer::new(1);
        pb.record_access(PageAddr::new(1), 2, pc(0xaa));
        pb.record_access(PageAddr::new(1), 34, pc(0xbb));
        let out = pb.record_access(PageAddr::new(2), 0, pc(0xcc));
        let evicted = out.evicted.expect("eviction expected");
        assert_eq!(evicted.page, PageAddr::new(1));
        assert_eq!(evicted.recorded_triggers().count(), 2);
        assert!(evicted.pattern.get(2) && evicted.pattern.get(34));
    }

    #[test]
    fn drain_returns_everything_and_empties_buffer() {
        let mut pb = PageBuffer::new(8);
        for p in 0..5u64 {
            pb.record_access(PageAddr::new(p), 0, pc(p));
        }
        let drained = pb.drain();
        assert_eq!(drained.len(), 5);
        assert!(pb.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = PageBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_offset_is_rejected() {
        let mut pb = PageBuffer::new(1);
        pb.record_access(PageAddr::new(1), 64, pc(1));
    }
}
