//! The DSPatch prefetcher: Page Buffer + Signature Prediction Table +
//! bandwidth-driven pattern selection, behind the common
//! [`Prefetcher`](dspatch_types::Prefetcher) trait.

use crate::config::DsPatchConfig;
use crate::page_buffer::{PageBuffer, PageBufferEntry, TriggerInfo};
use crate::selection::PatternChoice;
use crate::spt::SignaturePredictionTable;
use crate::storage::StorageBreakdown;
use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    BandwidthQuartile, FillLevel, MemoryAccess, PrefetchContext, PrefetchRequest, PrefetchSink,
    Prefetcher, LINES_PER_PAGE,
};
use serde::{Deserialize, Serialize};

/// Aggregate statistics the prefetcher keeps about its own decisions.
/// These are observability counters, not architectural state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsPatchStats {
    /// Accesses observed (L1 misses forwarded by the hierarchy).
    pub accesses: u64,
    /// Triggers seen (first access to a 2 KB segment of a tracked page).
    pub triggers: u64,
    /// Triggers that selected the coverage-biased pattern.
    pub covp_predictions: u64,
    /// Triggers that selected the accuracy-biased pattern.
    pub accp_predictions: u64,
    /// Triggers for which the selection logic chose not to prefetch.
    pub throttled_predictions: u64,
    /// Triggers whose SPT entry was still cold.
    pub cold_triggers: u64,
    /// Individual prefetch requests issued.
    pub prefetches_issued: u64,
    /// Page Buffer evictions that trained the SPT.
    pub trainings: u64,
}

/// The Dual Spatial Pattern Prefetcher.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsPatch {
    config: DsPatchConfig,
    page_buffer: PageBuffer,
    spt: SignaturePredictionTable,
    last_bandwidth: BandwidthQuartile,
    stats: DsPatchStats,
    name: String,
}

impl DsPatch {
    /// Creates a DSPatch prefetcher with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DsPatchConfig::validate`].
    pub fn new(config: DsPatchConfig) -> Self {
        config
            .validate()
            .expect("invalid DSPatch configuration passed to DsPatch::new");
        Self {
            page_buffer: PageBuffer::new(config.page_buffer_entries),
            spt: SignaturePredictionTable::new(&config),
            last_bandwidth: BandwidthQuartile::Q0,
            stats: DsPatchStats::default(),
            name: "DSPatch".to_owned(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DsPatchConfig {
        &self.config
    }

    /// Decision statistics accumulated so far.
    pub fn stats(&self) -> &DsPatchStats {
        &self.stats
    }

    /// Read-only access to the Signature Prediction Table (useful for tests
    /// and for the storage/occupancy reports).
    pub fn spt(&self) -> &SignaturePredictionTable {
        &self.spt
    }

    /// Read-only access to the Page Buffer.
    pub fn page_buffer(&self) -> &PageBuffer {
        &self.page_buffer
    }

    /// Hardware storage breakdown (Table 1).
    pub fn storage_breakdown(&self) -> StorageBreakdown {
        StorageBreakdown::for_config(&self.config)
    }

    /// Trains the SPT with every page still resident in the Page Buffer.
    /// The simulator calls this at the end of a run so short traces still
    /// contribute learning; hardware would simply keep the state warm.
    pub fn flush_training(&mut self) {
        let bandwidth = self.last_bandwidth;
        for entry in self.page_buffer.drain() {
            self.train_from_entry(&entry, bandwidth);
        }
    }

    fn train_from_entry(&mut self, entry: &PageBufferEntry, bandwidth: BandwidthQuartile) {
        for trigger in entry.recorded_triggers() {
            let anchored = entry.pattern.anchor(trigger.offset);
            let halves = if trigger.segment == 0 { 2 } else { 1 };
            self.spt.train(
                trigger.pc,
                anchored.compress(),
                halves,
                bandwidth,
                &self.config,
            );
            self.stats.trainings += 1;
        }
    }

    fn predict_for_trigger(
        &mut self,
        page: dspatch_types::PageAddr,
        trigger: &TriggerInfo,
        bandwidth: BandwidthQuartile,
        out: &mut PrefetchSink,
    ) {
        let halves = if trigger.segment == 0 { 2 } else { 1 };
        let entry = self.spt.entry(trigger.pc);
        if entry.is_cold() {
            self.stats.cold_triggers += 1;
            return;
        }
        let Some(prediction) = entry.predict(bandwidth, &self.config, halves) else {
            self.stats.throttled_predictions += 1;
            return;
        };
        match prediction.choice {
            PatternChoice::Coverage { .. } => self.stats.covp_predictions += 1,
            PatternChoice::Accuracy => self.stats.accp_predictions += 1,
            PatternChoice::NoPrefetch => self.stats.throttled_predictions += 1,
        }
        let page_pattern = prediction.anchored.unanchor(trigger.offset);
        let issued_before = out.len();
        for offset in page_pattern.iter_offsets() {
            if offset == trigger.offset {
                continue; // the trigger line is already being fetched by the demand
            }
            debug_assert!(offset < LINES_PER_PAGE);
            let request = PrefetchRequest::new(page.line_at(offset))
                .with_fill_level(FillLevel::L2)
                .with_low_priority(prediction.low_priority);
            out.push(request);
        }
        self.stats.prefetches_issued += (out.len() - issued_before) as u64;
    }
}

impl Prefetcher for DsPatch {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_access(&mut self, access: &MemoryAccess, ctx: &PrefetchContext, out: &mut PrefetchSink) {
        self.stats.accesses += 1;
        self.last_bandwidth = ctx.bandwidth;
        let page = access.page();
        let outcome = self
            .page_buffer
            .record_access(page, access.page_line_offset(), access.pc);
        if let Some(evicted) = &outcome.evicted {
            self.train_from_entry(evicted, ctx.bandwidth);
        }
        if let Some(trigger) = &outcome.trigger {
            self.stats.triggers += 1;
            self.predict_for_trigger(page, trigger, ctx.bandwidth, out);
        }
    }

    fn storage_bits(&self) -> u64 {
        self.storage_breakdown().total_bits()
    }
}

impl SnapshotState for DsPatch {
    fn snapshot_tag(&self) -> &'static str {
        "dspatch"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        self.page_buffer.save_state(writer)?;
        self.spt.save_state(writer)?;
        writer.put_u8(self.last_bandwidth.as_bits());
        writer.put_u64(self.stats.accesses);
        writer.put_u64(self.stats.triggers);
        writer.put_u64(self.stats.covp_predictions);
        writer.put_u64(self.stats.accp_predictions);
        writer.put_u64(self.stats.throttled_predictions);
        writer.put_u64(self.stats.cold_triggers);
        writer.put_u64(self.stats.prefetches_issued);
        writer.put_u64(self.stats.trainings);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.page_buffer.load_state(reader)?;
        self.spt.load_state(reader)?;
        self.last_bandwidth = BandwidthQuartile::from_bits(reader.get_u8()?);
        self.stats.accesses = reader.get_u64()?;
        self.stats.triggers = reader.get_u64()?;
        self.stats.covp_predictions = reader.get_u64()?;
        self.stats.accp_predictions = reader.get_u64()?;
        self.stats.throttled_predictions = reader.get_u64()?;
        self.stats.cold_triggers = reader.get_u64()?;
        self.stats.prefetches_issued = reader.get_u64()?;
        self.stats.trainings = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_types::{AccessKind, Addr, Pc};

    fn access(pc: u64, page: u64, offset: u64) -> MemoryAccess {
        MemoryAccess::new(
            Pc::new(pc),
            Addr::new(page * 4096 + offset * 64),
            AccessKind::Load,
        )
    }

    fn train_streaming(pf: &mut DsPatch, pc: u64, pages: std::ops::Range<u64>, offsets: &[u64]) {
        let ctx = PrefetchContext::default();
        for page in pages {
            for &off in offsets {
                let _ = pf.collect_requests(&access(pc, page, off), &ctx);
            }
        }
    }

    #[test]
    fn learns_and_prefetches_repeating_spatial_pattern() {
        let mut pf = DsPatch::new(DsPatchConfig::default());
        // A pattern that needs many pages: the page buffer holds 64 pages,
        // so pages must be evicted to train the SPT. Touch 128 pages.
        train_streaming(&mut pf, 0x400100, 0..128, &[0, 2, 4, 6, 8]);
        let ctx = PrefetchContext::default();
        let requests = pf.collect_requests(&access(0x400100, 500, 0), &ctx);
        assert!(!requests.is_empty(), "trained trigger should prefetch");
        // All requests stay within the triggering page.
        for r in &requests {
            assert_eq!(r.line.page(), Addr::new(500 * 4096).line().page());
        }
        assert!(pf.stats().trainings > 0);
        assert!(pf.stats().covp_predictions > 0);
    }

    #[test]
    fn unknown_pc_issues_no_prefetches() {
        let mut pf = DsPatch::new(DsPatchConfig::default());
        train_streaming(&mut pf, 0x400100, 0..128, &[0, 1, 2, 3]);
        let ctx = PrefetchContext::default();
        // A PC that hashes to a different entry should not predict from a
        // cold entry. (Pick one that maps elsewhere.)
        let other_pc = (0..10_000u64)
            .map(|x| 0x500000 + x)
            .find(|&candidate| {
                pf.spt().index_of(Pc::new(candidate)) != pf.spt().index_of(Pc::new(0x400100))
            })
            .expect("some PC maps to a different SPT entry");
        let requests = pf.collect_requests(&access(other_pc, 999, 0), &ctx);
        assert!(requests.is_empty());
        assert!(pf.stats().cold_triggers > 0);
    }

    #[test]
    fn high_bandwidth_switches_to_accuracy_or_throttles() {
        let mut pf = DsPatch::new(DsPatchConfig::default());
        train_streaming(&mut pf, 0x400200, 0..128, &[0, 2, 4, 6, 8, 10]);
        let low_ctx = PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q0);
        let high_ctx = PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q3);
        let low = pf
            .collect_requests(&access(0x400200, 700, 0), &low_ctx)
            .len();
        let high = pf
            .collect_requests(&access(0x400200, 701, 0), &high_ctx)
            .len();
        assert!(
            high <= low,
            "accuracy-biased prefetching must not be more aggressive than coverage-biased \
             (low bw: {low}, high bw: {high})"
        );
    }

    #[test]
    fn trigger_line_itself_is_never_prefetched() {
        let mut pf = DsPatch::new(DsPatchConfig::default());
        train_streaming(&mut pf, 0x1111, 0..128, &[3, 5, 7, 9]);
        let ctx = PrefetchContext::default();
        let requests = pf.collect_requests(&access(0x1111, 800, 3), &ctx);
        let trigger_line = Addr::new(800 * 4096 + 3 * 64).line();
        assert!(requests.iter().all(|r| r.line != trigger_line));
    }

    #[test]
    fn flush_training_trains_resident_pages() {
        let mut pf = DsPatch::new(DsPatchConfig::default());
        let ctx = PrefetchContext::default();
        for off in [0u64, 1, 2, 3] {
            let _ = pf.collect_requests(&access(0x42, 7, off), &ctx);
        }
        assert_eq!(pf.stats().trainings, 0);
        pf.flush_training();
        assert!(pf.stats().trainings > 0);
        assert!(pf.page_buffer().is_empty());
    }

    #[test]
    fn storage_matches_table1_budget() {
        let pf = DsPatch::new(DsPatchConfig::default());
        let bits = pf.storage_bits();
        let kb = bits as f64 / 8.0 / 1024.0;
        assert!((3.5..3.7).contains(&kb), "expected ~3.6 KB, got {kb:.2} KB");
    }

    #[test]
    fn stats_track_access_and_trigger_counts() {
        let mut pf = DsPatch::new(DsPatchConfig::default());
        let ctx = PrefetchContext::default();
        for off in 0..8u64 {
            let _ = pf.collect_requests(&access(0x10, 3, off), &ctx);
        }
        assert_eq!(pf.stats().accesses, 8);
        // Offsets 0..8 all fall in the first 2 KB segment: exactly one trigger.
        assert_eq!(pf.stats().triggers, 1);
        let _ = pf.collect_requests(&access(0x10, 3, 40), &ctx);
        assert_eq!(pf.stats().triggers, 2);
    }
}
