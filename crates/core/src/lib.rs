//! DSPatch: Dual Spatial Pattern Prefetcher (MICRO 2019).
//!
//! This crate implements the paper's primary contribution: a lightweight L2
//! spatial prefetcher that
//!
//! 1. records program accesses to a 4 KB physical page as a 64-bit spatial
//!    bit-pattern in a small [`PageBuffer`](page_buffer::PageBuffer),
//! 2. learns **two modulated bit-patterns** per trigger-PC signature in a
//!    256-entry [`SignaturePredictionTable`](spt::SignaturePredictionTable) —
//!    a coverage-biased pattern `CovP` (bitwise OR of observed patterns) and
//!    an accuracy-biased pattern `AccP` (`program AND CovP`), and
//! 3. selects between them at run time using the 2-bit DRAM
//!    bandwidth-utilization quartile broadcast by the memory controller
//!    ([`selection`]).
//!
//! The top-level type is [`DsPatch`], which implements the
//! [`Prefetcher`](dspatch_types::Prefetcher) trait and can be dropped into
//! the `dspatch-sim` hierarchy standalone or combined with SPP through
//! `dspatch-prefetchers`' composite prefetcher.
//!
//! # Quick start
//!
//! ```
//! use dspatch::{DsPatch, DsPatchConfig};
//! use dspatch_types::{
//!     AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, PrefetchSink, Prefetcher,
//! };
//!
//! let mut pf = DsPatch::new(DsPatchConfig::default());
//! let ctx = PrefetchContext::default();
//! let mut sink = PrefetchSink::new();
//! // Train on a streaming pattern across many pages (enough to evict
//! // page-buffer entries and populate the signature table)...
//! for page in 0..80u64 {
//!     for off in [0u64, 2, 4, 6, 8, 10] {
//!         let addr = Addr::new(page * 4096 + off * 64);
//!         let access = MemoryAccess::new(Pc::new(0x400100), addr, AccessKind::Load);
//!         pf.on_access(&access, &ctx, &mut sink);
//!         sink.clear();
//!     }
//! }
//! // ...after a few pages the trigger PC predicts the learnt pattern.
//! let trigger = MemoryAccess::new(Pc::new(0x400100), Addr::new(100 * 4096), AccessKind::Load);
//! pf.on_access(&trigger, &ctx, &mut sink);
//! assert!(!sink.is_empty());
//! ```

pub mod config;
pub mod counters;
pub mod measure;
pub mod page_buffer;
pub mod pattern;
pub mod prefetcher;
pub mod selection;
pub mod spt;
pub mod storage;

pub use config::{DsPatchConfig, SelectionPolicy};
pub use counters::SaturatingCounter;
pub use measure::{quantize_fraction, PredictionQuality};
pub use page_buffer::{PageBuffer, PageBufferEntry, TriggerInfo};
pub use pattern::{CompressedPattern, SpatialPattern};
pub use prefetcher::DsPatch;
pub use selection::{select_pattern, PatternChoice};
pub use spt::{SignaturePredictionTable, SptEntry};
pub use storage::StorageBreakdown;
