//! Small saturating counters.
//!
//! DSPatch quantifies the goodness of its two bit-patterns with 2-bit
//! saturating counters (`MeasureCovP`, `MeasureAccP`) and bounds the number
//! of OR modulations with another 2-bit counter (`OrCount`). A generic
//! [`SaturatingCounter`] covers all three.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An unsigned saturating counter with a configurable maximum value.
///
/// # Example
///
/// ```
/// use dspatch::SaturatingCounter;
/// let mut c = SaturatingCounter::new(3);
/// c.increment();
/// c.increment();
/// c.increment();
/// c.increment(); // saturates
/// assert!(c.is_saturated());
/// assert_eq!(c.value(), 3);
/// c.decrement();
/// assert_eq!(c.value(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter at zero that saturates at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero (a counter that can only hold zero is a bug).
    pub fn new(max: u8) -> Self {
        assert!(max > 0, "saturating counter maximum must be positive");
        Self { value: 0, max }
    }

    /// Creates the 2-bit counter (maximum 3) used throughout DSPatch.
    pub fn two_bit() -> Self {
        Self::new(3)
    }

    /// Rebuilds a counter from stored parts (snapshot restore); `value` is
    /// clamped to `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero, like [`SaturatingCounter::new`].
    pub fn with_value(max: u8, value: u8) -> Self {
        let mut counter = Self::new(max);
        counter.value = value.min(max);
        counter
    }

    /// Current value.
    pub const fn value(self) -> u8 {
        self.value
    }

    /// Maximum (saturation) value.
    pub const fn max(self) -> u8 {
        self.max
    }

    /// Returns whether the counter is at its maximum.
    pub const fn is_saturated(self) -> bool {
        self.value == self.max
    }

    /// Returns whether the counter is at zero.
    pub const fn is_zero(self) -> bool {
        self.value == 0
    }

    /// Adds one, saturating at the maximum. Returns the new value.
    pub fn increment(&mut self) -> u8 {
        if self.value < self.max {
            self.value += 1;
        }
        self.value
    }

    /// Subtracts one, saturating at zero. Returns the new value.
    pub fn decrement(&mut self) -> u8 {
        if self.value > 0 {
            self.value -= 1;
        }
        self.value
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Number of storage bits the counter occupies in hardware.
    pub fn storage_bits(self) -> u64 {
        u64::from(8 - self.max.leading_zeros() as u8).max(1)
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        Self::two_bit()
    }
}

impl fmt::Display for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_saturate() {
        let mut c = SaturatingCounter::two_bit();
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
    }

    #[test]
    fn decrements_saturate_at_zero() {
        let mut c = SaturatingCounter::two_bit();
        c.decrement();
        assert_eq!(c.value(), 0);
        assert!(c.is_zero());
        c.increment();
        c.decrement();
        c.decrement();
        assert!(c.is_zero());
    }

    #[test]
    fn reset_clears_value() {
        let mut c = SaturatingCounter::new(7);
        c.increment();
        c.increment();
        c.reset();
        assert!(c.is_zero());
        assert_eq!(c.max(), 7);
    }

    #[test]
    fn storage_bits_matches_width() {
        assert_eq!(SaturatingCounter::new(1).storage_bits(), 1);
        assert_eq!(SaturatingCounter::new(3).storage_bits(), 2);
        assert_eq!(SaturatingCounter::new(7).storage_bits(), 3);
        assert_eq!(SaturatingCounter::new(255).storage_bits(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_is_rejected() {
        let _ = SaturatingCounter::new(0);
    }
}
