//! Configuration of the DSPatch prefetcher.

use dspatch_types::BandwidthQuartile;
use serde::{Deserialize, Serialize};

/// Which bit-pattern the run-time selection logic is allowed to use.
///
/// [`SelectionPolicy::Full`] is the paper's DSPatch; the other two variants
/// reproduce the ablation of Section 5.5 / Figure 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SelectionPolicy {
    /// The full algorithm of Figure 10: choose between `CovP`, `AccP` and
    /// no-prefetch based on bandwidth utilization and the measure counters.
    #[default]
    Full,
    /// Always prefetch with the coverage-biased pattern, regardless of
    /// bandwidth utilization ("AlwaysCovP" in Figure 19).
    AlwaysCovP,
    /// Use only the coverage-biased pattern but throttle it down (issue no
    /// prefetches) when bandwidth utilization is high ("ModCovP" in
    /// Figure 19).
    ModCovP,
}

/// Configuration of a [`DsPatch`](crate::DsPatch) instance.
///
/// The defaults reproduce the configuration the paper evaluates and the
/// storage budget of Table 1 (3.6 KB).
///
/// # Example
///
/// ```
/// use dspatch::{DsPatchConfig, SelectionPolicy};
/// let cfg = DsPatchConfig::default();
/// assert_eq!(cfg.page_buffer_entries, 64);
/// assert_eq!(cfg.spt_entries, 256);
/// let ablation = DsPatchConfig {
///     policy: SelectionPolicy::AlwaysCovP,
///     ..DsPatchConfig::default()
/// };
/// assert_ne!(ablation.policy, cfg.policy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsPatchConfig {
    /// Number of Page Buffer entries (paper: 64, tracking the 64
    /// most-recently-accessed 4 KB pages).
    pub page_buffer_entries: usize,
    /// Number of Signature Prediction Table entries (paper: 256, tagless,
    /// direct-mapped).
    pub spt_entries: usize,
    /// Width of the folded-XOR PC hash used both to index the SPT and as the
    /// compressed trigger-PC field stored in the Page Buffer (paper: 8 bits).
    pub signature_bits: u32,
    /// Maximum number of OR modulations applied to `CovP` before further ORs
    /// are suppressed (paper: 3, tracked with a 2-bit `OrCount`).
    pub or_limit: u8,
    /// Accuracy threshold `AccThr` below which `MeasureCovP` is incremented
    /// (paper: the 50 % quartile).
    pub accuracy_threshold: BandwidthQuartile,
    /// Coverage threshold `CovThr` below which `MeasureCovP` is incremented
    /// (paper: the 50 % quartile).
    pub coverage_threshold: BandwidthQuartile,
    /// Run-time pattern selection policy (Figure 10, or one of the
    /// Figure 19 ablation variants).
    pub policy: SelectionPolicy,
    /// Physical page number width assumed for storage accounting (Table 1
    /// uses 36 bits).
    pub page_number_bits: u32,
    /// Page-offset width of a trigger stored in a Page Buffer entry (6 bits
    /// for 64 lines).
    pub trigger_offset_bits: u32,
    /// Replacement/valid metadata bits per Page Buffer entry. The explicit
    /// fields of Table 1 (page number 36 + pattern 64 + 2×[PC 8 + offset 6])
    /// sum to 128 bits, while the table states 158 bits per entry and a
    /// 10 112-bit PB total; the remaining 30 bits cover valid bits, LRU state
    /// and trigger-valid flags. We model them explicitly so the storage
    /// accounting reproduces the published 3.6 KB figure.
    pub pb_metadata_bits: u32,
}

impl Default for DsPatchConfig {
    fn default() -> Self {
        Self {
            page_buffer_entries: 64,
            spt_entries: 256,
            signature_bits: 8,
            or_limit: 3,
            accuracy_threshold: BandwidthQuartile::Q2,
            coverage_threshold: BandwidthQuartile::Q2,
            policy: SelectionPolicy::Full,
            page_number_bits: 36,
            trigger_offset_bits: 6,
            pb_metadata_bits: 30,
        }
    }
}

impl DsPatchConfig {
    /// Validates the configuration, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns an error string if a structural parameter is zero, the SPT
    /// entry count is not a power of two (the tagless direct-mapped indexing
    /// requires one), or the signature is wider than 64 bits.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_buffer_entries == 0 {
            return Err("page buffer must have at least one entry".to_owned());
        }
        if self.spt_entries == 0 {
            return Err("SPT must have at least one entry".to_owned());
        }
        if !self.spt_entries.is_power_of_two() {
            return Err(format!(
                "SPT entry count must be a power of two, got {}",
                self.spt_entries
            ));
        }
        if self.signature_bits == 0 || self.signature_bits > 64 {
            return Err(format!(
                "signature width must be in 1..=64 bits, got {}",
                self.signature_bits
            ));
        }
        if self.or_limit == 0 {
            return Err("OR limit must be at least one".to_owned());
        }
        Ok(())
    }

    /// Returns the configuration of the `AlwaysCovP` ablation variant
    /// (Figure 19), keeping every other parameter equal to `self`.
    pub fn always_covp(mut self) -> Self {
        self.policy = SelectionPolicy::AlwaysCovP;
        self
    }

    /// Returns the configuration of the `ModCovP` ablation variant
    /// (Figure 19), keeping every other parameter equal to `self`.
    pub fn mod_covp(mut self) -> Self {
        self.policy = SelectionPolicy::ModCovP;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = DsPatchConfig::default();
        assert_eq!(cfg.page_buffer_entries, 64);
        assert_eq!(cfg.spt_entries, 256);
        assert_eq!(cfg.signature_bits, 8);
        assert_eq!(cfg.or_limit, 3);
        assert_eq!(cfg.accuracy_threshold, BandwidthQuartile::Q2);
        assert_eq!(cfg.coverage_threshold, BandwidthQuartile::Q2);
        assert_eq!(cfg.policy, SelectionPolicy::Full);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = DsPatchConfig {
            spt_entries: 0,
            ..DsPatchConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.spt_entries = 100;
        assert!(cfg.validate().is_err(), "non power of two must be rejected");
        cfg.spt_entries = 256;
        cfg.signature_bits = 0;
        assert!(cfg.validate().is_err());
        cfg.signature_bits = 65;
        assert!(cfg.validate().is_err());
        cfg.signature_bits = 8;
        cfg.page_buffer_entries = 0;
        assert!(cfg.validate().is_err());
        cfg.page_buffer_entries = 64;
        cfg.or_limit = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ablation_builders_change_only_policy() {
        let base = DsPatchConfig::default();
        let a = base.always_covp();
        let m = base.mod_covp();
        assert_eq!(a.policy, SelectionPolicy::AlwaysCovP);
        assert_eq!(m.policy, SelectionPolicy::ModCovP);
        assert_eq!(a.spt_entries, base.spt_entries);
        assert_eq!(m.page_buffer_entries, base.page_buffer_entries);
    }
}
