//! The Signature Prediction Table (SPT).
//!
//! The SPT is a 256-entry, tagless, direct-mapped table indexed by a
//! folded-XOR hash of the trigger PC (paper, Section 3.4). Each entry stores
//! the two modulated, anchored, 128 B-granularity bit-patterns (`CovP`,
//! `AccP`) along with the per-2 KB-segment `MeasureCovP`, `MeasureAccP` and
//! `OrCount` saturating counters (Table 1: 76 bits per entry).

use crate::config::DsPatchConfig;
use crate::counters::SaturatingCounter;
use crate::measure::PredictionQuality;
use crate::pattern::{CompressedPattern, SpatialPattern, COMPRESSED_BITS};
use crate::selection::{select_pattern, PatternChoice};
use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{BandwidthQuartile, Pc};
use serde::{Deserialize, Serialize};

/// Number of 2 KB halves of an (anchored) 4 KB pattern.
pub const PATTERN_HALVES: usize = 2;
/// Compressed blocks per 2 KB half (16).
pub const BLOCKS_PER_HALF: usize = COMPRESSED_BITS / PATTERN_HALVES;

/// A prediction produced by one SPT entry for one trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SptPrediction {
    /// Anchored line-granularity pattern to prefetch (bit 0 = the trigger
    /// line itself).
    pub anchored: SpatialPattern,
    /// Whether the prefetches should be filled at low replacement priority.
    pub low_priority: bool,
    /// Which pattern was chosen for the first (trigger-relative) half; used
    /// for statistics and the Figure 19 ablation.
    pub choice: PatternChoice,
}

/// One SPT entry: the learnt state for one trigger-PC signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SptEntry {
    /// Coverage-biased pattern (anchored, 128 B granularity, 32 bits).
    pub cov_p: CompressedPattern,
    /// Accuracy-biased pattern (anchored, 128 B granularity, 32 bits).
    pub acc_p: CompressedPattern,
    /// Goodness of `CovP`, one 2-bit counter per 2 KB half.
    pub measure_covp: [SaturatingCounter; PATTERN_HALVES],
    /// Goodness of `AccP`, one 2-bit counter per 2 KB half.
    pub measure_accp: [SaturatingCounter; PATTERN_HALVES],
    /// OR-modulation budget of `CovP`, one 2-bit counter per 2 KB half.
    pub or_count: [SaturatingCounter; PATTERN_HALVES],
}

impl Default for SptEntry {
    fn default() -> Self {
        Self {
            cov_p: CompressedPattern::EMPTY,
            acc_p: CompressedPattern::EMPTY,
            measure_covp: [SaturatingCounter::two_bit(); PATTERN_HALVES],
            measure_accp: [SaturatingCounter::two_bit(); PATTERN_HALVES],
            or_count: [SaturatingCounter::two_bit(); PATTERN_HALVES],
        }
    }
}

impl SptEntry {
    /// Returns whether the entry has learnt nothing yet.
    pub fn is_cold(&self) -> bool {
        self.cov_p.is_empty() && self.acc_p.is_empty()
    }

    fn half(pattern: CompressedPattern, half: usize) -> u16 {
        let (lo, hi) = pattern.halves();
        if half == 0 {
            lo
        } else {
            hi
        }
    }

    fn set_half(pattern: &mut CompressedPattern, half: usize, bits: u16) {
        let (mut lo, mut hi) = pattern.halves();
        if half == 0 {
            lo = bits;
        } else {
            hi = bits;
        }
        *pattern = CompressedPattern::from_halves(lo, hi);
    }

    /// Produces a prediction for a trigger whose anchored view spans
    /// `halves` 2 KB halves (2 for a first-segment trigger, 1 for a
    /// second-segment trigger; paper Section 3.7).
    ///
    /// Returns `None` when the selection logic decides not to prefetch or
    /// when the selected patterns are empty.
    pub fn predict(
        &self,
        bandwidth: BandwidthQuartile,
        config: &DsPatchConfig,
        halves: usize,
    ) -> Option<SptPrediction> {
        let halves = halves.clamp(1, PATTERN_HALVES);
        let mut anchored = SpatialPattern::EMPTY;
        let mut low_priority = false;
        let mut first_choice = PatternChoice::NoPrefetch;
        for h in 0..halves {
            let choice = select_pattern(
                bandwidth,
                self.measure_covp[h],
                self.measure_accp[h],
                config.policy,
            );
            if h == 0 {
                first_choice = choice;
            }
            let bits = match choice {
                PatternChoice::Coverage { low_priority: lp } => {
                    low_priority |= lp;
                    Self::half(self.cov_p, h)
                }
                PatternChoice::Accuracy => Self::half(self.acc_p, h),
                PatternChoice::NoPrefetch => continue,
            };
            let compressed_half =
                CompressedPattern::from_bits(u32::from(bits) << (h * BLOCKS_PER_HALF));
            anchored = anchored | compressed_half.decompress();
        }
        if anchored.is_empty() {
            return None;
        }
        Some(SptPrediction {
            anchored,
            low_priority,
            choice: first_choice,
        })
    }

    /// Trains the entry with the anchored program pattern observed for one
    /// evicted page, limited to the `halves` the trigger was allowed to
    /// predict. `bandwidth` is the current utilization quartile, used by the
    /// `CovP` reset rule.
    pub fn train(
        &mut self,
        program: CompressedPattern,
        halves: usize,
        bandwidth: BandwidthQuartile,
        config: &DsPatchConfig,
    ) {
        let halves = halves.clamp(1, PATTERN_HALVES);
        for h in 0..halves {
            let prog = Self::half(program, h);
            let cov = Self::half(self.cov_p, h);
            let acc = Self::half(self.acc_p, h);
            if prog == 0 {
                // Nothing was observed in this half; skip so that cold halves
                // do not poison the counters.
                continue;
            }

            let cov_quality = PredictionQuality::from_counts(
                (cov & prog).count_ones(),
                cov.count_ones(),
                prog.count_ones(),
            );
            let acc_quality = PredictionQuality::from_counts(
                (acc & prog).count_ones(),
                acc.count_ones(),
                prog.count_ones(),
            );

            // MeasureCovP: incremented when CovP lacks accuracy or coverage
            // (Section 3.6). There is no decrement; the counter is cleared
            // only when CovP is relearnt.
            if cov == 0
                || cov_quality.accuracy_below(config.accuracy_threshold)
                || cov_quality.coverage_below(config.coverage_threshold)
            {
                self.measure_covp[h].increment();
            }

            // MeasureAccP: incremented when AccP accuracy < 50 %, decremented
            // otherwise.
            if acc == 0 || acc_quality.accuracy_below(BandwidthQuartile::Q2) {
                self.measure_accp[h].increment();
            } else {
                self.measure_accp[h].decrement();
            }

            // CovP update: relearn from scratch when it has gone stale and
            // either bandwidth is precious or coverage has collapsed;
            // otherwise OR in the new pattern, bounded by OrCount.
            let new_cov;
            let relearn = self.measure_covp[h].is_saturated()
                && (bandwidth.is_high() || cov_quality.coverage_below(BandwidthQuartile::Q2));
            if cov == 0 || relearn {
                new_cov = prog;
                self.or_count[h].reset();
                self.measure_covp[h].reset();
            } else if self.or_count[h].value() < config.or_limit {
                let merged = cov | prog;
                if merged != cov {
                    self.or_count[h].increment();
                }
                new_cov = merged;
            } else {
                new_cov = cov;
            }
            Self::set_half(&mut self.cov_p, h, new_cov);

            // AccP update: replaced (not recursively ANDed) by program AND CovP.
            Self::set_half(&mut self.acc_p, h, prog & new_cov);
        }
    }

    /// Storage bits of one entry, matching Table 1's 76 bits for the default
    /// configuration.
    pub fn storage_bits(&self) -> u64 {
        let cov_bits = 32;
        let acc_bits = 32;
        let counters: u64 = self
            .measure_covp
            .iter()
            .chain(self.measure_accp.iter())
            .chain(self.or_count.iter())
            .map(|c| c.storage_bits())
            .sum();
        cov_bits + acc_bits + counters
    }
}

/// The Signature Prediction Table.
///
/// # Example
///
/// ```
/// use dspatch::{DsPatchConfig, SignaturePredictionTable, SpatialPattern};
/// use dspatch_types::{BandwidthQuartile, Pc};
///
/// let config = DsPatchConfig::default();
/// let mut spt = SignaturePredictionTable::new(&config);
/// let pc = Pc::new(0x401000);
/// let mut program = SpatialPattern::default();
/// for off in [0, 2, 4, 6] {
///     program.set(off);
/// }
/// spt.train(pc, program.compress(), 2, BandwidthQuartile::Q0, &config);
/// let prediction = spt
///     .predict(pc, BandwidthQuartile::Q0, &config, 2)
///     .expect("trained signature should predict");
/// assert!(prediction.anchored.popcount() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignaturePredictionTable {
    entries: Vec<SptEntry>,
    signature_bits: u32,
}

impl SignaturePredictionTable {
    /// Creates an SPT sized per `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DsPatchConfig::validate`].
    pub fn new(config: &DsPatchConfig) -> Self {
        config
            .validate()
            .expect("invalid DSPatch configuration passed to SignaturePredictionTable::new");
        Self {
            entries: vec![SptEntry::default(); config.spt_entries],
            signature_bits: config.signature_bits,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the table has zero entries (never true for a
    /// validated configuration).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maps a trigger PC to its direct-mapped, tagless index.
    #[inline]
    pub fn index_of(&self, pc: Pc) -> usize {
        // Every paper configuration sizes the table as a power of two;
        // masking avoids a hardware divide on the train/predict path.
        let folded = pc.folded_xor(self.signature_bits) as usize;
        let len = self.entries.len();
        if len.is_power_of_two() {
            folded & (len - 1)
        } else {
            folded % len
        }
    }

    /// Returns the entry a PC maps to.
    pub fn entry(&self, pc: Pc) -> &SptEntry {
        &self.entries[self.index_of(pc)]
    }

    /// Returns the entry a PC maps to, mutably.
    pub fn entry_mut(&mut self, pc: Pc) -> &mut SptEntry {
        let index = self.index_of(pc);
        &mut self.entries[index]
    }

    /// Predicts for a trigger from `pc` (see [`SptEntry::predict`]).
    pub fn predict(
        &self,
        pc: Pc,
        bandwidth: BandwidthQuartile,
        config: &DsPatchConfig,
        halves: usize,
    ) -> Option<SptPrediction> {
        self.entry(pc).predict(bandwidth, config, halves)
    }

    /// Trains the entry for `pc` with an anchored program pattern (see
    /// [`SptEntry::train`]).
    pub fn train(
        &mut self,
        pc: Pc,
        program: CompressedPattern,
        halves: usize,
        bandwidth: BandwidthQuartile,
        config: &DsPatchConfig,
    ) {
        self.entry_mut(pc).train(program, halves, bandwidth, config);
    }

    /// Total storage bits of the table.
    pub fn storage_bits(&self) -> u64 {
        self.entries.iter().map(SptEntry::storage_bits).sum()
    }

    /// Fraction of entries that have learnt at least one pattern.
    pub fn occupancy(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let warm = self.entries.iter().filter(|e| !e.is_cold()).count();
        warm as f64 / self.entries.len() as f64
    }
}

fn save_counters(counters: &[SaturatingCounter; PATTERN_HALVES], writer: &mut StateWriter) {
    for counter in counters {
        writer.put_u8(counter.max());
        writer.put_u8(counter.value());
    }
}

fn load_counters(
    counters: &mut [SaturatingCounter; PATTERN_HALVES],
    reader: &mut StateReader<'_>,
) -> Result<(), SnapshotError> {
    for counter in counters.iter_mut() {
        let max = reader.get_u8()?;
        let value = reader.get_u8()?;
        if max == 0 {
            return Err(SnapshotError::Invalid(
                "saturating counter maximum must be positive".to_owned(),
            ));
        }
        *counter = SaturatingCounter::with_value(max, value);
    }
    Ok(())
}

impl SnapshotState for SignaturePredictionTable {
    fn snapshot_tag(&self) -> &'static str {
        "spt"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.entries.len());
        for entry in &self.entries {
            writer.put_u32(entry.cov_p.bits());
            writer.put_u32(entry.acc_p.bits());
            save_counters(&entry.measure_covp, writer);
            save_counters(&entry.measure_accp, writer);
            save_counters(&entry.or_count, writer);
        }
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let len = reader.get_len()?;
        if len != self.entries.len() {
            return Err(SnapshotError::Invalid(format!(
                "SPT length {} does not match configured {}",
                len,
                self.entries.len()
            )));
        }
        for entry in &mut self.entries {
            entry.cov_p = CompressedPattern::from_bits(reader.get_u32()?);
            entry.acc_p = CompressedPattern::from_bits(reader.get_u32()?);
            load_counters(&mut entry.measure_covp, reader)?;
            load_counters(&mut entry.measure_accp, reader)?;
            load_counters(&mut entry.or_count, reader)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DsPatchConfig {
        DsPatchConfig::default()
    }

    fn dense_pattern() -> SpatialPattern {
        let mut p = SpatialPattern::default();
        for off in (0..16).step_by(2) {
            p.set(off);
        }
        p
    }

    #[test]
    fn cold_entry_does_not_predict() {
        let spt = SignaturePredictionTable::new(&config());
        assert!(spt
            .predict(Pc::new(0x1234), BandwidthQuartile::Q0, &config(), 2)
            .is_none());
    }

    #[test]
    fn training_then_prediction_reproduces_pattern() {
        let cfg = config();
        let mut spt = SignaturePredictionTable::new(&cfg);
        let pc = Pc::new(0xcafe);
        let program = dense_pattern().compress();
        spt.train(pc, program, 2, BandwidthQuartile::Q0, &cfg);
        let pred = spt
            .predict(pc, BandwidthQuartile::Q0, &cfg, 2)
            .expect("prediction");
        // Every trained block must be covered by the prediction.
        let predicted_compressed = pred.anchored.compress();
        assert_eq!(predicted_compressed.bits() & program.bits(), program.bits());
        assert!(matches!(pred.choice, PatternChoice::Coverage { .. }));
    }

    #[test]
    fn covp_grows_by_or_and_accp_shrinks_by_and() {
        let cfg = config();
        let mut entry = SptEntry::default();
        let first = CompressedPattern::from_bits(0b0000_1111);
        let second = CompressedPattern::from_bits(0b1111_0000);
        entry.train(first, 1, BandwidthQuartile::Q0, &cfg);
        entry.train(second, 1, BandwidthQuartile::Q0, &cfg);
        let (cov_lo, _) = entry.cov_p.halves();
        let (acc_lo, _) = entry.acc_p.halves();
        assert_eq!(cov_lo, 0b1111_1111, "OR accumulates both observations");
        assert_eq!(
            acc_lo, 0b1111_0000,
            "AND keeps only the recurring/current bits"
        );
    }

    #[test]
    fn or_budget_limits_growth() {
        let cfg = config();
        let mut entry = SptEntry::default();
        // Patterns that keep adding one new block each time. After the first
        // training (relearn) plus `or_limit` ORs, further bits are ignored.
        // Keep accuracy/coverage reasonable so MeasureCovP does not trigger a
        // relearn: each new pattern repeats all previously seen blocks.
        let mut bits: u16 = 0b1;
        let mut trained = vec![bits];
        for i in 1..8 {
            bits |= 1 << i;
            trained.push(bits);
        }
        for &t in &trained {
            entry.train(
                CompressedPattern::from_bits(u32::from(t)),
                1,
                BandwidthQuartile::Q0,
                &cfg,
            );
        }
        let (cov_lo, _) = entry.cov_p.halves();
        // First training seeds one bit, then at most `or_limit` ORs each add one bit.
        assert!(cov_lo.count_ones() <= 1 + u32::from(cfg.or_limit));
    }

    #[test]
    fn stale_covp_is_relearnt_under_bandwidth_pressure() {
        let cfg = config();
        let mut entry = SptEntry::default();
        let learnt = CompressedPattern::from_bits(0xFFFF);
        entry.train(learnt, 1, BandwidthQuartile::Q0, &cfg);
        // The program now accesses a completely different, tiny footprint:
        // CovP accuracy collapses, MeasureCovP saturates, and under high
        // bandwidth utilization CovP is reset to the new program pattern.
        let new_program = CompressedPattern::from_bits(0b1);
        for _ in 0..8 {
            entry.train(new_program, 1, BandwidthQuartile::Q3, &cfg);
        }
        let (cov_lo, _) = entry.cov_p.halves();
        assert_eq!(cov_lo, 0b1, "CovP must eventually be relearnt from scratch");
    }

    #[test]
    fn accp_measure_saturates_on_persistent_inaccuracy() {
        let cfg = config();
        let mut entry = SptEntry::default();
        // Alternate between two disjoint patterns so AccP (program AND CovP)
        // keeps missing.
        let a = CompressedPattern::from_bits(0x00FF);
        let b = CompressedPattern::from_bits(0xFF00);
        for _ in 0..6 {
            entry.train(a, 1, BandwidthQuartile::Q0, &cfg);
            entry.train(b, 1, BandwidthQuartile::Q0, &cfg);
        }
        assert!(entry.measure_accp[0].value() > 0);
    }

    #[test]
    fn second_segment_trigger_predicts_single_half() {
        let cfg = config();
        let mut entry = SptEntry::default();
        let full = CompressedPattern::from_bits(0xFFFF_FFFF);
        entry.train(full, 2, BandwidthQuartile::Q0, &cfg);
        let one = entry
            .predict(BandwidthQuartile::Q0, &cfg, 1)
            .expect("prediction");
        let two = entry
            .predict(BandwidthQuartile::Q0, &cfg, 2)
            .expect("prediction");
        assert!(one.anchored.popcount() <= 32);
        assert!(two.anchored.popcount() > one.anchored.popcount());
    }

    #[test]
    fn high_bandwidth_with_bad_accp_suppresses_prefetching() {
        let cfg = config();
        let mut entry = SptEntry::default();
        entry.train(
            CompressedPattern::from_bits(0xF),
            1,
            BandwidthQuartile::Q0,
            &cfg,
        );
        for h in 0..PATTERN_HALVES {
            for _ in 0..4 {
                entry.measure_accp[h].increment();
            }
        }
        assert!(entry.predict(BandwidthQuartile::Q3, &cfg, 2).is_none());
    }

    #[test]
    fn entry_storage_matches_table1() {
        assert_eq!(SptEntry::default().storage_bits(), 76);
        let cfg = config();
        let spt = SignaturePredictionTable::new(&cfg);
        assert_eq!(spt.storage_bits(), 76 * 256);
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let cfg = config();
        let spt = SignaturePredictionTable::new(&cfg);
        for pc in (0..10_000u64).step_by(97) {
            let idx = spt.index_of(Pc::new(pc));
            assert!(idx < spt.len());
            assert_eq!(
                idx,
                spt.index_of(Pc::new(pc)),
                "index must be deterministic"
            );
        }
    }

    #[test]
    fn occupancy_grows_with_training() {
        let cfg = config();
        let mut spt = SignaturePredictionTable::new(&cfg);
        assert_eq!(spt.occupancy(), 0.0);
        for pc in 0..64u64 {
            spt.train(
                Pc::new(pc * 1024 + 7),
                CompressedPattern::from_bits(0xF),
                2,
                BandwidthQuartile::Q0,
                &cfg,
            );
        }
        assert!(spt.occupancy() > 0.0);
    }
}
