//! The typed error taxonomy for harness paths — the `HarnessError` the
//! ROADMAP's `dspatch-serve` item stacks on.
//!
//! Every fallible harness operation (spec validation, journal I/O, cell
//! execution) classifies its failures into one [`HarnessError`] variant, and
//! each variant maps to a stable [`ErrorClass`] with a dedicated
//! `dspatch-lab` exit code, so scripts driving campaigns can branch on the
//! failure mode without string-matching stderr. Cell-level failures carry
//! the `(target, prefetcher, config)` coordinates of the offending job; the
//! campaign itself keeps running (the executor quarantines the cell).

use crate::json::Json;

/// Coarse failure classes, each with a stable `dspatch-lab` exit code.
/// Keep the mapping in sync with the README's "Robustness" section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Invalid campaign spec or configuration (exit 3).
    Spec,
    /// OS-level I/O failure on a harness file (exit 4).
    Io,
    /// A corrupt journal or result record (exit 5).
    Corrupt,
    /// A journal that belongs to a different campaign or code version
    /// (exit 6).
    Mismatch,
    /// One or more cells were quarantined after exhausting retries; the
    /// rest of the campaign completed (exit 7).
    Cell,
}

impl ErrorClass {
    /// The `dspatch-lab` exit code for this class. `0` is success, `1` a
    /// generic/internal failure and `2` a usage error, so classes start
    /// at 3.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorClass::Spec => 3,
            ErrorClass::Io => 4,
            ErrorClass::Corrupt => 5,
            ErrorClass::Mismatch => 6,
            ErrorClass::Cell => 7,
        }
    }

    /// Stable lower-case label (used in journal failure records and JSON
    /// reports).
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Spec => "spec",
            ErrorClass::Io => "io",
            ErrorClass::Corrupt => "corrupt",
            ErrorClass::Mismatch => "mismatch",
            ErrorClass::Cell => "cell",
        }
    }
}

/// A typed harness failure. Variants carry enough context (path, line,
/// job coordinates) to act on without re-deriving it from the message.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The campaign spec or a derived configuration is invalid.
    Spec {
        /// What is wrong with it.
        message: String,
    },
    /// An OS-level I/O failure on a harness file (journal, spec, trace).
    Io {
        /// The file the operation targeted.
        path: String,
        /// The failing operation (`"open"`, `"read"`, `"write"`, ...).
        op: &'static str,
        /// The underlying error, rendered.
        message: String,
    },
    /// A structurally corrupt journal record.
    Corrupt {
        /// The journal file.
        path: String,
        /// 1-based line number of the bad record.
        line: u64,
        /// What is wrong with it.
        message: String,
    },
    /// The journal belongs to a different campaign, scale, or code version
    /// than the resuming run.
    Mismatch {
        /// The journal file.
        path: String,
        /// The differing field (`"fingerprint"`, `"campaign"`, ...).
        field: &'static str,
        /// The value the resuming run expects.
        expected: String,
        /// The value the journal holds.
        found: String,
    },
    /// A cell's simulation panicked.
    CellPanic {
        /// The `cell:target:prefetcher@config` coordinates of the job.
        job: String,
        /// The rendered panic payload.
        message: String,
    },
    /// A cell hit an injected or real I/O failure while executing.
    CellIo {
        /// The job coordinates.
        job: String,
        /// The failure, rendered.
        message: String,
    },
    /// A cell exhausted its retry budget and was quarantined; the campaign
    /// completed without it.
    Quarantined {
        /// The job coordinates.
        job: String,
        /// Attempts made (1 initial + retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<HarnessError>,
    },
}

impl HarnessError {
    /// Convenience constructor for [`HarnessError::Spec`].
    pub fn spec(message: impl Into<String>) -> Self {
        HarnessError::Spec {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`HarnessError::Io`].
    pub fn io(path: impl Into<String>, op: &'static str, error: &std::io::Error) -> Self {
        HarnessError::Io {
            path: path.into(),
            op,
            message: error.to_string(),
        }
    }

    /// The coarse class this error belongs to (and thereby its exit code).
    pub fn class(&self) -> ErrorClass {
        match self {
            HarnessError::Spec { .. } => ErrorClass::Spec,
            HarnessError::Io { .. } => ErrorClass::Io,
            HarnessError::Corrupt { .. } => ErrorClass::Corrupt,
            HarnessError::Mismatch { .. } => ErrorClass::Mismatch,
            HarnessError::CellPanic { .. }
            | HarnessError::CellIo { .. }
            | HarnessError::Quarantined { .. } => ErrorClass::Cell,
        }
    }

    /// JSON form for reports and journal failure records: always an object
    /// with `class` and `message`, plus the variant's structured fields.
    pub fn to_json(&self) -> Json {
        let mut entries = vec![
            ("class".to_owned(), Json::str(self.class().label())),
            ("message".to_owned(), Json::str(self.to_string())),
        ];
        match self {
            HarnessError::Spec { .. } => {}
            HarnessError::Io { path, op, .. } => {
                entries.push(("path".to_owned(), Json::str(path)));
                entries.push(("op".to_owned(), Json::str(*op)));
            }
            HarnessError::Corrupt { path, line, .. } => {
                entries.push(("path".to_owned(), Json::str(path)));
                entries.push(("line".to_owned(), Json::num(*line as f64)));
            }
            HarnessError::Mismatch {
                path,
                field,
                expected,
                found,
            } => {
                entries.push(("path".to_owned(), Json::str(path)));
                entries.push(("field".to_owned(), Json::str(*field)));
                entries.push(("expected".to_owned(), Json::str(expected)));
                entries.push(("found".to_owned(), Json::str(found)));
            }
            HarnessError::CellPanic { job, .. } | HarnessError::CellIo { job, .. } => {
                entries.push(("job".to_owned(), Json::str(job)));
            }
            HarnessError::Quarantined { job, attempts, .. } => {
                entries.push(("job".to_owned(), Json::str(job)));
                entries.push(("attempts".to_owned(), Json::num(*attempts as f64)));
            }
        }
        Json::Obj(entries)
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Spec { message } => write!(f, "invalid spec: {message}"),
            HarnessError::Io { path, op, message } => write!(f, "{path}: {op} failed: {message}"),
            HarnessError::Corrupt {
                path,
                line,
                message,
            } => write!(f, "{path}:{line}: corrupt journal record: {message}"),
            HarnessError::Mismatch {
                path,
                field,
                expected,
                found,
            } => write!(
                f,
                "{path}: journal {field} mismatch: journal has '{found}', \
                 this run has '{expected}'"
            ),
            HarnessError::CellPanic { job, message } => {
                write!(f, "cell {job} panicked: {message}")
            }
            HarnessError::CellIo { job, message } => {
                write!(f, "cell {job}: I/O failure: {message}")
            }
            HarnessError::Quarantined {
                job,
                attempts,
                last,
            } => write!(
                f,
                "cell {job} quarantined after {attempts} attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Quarantined { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<dspatch_trace::TraceFileError> for HarnessError {
    fn from(error: dspatch_trace::TraceFileError) -> Self {
        use dspatch_trace::TraceFileError as T;
        match error {
            T::Io { path, op, message } => HarnessError::Io {
                path: path.display().to_string(),
                op,
                message,
            },
            // Structural trace problems are spec-class: the user pointed the
            // harness at a file that cannot back the requested campaign.
            other => HarnessError::Spec {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_map_to_distinct_exit_codes() {
        let classes = [
            ErrorClass::Spec,
            ErrorClass::Io,
            ErrorClass::Corrupt,
            ErrorClass::Mismatch,
            ErrorClass::Cell,
        ];
        let mut codes: Vec<i32> = classes.iter().map(|c| c.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), classes.len(), "exit codes must be distinct");
        // 0/1/2 are success/internal/usage; classes start above them.
        assert!(codes.iter().all(|&c| c >= 3));
    }

    #[test]
    fn display_carries_the_context() {
        let err = HarnessError::Corrupt {
            path: "run.journal".to_owned(),
            line: 17,
            message: "truncated record".to_owned(),
        };
        assert_eq!(
            err.to_string(),
            "run.journal:17: corrupt journal record: truncated record"
        );
        let quarantined = HarnessError::Quarantined {
            job: "hpc:stream_1:SPP@1T".to_owned(),
            attempts: 2,
            last: Box::new(HarnessError::CellPanic {
                job: "hpc:stream_1:SPP@1T".to_owned(),
                message: "boom".to_owned(),
            }),
        };
        let text = quarantined.to_string();
        assert!(text.contains("after 2 attempts"), "got: {text}");
        assert!(text.contains("boom"), "got: {text}");
        assert_eq!(quarantined.class(), ErrorClass::Cell);
        assert!(std::error::Error::source(&quarantined).is_some());
    }

    #[test]
    fn json_form_is_structured() {
        let err = HarnessError::Mismatch {
            path: "run.journal".to_owned(),
            field: "fingerprint",
            expected: "abc".to_owned(),
            found: "def".to_owned(),
        };
        let json = err.to_json();
        assert_eq!(json.get("class").and_then(Json::as_str), Some("mismatch"));
        assert_eq!(
            json.get("field").and_then(Json::as_str),
            Some("fingerprint")
        );
        assert_eq!(json.get("expected").and_then(Json::as_str), Some("abc"));
        assert_eq!(json.get("found").and_then(Json::as_str), Some("def"));
    }

    #[test]
    fn trace_errors_convert_with_their_class() {
        let io = dspatch_trace::TraceFileError::Io {
            path: "t.trace".into(),
            op: "open",
            message: "denied".to_owned(),
        };
        assert_eq!(HarnessError::from(io).class(), ErrorClass::Io);
        let short = dspatch_trace::TraceFileError::TooShort {
            path: "t.trace".into(),
            len: 2,
        };
        let converted = HarnessError::from(short);
        assert_eq!(converted.class(), ErrorClass::Spec);
        assert!(converted.to_string().contains("2 bytes"));
    }
}
