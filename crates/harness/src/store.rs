//! Content-addressed, append-only result store: the durable cross-campaign
//! memo table behind `dspatch-serve` and `dspatch-lab --store`.
//!
//! Where a [`crate::journal`] binds to **one** `(spec, scale)` identity so a
//! crashed campaign can resume, the store is campaign-agnostic: every record
//! is keyed by a [`cell_fingerprint`] — FNV-1a over the `(code version,
//! target, prefetcher, normalized config, accesses-per-workload)` identity of
//! one simulation cell — so *any* campaign, submitted by *any* request or
//! process incarnation, that reaches an already-simulated cell is served from
//! disk instead of re-simulating. The format follows the journal's crash-safe
//! discipline: one flushed JSON line per record, a torn final line silently
//! truncated on open, mid-file damage a typed [`HarnessError::Corrupt`].
//!
//! Since format version 2 each record is a canonical
//! [`ResultRow`] (`{"row": {...}}`) carrying the fingerprint identity
//! spelled out as typed fields — which is what the [`crate::analytics`]
//! layer queries. Version-1 records (`{"cell": {"fingerprint", "result"}}`)
//! still parse, upgrading into legacy-tagged rows with empty identity.
//!
//! The fingerprint deliberately excludes the parallelism knobs
//! (`parallel_cores` / `parallel_workers` / `parallel_epoch_cycles`): the
//! epoch engine is bit-identical for every worker count by construction, so a
//! result simulated with 4 intra-sim workers answers a single-threaded
//! request for the same cell. It deliberately *includes* the crate version:
//! a simulator change invalidates old results by changing the key, never by
//! rewriting the file — [`ResultStore::gc`] is how superseded versions are
//! eventually reclaimed.

use crate::error::HarnessError;
use crate::journal::fnv1a;
use crate::json::Json;
use crate::results::{sim_result_from_json, ResultRow};
use dspatch_sim::{SimResult, SystemConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic value of the meta line's `store` field.
const STORE_MAGIC: &str = "dspatch-result-store";
/// Store format version (records are canonical [`ResultRow`]s).
const STORE_VERSION: u64 = 2;
/// Oldest store version still readable (bare `cell` records).
const STORE_MIN_VERSION: u64 = 1;
/// File name inside the store directory.
pub const STORE_FILE: &str = "results.jsonl";

/// The crate version participating in every [`cell_fingerprint`], so results
/// simulated by older code are never served for newer code (or vice versa).
pub fn code_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Orders version strings by their dotted numeric segments (`0.10.0` after
/// `0.9.1`), falling back to byte order for non-numeric segments. The empty
/// string — a legacy row's unknown version — sorts before everything.
pub fn compare_versions(a: &str, b: &str) -> std::cmp::Ordering {
    let mut left = a.split('.');
    let mut right = b.split('.');
    loop {
        match (left.next(), right.next()) {
            (None, None) => return std::cmp::Ordering::Equal,
            (None, Some(_)) => return std::cmp::Ordering::Less,
            (Some(_), None) => return std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => {
                let ordering = match (x.parse::<u64>(), y.parse::<u64>()) {
                    (Ok(xn), Ok(yn)) => xn.cmp(&yn),
                    _ => x.cmp(y),
                };
                if ordering != std::cmp::Ordering::Equal {
                    return ordering;
                }
            }
        }
    }
}

/// Content address of one simulation cell, rendered as 16 hex digits.
///
/// The identity is `(code version, target key, prefetcher selection,
/// normalized config, accesses per workload)`. The config is normalized by
/// zeroing the parallelism knobs — they never change results (bit-identity
/// for any worker count is a tested guarantee of the epoch engine) — and
/// hashed through its `Debug` rendering, which is stable within one crate
/// version; `code_version()` in the identity covers renderings drifting
/// *across* versions.
pub fn cell_fingerprint(
    target_key: &str,
    prefetcher: &str,
    config: &SystemConfig,
    accesses_per_workload: usize,
) -> String {
    cell_fingerprint_sampled(target_key, prefetcher, config, accesses_per_workload, None)
}

/// [`cell_fingerprint`] with an optional sampling plan: sampled and exact
/// results of the same cell get distinct identities (a sampled IPC is an
/// estimate and must never be served where an exact one was asked for).
pub fn cell_fingerprint_sampled(
    target_key: &str,
    prefetcher: &str,
    config: &SystemConfig,
    accesses_per_workload: usize,
    sampling: Option<&crate::sampling::SamplingPlan>,
) -> String {
    let mut normalized = config.clone();
    normalized.parallel_cores = false;
    normalized.parallel_workers = 0;
    normalized.parallel_epoch_cycles = 0;
    let mut identity = format!(
        "v{}|{target_key}|{prefetcher}|{normalized:?}|a{accesses_per_workload}",
        code_version()
    );
    if let Some(plan) = sampling {
        identity.push_str(&plan.fingerprint_suffix());
    }
    format!("{:016x}", fnv1a(identity.as_bytes()))
}

/// What one [`ResultStore::gc`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Rows kept (and rewritten).
    pub kept: usize,
    /// Rows dropped (superseded code versions).
    pub dropped: usize,
}

/// The append-only on-disk memo table: an in-memory index over
/// `<dir>/results.jsonl`, with one flushed line per inserted result.
///
/// Opened once per process and shared behind a mutex; the lock is taken per
/// lookup/insert, never on the simulation hot path.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    file: std::fs::File,
    results: HashMap<String, ResultRow>,
}

impl ResultStore {
    /// Opens (creating if needed) the store under `dir`, replaying every
    /// existing record into the in-memory index. A torn final line — the
    /// crash signature of an interrupted append — is truncated away;
    /// mid-file damage is a typed error.
    ///
    /// # Errors
    ///
    /// * [`HarnessError::Io`] — the directory or file cannot be created,
    ///   read, or truncated.
    /// * [`HarnessError::Mismatch`] — the file exists but carries a foreign
    ///   magic or an unsupported version (never silently overwritten).
    /// * [`HarnessError::Corrupt`] — a record before the final line is
    ///   unparsable or structurally invalid.
    pub fn open(dir: &Path) -> Result<Self, HarnessError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| HarnessError::io(dir.display().to_string(), "create_dir", &e))?;
        let path = dir.join(STORE_FILE);
        let display = path.display().to_string();
        if !path.exists() {
            let file = std::fs::File::create(&path)
                .map_err(|e| HarnessError::io(display.clone(), "create", &e))?;
            let mut store = Self {
                path,
                file,
                results: HashMap::new(),
            };
            store.write_line(&meta_json().render_compact())?;
            return Ok(store);
        }

        let (results, clean_len) = Self::replay(&path, &display)?;
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| HarnessError::io(display.clone(), "open", &e))?;
        file.set_len(clean_len)
            .map_err(|e| HarnessError::io(display.clone(), "truncate", &e))?;
        file.seek(SeekFrom::Start(clean_len))
            .map_err(|e| HarnessError::io(display.clone(), "seek", &e))?;
        let mut store = Self {
            path,
            file,
            results,
        };
        if clean_len == 0 {
            // The file existed but was empty (or all torn): re-stamp it.
            store.write_line(&meta_json().render_compact())?;
        }
        Ok(store)
    }

    /// Reads every record, returning the index and the clean byte prefix.
    fn replay(
        path: &Path,
        display: &str,
    ) -> Result<(HashMap<String, ResultRow>, u64), HarnessError> {
        let file = std::fs::File::open(path)
            .map_err(|e| HarnessError::io(display.to_owned(), "open", &e))?;
        let mut reader = BufReader::new(file);
        let mut results = HashMap::new();
        let mut line = String::new();
        let mut line_no = 0u64;
        let mut offset = 0u64;
        loop {
            line.clear();
            let bytes = reader
                .read_line(&mut line)
                .map_err(|e| HarnessError::io(display.to_owned(), "read", &e))?;
            if bytes == 0 {
                break;
            }
            line_no += 1;
            let parsed = if line.ends_with('\n') {
                parse_store_line(line.trim_end(), line_no, display)
            } else {
                Err(HarnessError::Corrupt {
                    path: display.to_owned(),
                    line: line_no,
                    message: "record has no trailing newline".to_owned(),
                })
            };
            match parsed {
                Ok(StoreRecord::Meta) => offset += bytes as u64,
                Ok(StoreRecord::Row(row)) => {
                    results.insert(row.fingerprint.clone(), *row);
                    offset += bytes as u64;
                }
                Err(error) => {
                    let at_eof = {
                        let probe = reader
                            .fill_buf()
                            .map_err(|e| HarnessError::io(display.to_owned(), "read", &e))?;
                        probe.is_empty()
                    };
                    // A bad FINAL line is a torn append: drop it and keep
                    // the clean prefix. Anything earlier is real damage,
                    // and a foreign meta line always propagates.
                    if at_eof && line_no > 1 && matches!(error, HarnessError::Corrupt { .. }) {
                        break;
                    }
                    return Err(error);
                }
            }
        }
        Ok((results, offset))
    }

    /// Looks up a cell's statistics by fingerprint.
    pub fn get(&self, fingerprint: &str) -> Option<&SimResult> {
        self.results.get(fingerprint).map(|row| &row.result)
    }

    /// Looks up a cell's full row by fingerprint.
    pub fn get_row(&self, fingerprint: &str) -> Option<&ResultRow> {
        self.results.get(fingerprint)
    }

    /// Inserts one row, appending a flushed record; a fingerprint already
    /// present is a no-op (returns `false`, writes nothing), so replaying
    /// overlapping campaigns into one store stays idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure.
    pub fn insert(&mut self, row: &ResultRow) -> Result<bool, HarnessError> {
        if self.results.contains_key(&row.fingerprint) {
            return Ok(false);
        }
        let record = Json::obj([("row", row.to_json())]);
        self.write_line(&record.render_compact())?;
        self.results.insert(row.fingerprint.clone(), row.clone());
        Ok(true)
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Iterates over `(fingerprint, result)` pairs in index order
    /// (unspecified, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SimResult)> {
        self.results
            .iter()
            .map(|(k, row)| (k.as_str(), &row.result))
    }

    /// Iterates over the stored rows in index order (unspecified, not
    /// insertion order). The analytics layer sorts canonically on load.
    pub fn rows(&self) -> impl Iterator<Item = &ResultRow> {
        self.results.values()
    }

    /// Compacts the store: rewrites `results.jsonl` keeping, for each cell
    /// identity (workload, prefetcher, config, scale, sampling), only the
    /// rows belonging to the newest `keep_versions` distinct code versions.
    /// Legacy rows (schema 1, identity unknown) are grouped by fingerprint
    /// alone, so any positive `keep_versions` keeps them — gc never throws
    /// away data it cannot attribute.
    ///
    /// The rewrite is crash-safe: rows are written to `results.jsonl.tmp`
    /// (meta line first, rows in canonical identity order) and the file is
    /// atomically renamed over the store — a crash mid-gc leaves the
    /// original store untouched.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Spec`] for `keep_versions == 0` and
    /// [`HarnessError::Io`] on write/rename failure.
    pub fn gc(&mut self, keep_versions: usize) -> Result<GcStats, HarnessError> {
        if keep_versions == 0 {
            return Err(HarnessError::spec(
                "store gc: keep_versions must be at least 1 (0 would drop every row)",
            ));
        }
        // Newest-N code versions per identity group.
        let mut versions_by_group: HashMap<String, Vec<&str>> = HashMap::new();
        for row in self.results.values() {
            let versions = versions_by_group.entry(gc_group_key(row)).or_default();
            if !versions.contains(&row.code_version.as_str()) {
                versions.push(&row.code_version);
            }
        }
        for versions in versions_by_group.values_mut() {
            versions.sort_by(|a, b| compare_versions(b, a));
            versions.truncate(keep_versions);
        }
        let mut kept: Vec<&ResultRow> = self
            .results
            .values()
            .filter(|row| {
                versions_by_group[&gc_group_key(row)].contains(&row.code_version.as_str())
            })
            .collect();
        kept.sort_by_key(|row| row_identity(row));
        let stats = GcStats {
            kept: kept.len(),
            dropped: self.results.len() - kept.len(),
        };

        // Write-temp-then-rename: the live file is replaced atomically.
        let tmp_path = self.path.with_extension("jsonl.tmp");
        let tmp_display = tmp_path.display().to_string();
        {
            let mut tmp = std::fs::File::create(&tmp_path)
                .map_err(|e| HarnessError::io(tmp_display.clone(), "create", &e))?;
            let mut write = |line: &str| {
                tmp.write_all(line.as_bytes())
                    .and_then(|()| tmp.write_all(b"\n"))
                    .map_err(|e| HarnessError::io(tmp_display.clone(), "write", &e))
            };
            write(&meta_json().render_compact())?;
            for row in &kept {
                write(&Json::obj([("row", row.to_json())]).render_compact())?;
            }
            tmp.sync_all()
                .map_err(|e| HarnessError::io(tmp_display.clone(), "sync", &e))?;
        }
        let display = self.path.display().to_string();
        std::fs::rename(&tmp_path, &self.path)
            .map_err(|e| HarnessError::io(display.clone(), "rename", &e))?;

        // Reopen the append handle on the new file and rebuild the index.
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| HarnessError::io(display.clone(), "open", &e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| HarnessError::io(display, "seek", &e))?;
        self.file = file;
        self.results = kept
            .into_iter()
            .map(|row| (row.fingerprint.clone(), row.clone()))
            .collect();
        Ok(stats)
    }

    fn write_line(&mut self, line: &str) -> Result<(), HarnessError> {
        let display = self.path.display().to_string();
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.flush())
            .map_err(|e| HarnessError::io(display, "write", &e))
    }
}

/// The identity group a row competes in during [`ResultStore::gc`].
fn gc_group_key(row: &ResultRow) -> String {
    if row.is_legacy() {
        format!("legacy|{}", row.fingerprint)
    } else {
        format!(
            "{}|{}|{}|{}|{}",
            row.workload, row.prefetcher, row.config, row.scale, row.sampling
        )
    }
}

/// Canonical sort key for the gc rewrite (and deterministic re-query).
fn row_identity(row: &ResultRow) -> (String, u64, String) {
    (gc_group_key(row), row.scale, row.fingerprint.clone())
}

fn meta_json() -> Json {
    Json::obj([
        ("store", Json::str(STORE_MAGIC)),
        ("version", Json::num(STORE_VERSION as u32)),
    ])
}

enum StoreRecord {
    Meta,
    Row(Box<ResultRow>),
}

fn parse_store_line(text: &str, line_no: u64, display: &str) -> Result<StoreRecord, HarnessError> {
    let corrupt = |message: String| HarnessError::Corrupt {
        path: display.to_owned(),
        line: line_no,
        message,
    };
    let json = Json::parse(text).map_err(|e| corrupt(e.to_string()))?;
    if line_no == 1 {
        let magic = json.get("store").and_then(Json::as_str).unwrap_or("");
        if magic != STORE_MAGIC {
            return Err(HarnessError::Mismatch {
                path: display.to_owned(),
                field: "store",
                expected: STORE_MAGIC.to_owned(),
                found: magic.to_owned(),
            });
        }
        let version = json.get("version").and_then(Json::as_u64).unwrap_or(0);
        if !(STORE_MIN_VERSION..=STORE_VERSION).contains(&version) {
            return Err(HarnessError::Mismatch {
                path: display.to_owned(),
                field: "version",
                expected: STORE_VERSION.to_string(),
                found: version.to_string(),
            });
        }
        return Ok(StoreRecord::Meta);
    }
    // Version 2: a canonical row. Accepted regardless of the meta line's
    // version so a v1 store appended to by v2 code stays readable.
    if let Some(row) = json.get("row") {
        let row = ResultRow::from_json(row).map_err(corrupt)?;
        return Ok(StoreRecord::Row(Box::new(row)));
    }
    // Version 1: fingerprint + bare result, upgraded to a legacy row.
    let cell = json
        .get("cell")
        .ok_or_else(|| corrupt(format!("unknown record shape: {text}")))?;
    let fingerprint = cell
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("cell record missing string 'fingerprint'".to_owned()))?
        .to_owned();
    let result = cell
        .get("result")
        .ok_or_else(|| corrupt("cell record missing 'result'".to_owned()))
        .and_then(|result| sim_result_from_json(result).map_err(corrupt))?;
    Ok(StoreRecord::Row(Box::new(ResultRow::legacy(
        fingerprint,
        result,
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_sim::{SimulationBuilder, SystemConfig};
    use dspatch_trace::{Trace, TraceRecord};
    use dspatch_types::NullPrefetcher;

    fn tiny_sim() -> SimResult {
        let records: Vec<TraceRecord> = (0..32).map(|i| TraceRecord::load(0x400, i * 64)).collect();
        SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(Trace::new("store-test", records), NullPrefetcher::new())
            .run()
    }

    fn row_for(fingerprint: &str, workload: &str, prefetcher: &str, version: &str) -> ResultRow {
        let mut row = ResultRow::new(
            fingerprint.to_owned(),
            "store-test".to_owned(),
            workload.to_owned(),
            prefetcher.to_owned(),
            "1T".to_owned(),
            32,
            String::new(),
            tiny_sim(),
        );
        row.code_version = version.to_owned();
        row
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dspatch_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        let sim = tiny_sim();
        let fp = cell_fingerprint(
            "w:test",
            "Kind(Baseline)",
            &SystemConfig::single_thread(),
            32,
        );
        let row = ResultRow::new(
            fp.clone(),
            "store-test".to_owned(),
            "test".to_owned(),
            "Baseline".to_owned(),
            "1T".to_owned(),
            32,
            String::new(),
            sim.clone(),
        );
        {
            let mut store = ResultStore::open(&dir).expect("open fresh");
            assert!(store.is_empty());
            assert!(store.insert(&row).expect("insert"));
            // Idempotent: a second insert writes nothing.
            assert!(!store.insert(&row).expect("reinsert"));
            assert_eq!(store.len(), 1);
        }
        let store = ResultStore::open(&dir).expect("reopen");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&fp), Some(&sim));
        let stored = store.get_row(&fp).expect("full row");
        assert_eq!(stored, &row);
        assert_eq!(stored.code_version, code_version());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_but_midfile_damage_is_typed() {
        let dir = temp_dir("torn");
        let fp_a = cell_fingerprint("w:a", "Kind(Spp)", &SystemConfig::single_thread(), 32);
        let fp_b = cell_fingerprint("w:b", "Kind(Spp)", &SystemConfig::single_thread(), 32);
        {
            let mut store = ResultStore::open(&dir).expect("open");
            store
                .insert(&row_for(&fp_a, "a", "SPP", "0.1.0"))
                .expect("insert a");
            store
                .insert(&row_for(&fp_b, "b", "SPP", "0.1.0"))
                .expect("insert b");
        }
        let path = dir.join(STORE_FILE);
        let text = std::fs::read_to_string(&path).expect("read");
        // Tear the final record mid-line: the reopen drops it, keeps the rest.
        std::fs::write(&path, &text[..text.len() - 40]).expect("tear");
        let store = ResultStore::open(&dir).expect("reopen torn");
        assert_eq!(store.len(), 1);
        drop(store);
        // Damage a NON-final line: that is real corruption.
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!(
            "{}\n{}\n{}\n",
            lines[0],
            &lines[1][..lines[1].len() / 2],
            lines[2]
        );
        std::fs::write(&path, mangled).expect("mangle");
        let err = ResultStore::open(&dir).expect_err("mid-file damage");
        assert!(
            matches!(err, HarnessError::Corrupt { line: 2, .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_file_is_a_mismatch() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join(STORE_FILE), "{\"store\": \"something-else\"}\n").expect("write");
        let err = ResultStore::open(&dir).expect_err("foreign magic");
        assert!(
            matches!(err, HarnessError::Mismatch { field: "store", .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_parallel_knobs_but_not_the_rest() {
        let base = SystemConfig::single_thread();
        let fp = cell_fingerprint("w:x", "Kind(Dspatch)", &base, 1000);
        let mut parallel = base.clone();
        parallel.parallel_cores = true;
        parallel.parallel_workers = 4;
        parallel.parallel_epoch_cycles = 5000;
        // Worker-count knobs never change results, so they share an address.
        assert_eq!(
            fp,
            cell_fingerprint("w:x", "Kind(Dspatch)", &parallel, 1000)
        );
        let mut other = base.clone();
        other.prefetch_mshrs += 1;
        assert_ne!(fp, cell_fingerprint("w:x", "Kind(Dspatch)", &other, 1000));
        assert_ne!(fp, cell_fingerprint("w:y", "Kind(Dspatch)", &base, 1000));
        assert_ne!(fp, cell_fingerprint("w:x", "Kind(Spp)", &base, 1000));
        assert_ne!(fp, cell_fingerprint("w:x", "Kind(Dspatch)", &base, 2000));
    }

    #[test]
    fn version_ordering_is_numeric_per_segment() {
        use std::cmp::Ordering;
        assert_eq!(compare_versions("0.10.0", "0.9.1"), Ordering::Greater);
        assert_eq!(compare_versions("0.9.1", "0.9.1"), Ordering::Equal);
        assert_eq!(compare_versions("1.0.0", "0.99.99"), Ordering::Greater);
        assert_eq!(compare_versions("", "0.1.0"), Ordering::Less);
        assert_eq!(compare_versions("0.1", "0.1.0"), Ordering::Less);
    }

    #[test]
    fn gc_keeps_newest_versions_and_is_idempotent() {
        let dir = temp_dir("gc");
        {
            let mut store = ResultStore::open(&dir).expect("open");
            // Same identity under three code versions, plus a second cell
            // with one version and a legacy row.
            store
                .insert(&row_for("fp-old", "a", "SPP", "0.0.8"))
                .expect("a old");
            store
                .insert(&row_for("fp-mid", "a", "SPP", "0.0.9"))
                .expect("a mid");
            store
                .insert(&row_for("fp-new", "a", "SPP", "0.1.0"))
                .expect("a new");
            store
                .insert(&row_for("fp-b", "b", "SPP", "0.1.0"))
                .expect("b");
            store
                .insert(&ResultRow::legacy("fp-legacy".to_owned(), tiny_sim()))
                .expect("legacy");
            assert_eq!(store.len(), 5);

            let stats = store.gc(2).expect("gc");
            assert_eq!(
                stats,
                GcStats {
                    kept: 4,
                    dropped: 1
                }
            );
            assert_eq!(store.len(), 4);
            assert!(store.get("fp-old").is_none(), "0.0.8 is superseded");
            assert!(store.get("fp-mid").is_some());
            assert!(store.get("fp-new").is_some());
            assert!(store.get("fp-b").is_some());
            assert!(store.get("fp-legacy").is_some(), "legacy rows survive gc");

            // Idempotent: a second pass with the same policy drops nothing.
            let stats = store.gc(2).expect("gc again");
            assert_eq!(
                stats,
                GcStats {
                    kept: 4,
                    dropped: 0
                }
            );

            // The store stays appendable after the rewrite.
            store
                .insert(&row_for("fp-c", "c", "SPP", "0.1.0"))
                .expect("append after gc");
        }
        let store = ResultStore::open(&dir).expect("reopen");
        assert_eq!(store.len(), 5);
        assert!(store.get("fp-c").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_rewrite_is_byte_deterministic() {
        let dir_x = temp_dir("gc_det_x");
        let dir_y = temp_dir("gc_det_y");
        // Same rows, different insertion orders.
        let rows = [
            row_for("fp-1", "a", "SPP", "0.1.0"),
            row_for("fp-2", "b", "BOP", "0.1.0"),
            row_for("fp-3", "a", "BOP", "0.1.0"),
        ];
        {
            let mut store = ResultStore::open(&dir_x).expect("open x");
            for row in &rows {
                store.insert(row).expect("insert");
            }
            store.gc(1).expect("gc x");
        }
        {
            let mut store = ResultStore::open(&dir_y).expect("open y");
            for row in rows.iter().rev() {
                store.insert(row).expect("insert");
            }
            store.gc(1).expect("gc y");
        }
        let x = std::fs::read(dir_x.join(STORE_FILE)).expect("read x");
        let y = std::fs::read(dir_y.join(STORE_FILE)).expect("read y");
        assert_eq!(x, y, "gc output must not depend on insertion order");
        std::fs::remove_dir_all(&dir_x).ok();
        std::fs::remove_dir_all(&dir_y).ok();
    }

    #[test]
    fn gc_of_zero_versions_is_a_spec_error() {
        let dir = temp_dir("gc_zero");
        let mut store = ResultStore::open(&dir).expect("open");
        let err = store.gc(0).expect_err("must reject");
        assert!(matches!(err, HarnessError::Spec { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
