//! Content-addressed, append-only result store: the durable cross-campaign
//! memo table behind `dspatch-serve` and `dspatch-lab --store`.
//!
//! Where a [`crate::journal`] binds to **one** `(spec, scale)` identity so a
//! crashed campaign can resume, the store is campaign-agnostic: every record
//! is keyed by a [`cell_fingerprint`] — FNV-1a over the `(code version,
//! target, prefetcher, normalized config, accesses-per-workload)` identity of
//! one simulation cell — so *any* campaign, submitted by *any* request or
//! process incarnation, that reaches an already-simulated cell is served from
//! disk instead of re-simulating. The format follows the journal's crash-safe
//! discipline: one flushed JSON line per record, a torn final line silently
//! truncated on open, mid-file damage a typed [`HarnessError::Corrupt`].
//!
//! The fingerprint deliberately excludes the parallelism knobs
//! (`parallel_cores` / `parallel_workers` / `parallel_epoch_cycles`): the
//! epoch engine is bit-identical for every worker count by construction, so a
//! result simulated with 4 intra-sim workers answers a single-threaded
//! request for the same cell. It deliberately *includes* the crate version:
//! a simulator change invalidates old results by changing the key, never by
//! rewriting the file.

use crate::error::HarnessError;
use crate::journal::{fnv1a, sim_result_from_json, sim_result_to_json};
use crate::json::Json;
use dspatch_sim::{SimResult, SystemConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic value of the meta line's `store` field.
const STORE_MAGIC: &str = "dspatch-result-store";
/// Store format version.
const STORE_VERSION: u64 = 1;
/// File name inside the store directory.
pub const STORE_FILE: &str = "results.jsonl";

/// The crate version participating in every [`cell_fingerprint`], so results
/// simulated by older code are never served for newer code (or vice versa).
pub fn code_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Content address of one simulation cell, rendered as 16 hex digits.
///
/// The identity is `(code version, target key, prefetcher selection,
/// normalized config, accesses per workload)`. The config is normalized by
/// zeroing the parallelism knobs — they never change results (bit-identity
/// for any worker count is a tested guarantee of the epoch engine) — and
/// hashed through its `Debug` rendering, which is stable within one crate
/// version; `code_version()` in the identity covers renderings drifting
/// *across* versions.
pub fn cell_fingerprint(
    target_key: &str,
    prefetcher: &str,
    config: &SystemConfig,
    accesses_per_workload: usize,
) -> String {
    cell_fingerprint_sampled(target_key, prefetcher, config, accesses_per_workload, None)
}

/// [`cell_fingerprint`] with an optional sampling plan: sampled and exact
/// results of the same cell get distinct identities (a sampled IPC is an
/// estimate and must never be served where an exact one was asked for).
pub fn cell_fingerprint_sampled(
    target_key: &str,
    prefetcher: &str,
    config: &SystemConfig,
    accesses_per_workload: usize,
    sampling: Option<&crate::sampling::SamplingPlan>,
) -> String {
    let mut normalized = config.clone();
    normalized.parallel_cores = false;
    normalized.parallel_workers = 0;
    normalized.parallel_epoch_cycles = 0;
    let mut identity = format!(
        "v{}|{target_key}|{prefetcher}|{normalized:?}|a{accesses_per_workload}",
        code_version()
    );
    if let Some(plan) = sampling {
        identity.push_str(&plan.fingerprint_suffix());
    }
    format!("{:016x}", fnv1a(identity.as_bytes()))
}

/// The append-only on-disk memo table: an in-memory index over
/// `<dir>/results.jsonl`, with one flushed line per inserted result.
///
/// Opened once per process and shared behind a mutex; the lock is taken per
/// lookup/insert, never on the simulation hot path.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    file: std::fs::File,
    results: HashMap<String, SimResult>,
}

impl ResultStore {
    /// Opens (creating if needed) the store under `dir`, replaying every
    /// existing record into the in-memory index. A torn final line — the
    /// crash signature of an interrupted append — is truncated away;
    /// mid-file damage is a typed error.
    ///
    /// # Errors
    ///
    /// * [`HarnessError::Io`] — the directory or file cannot be created,
    ///   read, or truncated.
    /// * [`HarnessError::Mismatch`] — the file exists but carries a foreign
    ///   magic or an unsupported version (never silently overwritten).
    /// * [`HarnessError::Corrupt`] — a record before the final line is
    ///   unparsable or structurally invalid.
    pub fn open(dir: &Path) -> Result<Self, HarnessError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| HarnessError::io(dir.display().to_string(), "create_dir", &e))?;
        let path = dir.join(STORE_FILE);
        let display = path.display().to_string();
        if !path.exists() {
            let file = std::fs::File::create(&path)
                .map_err(|e| HarnessError::io(display.clone(), "create", &e))?;
            let mut store = Self {
                path,
                file,
                results: HashMap::new(),
            };
            store.write_line(&meta_json().render_compact())?;
            return Ok(store);
        }

        let (results, clean_len) = Self::replay(&path, &display)?;
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| HarnessError::io(display.clone(), "open", &e))?;
        file.set_len(clean_len)
            .map_err(|e| HarnessError::io(display.clone(), "truncate", &e))?;
        file.seek(SeekFrom::Start(clean_len))
            .map_err(|e| HarnessError::io(display.clone(), "seek", &e))?;
        let mut store = Self {
            path,
            file,
            results,
        };
        if clean_len == 0 {
            // The file existed but was empty (or all torn): re-stamp it.
            store.write_line(&meta_json().render_compact())?;
        }
        Ok(store)
    }

    /// Reads every record, returning the index and the clean byte prefix.
    fn replay(
        path: &Path,
        display: &str,
    ) -> Result<(HashMap<String, SimResult>, u64), HarnessError> {
        let file = std::fs::File::open(path)
            .map_err(|e| HarnessError::io(display.to_owned(), "open", &e))?;
        let mut reader = BufReader::new(file);
        let mut results = HashMap::new();
        let mut line = String::new();
        let mut line_no = 0u64;
        let mut offset = 0u64;
        loop {
            line.clear();
            let bytes = reader
                .read_line(&mut line)
                .map_err(|e| HarnessError::io(display.to_owned(), "read", &e))?;
            if bytes == 0 {
                break;
            }
            line_no += 1;
            let parsed = if line.ends_with('\n') {
                parse_store_line(line.trim_end(), line_no, display)
            } else {
                Err(HarnessError::Corrupt {
                    path: display.to_owned(),
                    line: line_no,
                    message: "record has no trailing newline".to_owned(),
                })
            };
            match parsed {
                Ok(StoreRecord::Meta) => offset += bytes as u64,
                Ok(StoreRecord::Result { cell, result }) => {
                    results.insert(cell, *result);
                    offset += bytes as u64;
                }
                Err(error) => {
                    let at_eof = {
                        let probe = reader
                            .fill_buf()
                            .map_err(|e| HarnessError::io(display.to_owned(), "read", &e))?;
                        probe.is_empty()
                    };
                    // A bad FINAL line is a torn append: drop it and keep
                    // the clean prefix. Anything earlier is real damage,
                    // and a foreign meta line always propagates.
                    if at_eof && line_no > 1 && matches!(error, HarnessError::Corrupt { .. }) {
                        break;
                    }
                    return Err(error);
                }
            }
        }
        Ok((results, offset))
    }

    /// Looks up a cell by fingerprint.
    pub fn get(&self, fingerprint: &str) -> Option<&SimResult> {
        self.results.get(fingerprint)
    }

    /// Inserts one result, appending a flushed record; a fingerprint already
    /// present is a no-op (returns `false`, writes nothing), so replaying
    /// overlapping campaigns into one store stays idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure.
    pub fn insert(&mut self, fingerprint: &str, result: &SimResult) -> Result<bool, HarnessError> {
        if self.results.contains_key(fingerprint) {
            return Ok(false);
        }
        let record = Json::obj([(
            "cell",
            Json::obj([
                ("fingerprint", Json::str(fingerprint)),
                ("result", sim_result_to_json(result)),
            ]),
        )]);
        self.write_line(&record.render_compact())?;
        self.results.insert(fingerprint.to_owned(), result.clone());
        Ok(true)
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Iterates over `(fingerprint, result)` pairs in index order
    /// (unspecified, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SimResult)> {
        self.results.iter().map(|(k, v)| (k.as_str(), v))
    }

    fn write_line(&mut self, line: &str) -> Result<(), HarnessError> {
        let display = self.path.display().to_string();
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.flush())
            .map_err(|e| HarnessError::io(display, "write", &e))
    }
}

fn meta_json() -> Json {
    Json::obj([
        ("store", Json::str(STORE_MAGIC)),
        ("version", Json::num(STORE_VERSION as u32)),
    ])
}

enum StoreRecord {
    Meta,
    Result {
        cell: String,
        result: Box<SimResult>,
    },
}

fn parse_store_line(text: &str, line_no: u64, display: &str) -> Result<StoreRecord, HarnessError> {
    let corrupt = |message: String| HarnessError::Corrupt {
        path: display.to_owned(),
        line: line_no,
        message,
    };
    let json = Json::parse(text).map_err(|e| corrupt(e.to_string()))?;
    if line_no == 1 {
        let magic = json.get("store").and_then(Json::as_str).unwrap_or("");
        if magic != STORE_MAGIC {
            return Err(HarnessError::Mismatch {
                path: display.to_owned(),
                field: "store",
                expected: STORE_MAGIC.to_owned(),
                found: magic.to_owned(),
            });
        }
        let version = json.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != STORE_VERSION {
            return Err(HarnessError::Mismatch {
                path: display.to_owned(),
                field: "version",
                expected: STORE_VERSION.to_string(),
                found: version.to_string(),
            });
        }
        return Ok(StoreRecord::Meta);
    }
    let cell = json
        .get("cell")
        .ok_or_else(|| corrupt(format!("unknown record shape: {text}")))?;
    let fingerprint = cell
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("cell record missing string 'fingerprint'".to_owned()))?
        .to_owned();
    let result = cell
        .get("result")
        .ok_or_else(|| corrupt("cell record missing 'result'".to_owned()))
        .and_then(|result| sim_result_from_json(result).map_err(corrupt))?;
    Ok(StoreRecord::Result {
        cell: fingerprint,
        result: Box::new(result),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_sim::{SimulationBuilder, SystemConfig};
    use dspatch_trace::{Trace, TraceRecord};
    use dspatch_types::NullPrefetcher;

    fn tiny_sim() -> SimResult {
        let records: Vec<TraceRecord> = (0..32).map(|i| TraceRecord::load(0x400, i * 64)).collect();
        SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(Trace::new("store-test", records), NullPrefetcher::new())
            .run()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dspatch_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        let sim = tiny_sim();
        let fp = cell_fingerprint(
            "w:test",
            "Kind(Baseline)",
            &SystemConfig::single_thread(),
            32,
        );
        {
            let mut store = ResultStore::open(&dir).expect("open fresh");
            assert!(store.is_empty());
            assert!(store.insert(&fp, &sim).expect("insert"));
            // Idempotent: a second insert writes nothing.
            assert!(!store.insert(&fp, &sim).expect("reinsert"));
            assert_eq!(store.len(), 1);
        }
        let store = ResultStore::open(&dir).expect("reopen");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&fp), Some(&sim));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_but_midfile_damage_is_typed() {
        let dir = temp_dir("torn");
        let sim = tiny_sim();
        let fp_a = cell_fingerprint("w:a", "Kind(Spp)", &SystemConfig::single_thread(), 32);
        let fp_b = cell_fingerprint("w:b", "Kind(Spp)", &SystemConfig::single_thread(), 32);
        {
            let mut store = ResultStore::open(&dir).expect("open");
            store.insert(&fp_a, &sim).expect("insert a");
            store.insert(&fp_b, &sim).expect("insert b");
        }
        let path = dir.join(STORE_FILE);
        let text = std::fs::read_to_string(&path).expect("read");
        // Tear the final record mid-line: the reopen drops it, keeps the rest.
        std::fs::write(&path, &text[..text.len() - 40]).expect("tear");
        let store = ResultStore::open(&dir).expect("reopen torn");
        assert_eq!(store.len(), 1);
        drop(store);
        // Damage a NON-final line: that is real corruption.
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!(
            "{}\n{}\n{}\n",
            lines[0],
            &lines[1][..lines[1].len() / 2],
            lines[2]
        );
        std::fs::write(&path, mangled).expect("mangle");
        let err = ResultStore::open(&dir).expect_err("mid-file damage");
        assert!(
            matches!(err, HarnessError::Corrupt { line: 2, .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_file_is_a_mismatch() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join(STORE_FILE), "{\"store\": \"something-else\"}\n").expect("write");
        let err = ResultStore::open(&dir).expect_err("foreign magic");
        assert!(
            matches!(err, HarnessError::Mismatch { field: "store", .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_parallel_knobs_but_not_the_rest() {
        let base = SystemConfig::single_thread();
        let fp = cell_fingerprint("w:x", "Kind(Dspatch)", &base, 1000);
        let mut parallel = base.clone();
        parallel.parallel_cores = true;
        parallel.parallel_workers = 4;
        parallel.parallel_epoch_cycles = 5000;
        // Worker-count knobs never change results, so they share an address.
        assert_eq!(
            fp,
            cell_fingerprint("w:x", "Kind(Dspatch)", &parallel, 1000)
        );
        let mut other = base.clone();
        other.prefetch_mshrs += 1;
        assert_ne!(fp, cell_fingerprint("w:x", "Kind(Dspatch)", &other, 1000));
        assert_ne!(fp, cell_fingerprint("w:y", "Kind(Dspatch)", &base, 1000));
        assert_ne!(fp, cell_fingerprint("w:x", "Kind(Spp)", &base, 1000));
        assert_ne!(fp, cell_fingerprint("w:x", "Kind(Dspatch)", &base, 2000));
    }
}
