//! Deterministic fault injection for the campaign executor.
//!
//! A [`FaultPlan`] poisons chosen `(target, prefetcher)` cells with panics,
//! I/O errors, or corrupt journal records at fixed points: a fault either
//! fires on every attempt (proving quarantine) or only on the first `n`
//! attempts (proving bounded retry). Plans are immutable and consulted with
//! pure lookups, so a faulted campaign is exactly as deterministic as a
//! clean one — the integration tests in `tests/fault_tolerance.rs` rely on
//! that to assert bit-identical resume output.
//!
//! Production campaigns never construct a plan; the executor's fault hook
//! is `None` and every lookup short-circuits.

/// What kind of failure a poisoned cell produces, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic on every attempt: the cell exhausts its retries and is
    /// quarantined.
    Panic,
    /// Panic on the first `failures` attempts, then succeed: exercises the
    /// bounded retry path.
    TransientPanic {
        /// Attempts that fail before the cell recovers.
        failures: u32,
    },
    /// Fail with a typed I/O error on every attempt (no panic machinery
    /// involved): quarantined as [`crate::error::HarnessError::CellIo`].
    Io,
    /// I/O-fail the first `failures` attempts, then succeed.
    TransientIo {
        /// Attempts that fail before the cell recovers.
        failures: u32,
    },
    /// Let the simulation succeed but make the journal writer emit a
    /// mangled record for it: exercises the resume-time corruption
    /// detection.
    CorruptJournal,
}

/// How a fired fault manifests inside the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The cell panics (caught by the executor's `catch_unwind`).
    Panic,
    /// The cell reports a typed I/O failure.
    Io,
}

impl Fault {
    /// Whether this fault fires on the given 1-based attempt, and how.
    /// `CorruptJournal` never fails the simulation itself.
    pub fn fires_on(&self, attempt: u32) -> Option<FaultKind> {
        match self {
            Fault::Panic => Some(FaultKind::Panic),
            Fault::TransientPanic { failures } => {
                (attempt <= *failures).then_some(FaultKind::Panic)
            }
            Fault::Io => Some(FaultKind::Io),
            Fault::TransientIo { failures } => (attempt <= *failures).then_some(FaultKind::Io),
            Fault::CorruptJournal => None,
        }
    }
}

/// One poisoned cell: the fault fires for every job whose target name and
/// prefetcher label match (any config).
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultEntry {
    target: String,
    prefetcher: String,
    fault: Fault,
}

/// An immutable set of poisoned cells, consulted by the executor (per
/// attempt) and the journal writer (per record).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Poisons the `(target, prefetcher)` cell. `prefetcher` is the display
    /// label (e.g. `"SPP"`, `"DSPatch+SPP"`, `"Baseline"`). Later entries
    /// for the same cell take precedence.
    pub fn poison(
        mut self,
        target: impl Into<String>,
        prefetcher: impl Into<String>,
        fault: Fault,
    ) -> Self {
        self.entries.push(FaultEntry {
            target: target.into(),
            prefetcher: prefetcher.into(),
            fault,
        });
        self
    }

    /// The fault poisoning this cell, if any.
    pub fn fault_for(&self, target: &str, prefetcher: &str) -> Option<Fault> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.target == target && e.prefetcher == prefetcher)
            .map(|e| e.fault)
    }

    /// Whether this fault plan fires on the given 1-based attempt of a
    /// cell, and how.
    pub fn arm(&self, target: &str, prefetcher: &str, attempt: u32) -> Option<FaultKind> {
        self.fault_for(target, prefetcher)
            .and_then(|fault| fault.fires_on(attempt))
    }

    /// Whether the journal record for this cell should be mangled.
    pub fn corrupts_journal(&self, target: &str, prefetcher: &str) -> bool {
        matches!(
            self.fault_for(target, prefetcher),
            Some(Fault::CorruptJournal)
        )
    }

    /// Whether the plan poisons anything at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_deterministically_per_attempt() {
        assert_eq!(Fault::Panic.fires_on(1), Some(FaultKind::Panic));
        assert_eq!(Fault::Panic.fires_on(99), Some(FaultKind::Panic));
        let transient = Fault::TransientPanic { failures: 2 };
        assert_eq!(transient.fires_on(1), Some(FaultKind::Panic));
        assert_eq!(transient.fires_on(2), Some(FaultKind::Panic));
        assert_eq!(transient.fires_on(3), None);
        assert_eq!(
            Fault::TransientIo { failures: 1 }.fires_on(1),
            Some(FaultKind::Io)
        );
        assert_eq!(Fault::TransientIo { failures: 1 }.fires_on(2), None);
        assert_eq!(Fault::CorruptJournal.fires_on(1), None);
    }

    #[test]
    fn plans_match_on_target_and_prefetcher() {
        let plan = FaultPlan::new()
            .poison("stream_1", "SPP", Fault::Panic)
            .poison("stream_1", "Baseline", Fault::Io);
        assert_eq!(plan.fault_for("stream_1", "SPP"), Some(Fault::Panic));
        assert_eq!(plan.fault_for("stream_1", "Baseline"), Some(Fault::Io));
        assert_eq!(plan.fault_for("stream_2", "SPP"), None);
        assert_eq!(plan.arm("stream_1", "SPP", 1), Some(FaultKind::Panic));
        assert_eq!(plan.arm("stream_2", "SPP", 1), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn later_entries_override_and_corruption_is_queryable() {
        let plan = FaultPlan::new().poison("w", "SPP", Fault::Panic).poison(
            "w",
            "SPP",
            Fault::CorruptJournal,
        );
        assert_eq!(plan.fault_for("w", "SPP"), Some(Fault::CorruptJournal));
        assert!(plan.corrupts_journal("w", "SPP"));
        assert!(!plan.corrupts_journal("w", "Baseline"));
        assert_eq!(
            plan.arm("w", "SPP", 1),
            None,
            "corruption never fails the sim"
        );
    }
}
