//! Experiment harness reproducing every table and figure of the DSPatch
//! paper's evaluation.
//!
//! Each `figNN_*` / `tableN_*` function in [`experiments`] regenerates the
//! data behind one figure or table: it builds the workload suite
//! (`dspatch-trace`), runs the simulator (`dspatch-sim`) with the relevant
//! prefetcher line-up (`dspatch-prefetchers`, `dspatch`), and returns a
//! structured result that renders to an ASCII table via
//! [`report::Table`]. The [`runner::RunScale`] parameter controls how many
//! workloads and how many accesses per workload are simulated, so the same
//! code scales from a seconds-long smoke run (`RunScale::quick()`) to a
//! laptop-scale full sweep (`RunScale::full()`).
//!
//! # Example
//!
//! ```
//! use dspatch_harness::{experiments, runner::RunScale};
//!
//! let scale = RunScale::smoke();
//! let table1 = experiments::table1_storage();
//! assert!(table1.render().contains("SPT"));
//! let fig11 = experiments::fig11_delta_and_compression(&scale);
//! assert!(fig11.plus_minus_one_fraction > 0.0);
//! ```

pub mod experiments;
pub mod perf;
pub mod report;
pub mod runner;

pub use report::Table;
pub use runner::{PrefetcherKind, RunScale};
