//! Experiment harness reproducing every table and figure of the DSPatch
//! paper's evaluation.
//!
//! The heart of the crate is the [`campaign`] module: a declarative
//! [`CampaignSpec`] describes a grid of (workload-or-mix × prefetcher ×
//! system-config) cells, and one shared-queue parallel executor runs the grid with
//! every baseline simulation **memoized** per (target, config). Each
//! `figNN_*` / `tableN_*` function in [`experiments`] is a thin spec over
//! that engine preserving its original signature, the [`figures`] registry
//! names them all, and the `dspatch-lab` binary runs any named figure, a
//! custom JSON spec file, or an external trace file (`--trace-file`,
//! streamed with O(1) memory). The [`runner::RunScale`] parameter controls
//! how many workloads and how many accesses per workload are simulated, so
//! the same code scales from a seconds-long smoke run (`RunScale::smoke()`)
//! to a laptop-scale full sweep (`RunScale::full()`) — and because every
//! workload streams into the machine as a lazy
//! [`dspatch_trace::SynthSource`], memory stays flat however many accesses
//! a scale asks for.
//!
//! # Example
//!
//! ```
//! use dspatch_harness::{experiments, runner::RunScale};
//!
//! let scale = RunScale::smoke();
//! let table1 = experiments::table1_storage();
//! assert!(table1.render().contains("SPT"));
//! let fig11 = experiments::fig11_delta_and_compression(&scale);
//! assert!(fig11.plus_minus_one_fraction > 0.0);
//! ```

// Harness paths classify failures into `HarnessError` instead of panicking;
// tests are exempt (assertions are their job).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analytics;
pub mod campaign;
pub mod error;
pub mod experiments;
pub mod faults;
pub mod figures;
pub mod journal;
pub mod json;
pub mod perf;
pub mod report;
pub mod results;
pub mod runner;
pub mod sampling;
pub mod store;

pub use analytics::{ColumnarView, Query, QueryOutput};
pub use campaign::{
    CampaignResult, CampaignSpec, CellFailure, CellOutcome, CellSpec, ExecOptions, ProgressEvent,
    ProgressSink, RetryPolicy, SharedStore,
};
pub use error::{ErrorClass, HarnessError};
pub use faults::{Fault, FaultPlan};
pub use figures::FigureId;
pub use journal::{JournalMeta, JournalWriter};
pub use json::{Json, JsonError, JsonErrorKind};
pub use report::Table;
pub use results::ResultRow;
pub use runner::{PrefetcherKind, RunScale};
pub use sampling::SamplingPlan;
pub use store::ResultStore;
