//! One function per table and figure of the paper's evaluation.
//!
//! Every function takes a [`RunScale`] and returns a structured result with
//! a `to_table()` (or `render()`) method producing the same rows or series
//! the paper plots. Since the Campaign API redesign each simulation-backed
//! figure is a *thin declarative spec* over [`crate::campaign`]: the
//! function builds a [`CampaignSpec`] grid, the shared executor runs it
//! (shared-queue parallelism, baselines memoized per (target, config)),
//! and the function aggregates the resulting speedups into its
//! figure-shaped report. The absolute numbers come from the
//! synthetic-workload substitution documented in `DESIGN.md`;
//! `EXPERIMENTS.md` records the measured values next to the paper's.

use crate::campaign::{
    run_campaign, CampaignResult, CampaignSpec, CellSpec, ConfigSpec, PrefetcherSel, TargetSelector,
};
use crate::report::{percent, Table};
use crate::runner::{geomean, PrefetcherKind, RunScale};
use dspatch::{CompressedPattern, DsPatch, DsPatchConfig, SpatialPattern, StorageBreakdown};
use dspatch_sim::{DramConfig, DramSpeedGrade, SystemConfig};
use dspatch_trace::workloads::{category_suite, suite, WorkloadCategory};
use dspatch_trace::TraceSource;
use dspatch_types::{Prefetcher, LINES_PER_PAGE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

fn sels(kinds: &[PrefetcherKind]) -> Vec<PrefetcherSel> {
    kinds.iter().copied().map(PrefetcherSel::Kind).collect()
}

fn run_figure_spec(spec: &CampaignSpec, scale: &RunScale) -> CampaignResult {
    run_campaign(spec, scale)
        .unwrap_or_else(|error| unreachable!("built-in figure spec rejected: {error}"))
}

/// Performance of several prefetchers per workload category plus the
/// geometric mean (the shape of Figures 4, 12, 14 and 17).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryPerformance {
    /// Figure name used as the table caption.
    pub figure: String,
    /// Prefetchers compared, in column order.
    pub kinds: Vec<PrefetcherKind>,
    /// Per-category performance delta over baseline (fraction), one row per
    /// category, plus a final "GEOMEAN" row.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl CategoryPerformance {
    /// Renders the figure as a table.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["Category".to_owned()];
        headers.extend(self.kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new(self.figure.clone(), headers);
        for (label, deltas) in &self.rows {
            let mut row = vec![label.clone()];
            row.extend(deltas.iter().map(|d| percent(*d)));
            table.add_row(row);
        }
        table
    }

    /// Returns the geometric-mean delta of one prefetcher kind.
    pub fn geomean_delta(&self, kind: PrefetcherKind) -> Option<f64> {
        let column = self.kinds.iter().position(|k| *k == kind)?;
        self.rows
            .iter()
            .find(|(label, _)| label == "GEOMEAN")
            .map(|(_, deltas)| deltas[column])
    }
}

/// One campaign cell per category; the engine memoizes each workload's
/// baseline across all `kinds` columns (previously simulated once per kind).
fn category_performance(
    figure: &str,
    kinds: &[PrefetcherKind],
    config: ConfigSpec,
    scale: &RunScale,
) -> CategoryPerformance {
    let spec = CampaignSpec {
        name: figure.to_owned(),
        scale: None,
        cells: WorkloadCategory::ALL
            .into_iter()
            .map(|category| CellSpec {
                label: category.label().to_owned(),
                targets: TargetSelector::Category(category),
                prefetchers: sels(kinds),
                config,
                baseline: true,
            })
            .collect(),
    };
    let result = run_figure_spec(&spec, scale);
    let mut rows = Vec::new();
    let mut per_kind_all: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for category in WorkloadCategory::ALL {
        if result.rows_for_cell(category.label()).next().is_none() {
            continue;
        }
        let mut deltas = Vec::with_capacity(kinds.len());
        for (k, kind) in kinds.iter().enumerate() {
            let speedups = result.speedups(category.label(), kind.label());
            per_kind_all[k].extend(speedups.iter().copied());
            deltas.push(geomean(&speedups) - 1.0);
        }
        rows.push((category.label().to_owned(), deltas));
    }
    let geomean_row: Vec<f64> = per_kind_all.iter().map(|s| geomean(s) - 1.0).collect();
    rows.push(("GEOMEAN".to_owned(), geomean_row));
    CategoryPerformance {
        figure: figure.to_owned(),
        kinds: kinds.to_vec(),
        rows,
    }
}

/// Figure 4: BOP, SMS and SPP per category over the baseline (1-channel
/// DDR4-2133).
pub fn fig4_baseline_prefetchers(scale: &RunScale) -> CategoryPerformance {
    category_performance(
        "Figure 4: BOP / SMS / SPP performance delta over baseline",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
        ],
        ConfigSpec::single_thread(),
        scale,
    )
}

/// Figure 12: the full single-thread line-up including DSPatch and
/// DSPatch+SPP.
pub fn fig12_single_thread(scale: &RunScale) -> CategoryPerformance {
    category_performance(
        "Figure 12: single-thread performance delta over baseline",
        &PrefetcherKind::standalone_lineup(),
        ConfigSpec::single_thread(),
        scale,
    )
}

/// Figure 14: adjunct prefetchers on top of SPP.
pub fn fig14_adjuncts(scale: &RunScale) -> CategoryPerformance {
    category_performance(
        "Figure 14: adjunct prefetchers to SPP",
        &PrefetcherKind::adjunct_lineup(),
        ConfigSpec::single_thread(),
        scale,
    )
}

/// One point of a bandwidth-scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthPoint {
    /// DRAM configuration label ("1ch-2133").
    pub dram: String,
    /// Peak bandwidth in GB/s (the x axis of Figures 1, 6 and 15).
    pub peak_gbps: f64,
    /// Per-prefetcher performance delta over the baseline at this point.
    pub deltas: Vec<(PrefetcherKind, f64)>,
}

/// A bandwidth-scaling sweep (Figures 1, 6 and 15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthScaling {
    /// Figure name.
    pub figure: String,
    /// One entry per DRAM configuration, in increasing peak bandwidth.
    pub points: Vec<BandwidthPoint>,
}

impl BandwidthScaling {
    /// Renders the sweep as a table (rows = DRAM configs, columns =
    /// prefetchers).
    pub fn to_table(&self) -> Table {
        let kinds: Vec<PrefetcherKind> = self
            .points
            .first()
            .map(|p| p.deltas.iter().map(|(k, _)| *k).collect())
            .unwrap_or_default();
        let mut headers = vec!["DRAM".to_owned(), "Peak GB/s".to_owned()];
        headers.extend(kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new(self.figure.clone(), headers);
        for point in &self.points {
            let mut row = vec![point.dram.clone(), format!("{:.1}", point.peak_gbps)];
            row.extend(point.deltas.iter().map(|(_, d)| percent(*d)));
            table.add_row(row);
        }
        table
    }

    /// Delta of `kind` at the lowest- and highest-bandwidth points, used to
    /// check scaling trends.
    pub fn scaling_of(&self, kind: PrefetcherKind) -> Option<(f64, f64)> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        let pick = |p: &BandwidthPoint| p.deltas.iter().find(|(k, _)| *k == kind).map(|(_, d)| *d);
        Some((pick(first)?, pick(last)?))
    }
}

/// One cell per DRAM configuration over the memory-intensive subset. The
/// engine memoizes each (workload, DRAM config) baseline across all kinds.
fn bandwidth_scaling(figure: &str, kinds: &[PrefetcherKind], scale: &RunScale) -> BandwidthScaling {
    let sweep = SystemConfig::bandwidth_sweep();
    let spec = CampaignSpec {
        name: figure.to_owned(),
        scale: None,
        cells: sweep
            .iter()
            .map(|&(channels, speed)| CellSpec {
                label: DramConfig::with_speed(channels, speed).label(),
                targets: TargetSelector::MemoryIntensive,
                prefetchers: sels(kinds),
                config: ConfigSpec::single_thread().with_dram(channels, speed),
                baseline: true,
            })
            .collect(),
    };
    let result = run_figure_spec(&spec, scale);
    let mut points: Vec<BandwidthPoint> = sweep
        .iter()
        .map(|&(channels, speed)| {
            let dram = DramConfig::with_speed(channels, speed);
            let label = dram.label();
            let deltas = kinds
                .iter()
                .map(|kind| {
                    let speedups = result.speedups(&label, kind.label());
                    (*kind, geomean(&speedups) - 1.0)
                })
                .collect();
            BandwidthPoint {
                dram: label,
                peak_gbps: dram.peak_bandwidth_gbps(),
                deltas,
            }
        })
        .collect();
    points.sort_by(|a, b| a.peak_gbps.total_cmp(&b.peak_gbps));
    BandwidthScaling {
        figure: figure.to_owned(),
        points,
    }
}

/// Figure 1: BOP / SMS / SPP performance as peak DRAM bandwidth scales.
pub fn fig1_bandwidth_scaling_baselines(scale: &RunScale) -> BandwidthScaling {
    bandwidth_scaling(
        "Figure 1: prefetcher performance scaling with DRAM bandwidth",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
        ],
        scale,
    )
}

/// Figure 6: adds the bandwidth-enhanced eSPP and eBOP variants.
pub fn fig6_bandwidth_scaling_enhanced(scale: &RunScale) -> BandwidthScaling {
    bandwidth_scaling(
        "Figure 6: bandwidth scaling including eSPP and eBOP",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
            PrefetcherKind::Espp,
            PrefetcherKind::Ebop,
        ],
        scale,
    )
}

/// Figure 15: adds eBOP+SPP and DSPatch+SPP.
pub fn fig15_bandwidth_scaling_dspatch(scale: &RunScale) -> BandwidthScaling {
    bandwidth_scaling(
        "Figure 15: performance scaling with DRAM bandwidth (DSPatch+SPP)",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
            PrefetcherKind::EbopPlusSpp,
            PrefetcherKind::DspatchPlusSpp,
        ],
        scale,
    )
}

/// Figure 5: SMS performance as its pattern-history table shrinks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmsStorageSweep {
    /// `(PHT entries, storage KB, performance delta over baseline)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

impl SmsStorageSweep {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 5: SMS performance vs pattern-history-table size",
            vec![
                "PHT entries".into(),
                "Storage (KB)".into(),
                "Perf delta".into(),
            ],
        );
        for (entries, kb, delta) in &self.rows {
            table.add_row(vec![
                entries.to_string(),
                format!("{kb:.1}"),
                percent(*delta),
            ]);
        }
        table
    }
}

/// Figure 5: sweep the SMS PHT from 16 K entries down to 256. One campaign
/// cell whose four columns are parameterized [`PrefetcherSel::SmsPht`]
/// variants; each workload's baseline simulates once for all four sweep
/// points (previously once per point).
pub fn fig5_sms_storage_sweep(scale: &RunScale) -> SmsStorageSweep {
    use dspatch_prefetchers::{SmsConfig, SmsPrefetcher};
    const PHT_SIZES: [usize; 4] = [16 * 1024, 4 * 1024, 1024, 256];
    let spec = CampaignSpec::single_cell(
        "Figure 5: SMS storage sweep",
        CellSpec {
            label: "suite".to_owned(),
            targets: TargetSelector::Suite,
            prefetchers: PHT_SIZES.into_iter().map(PrefetcherSel::SmsPht).collect(),
            config: ConfigSpec::single_thread(),
            baseline: true,
        },
    );
    let result = run_figure_spec(&spec, scale);
    let rows = PHT_SIZES
        .into_iter()
        .map(|entries| {
            let storage_kb = SmsPrefetcher::new(SmsConfig::with_pht_entries(entries)).storage_bits()
                as f64
                / 8.0
                / 1024.0;
            let speedups = result.speedups("suite", &PrefetcherSel::SmsPht(entries).label());
            (entries, storage_kb, geomean(&speedups) - 1.0)
        })
        .collect();
    SmsStorageSweep { rows }
}

/// Figure 11: delta-occurrence distribution and the misprediction rate
/// induced by 128 B-granularity pattern compression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaCompressionStudy {
    /// Fraction of consecutive-access deltas equal to +1 or -1.
    pub plus_minus_one_fraction: f64,
    /// Fraction of deltas equal to +2 or +3.
    pub small_delta_fraction: f64,
    /// Histogram of per-page compression misprediction rates, bucketed as in
    /// Figure 11(b): exactly 0 %, (0, 12.5 %], (12.5, 25 %], (25, 37 %],
    /// (37, 50 %), exactly 50 %.
    pub misprediction_buckets: [f64; 6],
}

impl DeltaCompressionStudy {
    /// Renders both panels as one table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 11: delta distribution and 128B-compression mispredictions",
            vec!["Metric".into(), "Value".into()],
        );
        table.add_row(vec![
            "+1/-1 delta share".into(),
            percent(self.plus_minus_one_fraction),
        ]);
        table.add_row(vec![
            "+2/+3 delta share".into(),
            percent(self.small_delta_fraction),
        ]);
        let labels = ["0%", "0-12.5%", "12.5-25%", "25-37%", "37-50%", "50%"];
        for (label, value) in labels.iter().zip(self.misprediction_buckets.iter()) {
            table.add_row(vec![
                format!("compression misprediction {label}"),
                percent(*value),
            ]);
        }
        table
    }
}

/// Figure 11: pure trace analysis, no simulation (and therefore the one
/// figure that bypasses the campaign executor — there are no sims to run).
pub fn fig11_delta_and_compression(scale: &RunScale) -> DeltaCompressionStudy {
    let workloads = scale.select_workloads(suite());
    let mut delta_total = 0u64;
    let mut delta_unit = 0u64;
    let mut delta_small = 0u64;
    let mut buckets = [0u64; 6];
    let mut pages_total = 0u64;
    for workload in &workloads {
        // The analysis is a single forward pass, so the workload streams
        // through it record by record — no trace is materialized.
        let mut source = workload.source(scale.accesses_per_workload);
        // Per-page delta statistics and access patterns.
        let mut last_offset: BTreeMap<u64, usize> = BTreeMap::new();
        let mut patterns: BTreeMap<u64, SpatialPattern> = BTreeMap::new();
        while let Some(record) = source.next_record() {
            let page = record.addr.page().as_u64();
            let offset = record.addr.page_line_offset();
            if let Some(previous) = last_offset.insert(page, offset) {
                let delta = offset as i64 - previous as i64;
                if delta != 0 {
                    delta_total += 1;
                    if delta.abs() == 1 {
                        delta_unit += 1;
                    } else if delta == 2 || delta == 3 {
                        delta_small += 1;
                    }
                }
            }
            patterns.entry(page).or_default().set(offset);
        }
        for pattern in patterns.values() {
            let real = pattern.popcount();
            if real == 0 {
                continue;
            }
            let mispredicted = CompressedPattern::compression_mispredictions(*pattern);
            let predicted = pattern.compress().decompress().popcount();
            let rate = mispredicted as f64 / predicted.max(1) as f64;
            pages_total += 1;
            let bucket = if mispredicted == 0 {
                0
            } else if rate <= 0.125 {
                1
            } else if rate <= 0.25 {
                2
            } else if rate <= 0.37 {
                3
            } else if rate < 0.5 {
                4
            } else {
                5
            };
            buckets[bucket] += 1;
        }
    }
    let fraction = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    DeltaCompressionStudy {
        plus_minus_one_fraction: fraction(delta_unit, delta_total),
        small_delta_fraction: fraction(delta_small, delta_total),
        misprediction_buckets: std::array::from_fn(|i| fraction(buckets[i], pages_total)),
    }
}

/// Figure 13: per-workload speedups on the 42 memory-intensive workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryIntensiveLine {
    /// Prefetchers plotted.
    pub kinds: Vec<PrefetcherKind>,
    /// `(workload, per-kind delta)` rows sorted by the last kind's delta.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl MemoryIntensiveLine {
    /// Renders the line graph data as a table.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["Workload".to_owned()];
        headers.extend(self.kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new("Figure 13: memory-intensive workloads", headers);
        for (name, deltas) in &self.rows {
            let mut row = vec![name.clone()];
            row.extend(deltas.iter().map(|d| percent(*d)));
            table.add_row(row);
        }
        table
    }
}

/// Figure 13: SMS, SPP and DSPatch+SPP on the memory-intensive subset.
pub fn fig13_memory_intensive(scale: &RunScale) -> MemoryIntensiveLine {
    let kinds = vec![
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let spec = CampaignSpec::single_cell(
        "Figure 13: memory-intensive workloads",
        CellSpec {
            label: "memory-intensive".to_owned(),
            targets: TargetSelector::MemoryIntensive,
            prefetchers: sels(&kinds),
            config: ConfigSpec::single_thread(),
            baseline: true,
        },
    );
    let result = run_figure_spec(&spec, scale);
    let names: Vec<String> = result
        .rows_for_cell("memory-intensive")
        .filter(|row| row.prefetcher == kinds[0].label())
        .map(|row| row.target.clone())
        .collect();
    let per_kind: Vec<Vec<f64>> = kinds
        .iter()
        .map(|kind| result.speedups("memory-intensive", kind.label()))
        .collect();
    let mut rows: Vec<(String, Vec<f64>)> = names
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            (
                name,
                per_kind.iter().map(|speedups| speedups[i] - 1.0).collect(),
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        let last_a = a.1.last().copied().unwrap_or(0.0);
        let last_b = b.1.last().copied().unwrap_or(0.0);
        last_a.total_cmp(&last_b)
    });
    MemoryIntensiveLine { kinds, rows }
}

/// Figure 16: covered / uncovered / mispredicted fractions of L2 accesses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// `(category, prefetcher, covered, uncovered, mispredicted)` rows.
    pub rows: Vec<(String, PrefetcherKind, f64, f64, f64)>,
}

impl CoverageReport {
    /// Renders the coverage report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 16: coverage and mispredictions (fractions of L2 accesses)",
            vec![
                "Category".into(),
                "Prefetcher".into(),
                "Covered".into(),
                "Uncovered".into(),
                "Mispredicted".into(),
            ],
        );
        for (category, kind, covered, uncovered, mispredicted) in &self.rows {
            table.add_row(vec![
                category.clone(),
                kind.label().to_owned(),
                percent(*covered),
                percent(*uncovered),
                percent(*mispredicted),
            ]);
        }
        table
    }

    /// Average (coverage, misprediction) fractions of one prefetcher kind.
    pub fn average_of(&self, kind: PrefetcherKind) -> Option<(f64, f64)> {
        let rows: Vec<_> = self.rows.iter().filter(|(_, k, ..)| *k == kind).collect();
        if rows.is_empty() {
            return None;
        }
        let coverage = rows.iter().map(|(_, _, c, ..)| *c).sum::<f64>() / rows.len() as f64;
        let mispredictions = rows.iter().map(|(.., m)| *m).sum::<f64>() / rows.len() as f64;
        Some((coverage, mispredictions))
    }
}

/// Figure 16: coverage and misprediction fractions per category for the
/// standalone line-up plus DSPatch+SPP. Coverage needs raw statistics, not
/// speedups, so the cells run without baselines.
pub fn fig16_coverage(scale: &RunScale) -> CoverageReport {
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let spec = CampaignSpec {
        name: "Figure 16: coverage and mispredictions".to_owned(),
        scale: None,
        cells: WorkloadCategory::ALL
            .into_iter()
            .map(|category| CellSpec {
                label: category.label().to_owned(),
                targets: TargetSelector::Category(category),
                prefetchers: sels(&kinds),
                config: ConfigSpec::single_thread(),
                baseline: false,
            })
            .collect(),
    };
    let result = run_figure_spec(&spec, scale);
    let mut rows = Vec::new();
    for category in WorkloadCategory::ALL {
        for kind in kinds {
            let mut acc = dspatch_sim::PrefetchAccounting::default();
            for row in result
                .rows_for_cell(category.label())
                .filter(|row| row.prefetcher == kind.label())
            {
                acc.merge(&result.sim_of(row).total_accounting());
            }
            rows.push((
                category.label().to_owned(),
                kind,
                acc.coverage(),
                acc.uncovered_fraction(),
                acc.misprediction_fraction(),
            ));
        }
    }
    CoverageReport { rows }
}

/// Figures 17 and 18: multi-programmed performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiProgrammedReport {
    /// `(configuration label, prefetcher, delta over baseline)` rows.
    pub rows: Vec<(String, PrefetcherKind, f64)>,
}

impl MultiProgrammedReport {
    /// Renders the report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Multi-programmed performance delta over baseline",
            vec![
                "Configuration".into(),
                "Prefetcher".into(),
                "Perf delta".into(),
            ],
        );
        for (label, kind, delta) in &self.rows {
            table.add_row(vec![
                label.clone(),
                kind.label().to_owned(),
                percent(*delta),
            ]);
        }
        table
    }

    /// The delta of `kind` under `label`.
    pub fn delta_of(&self, label: &str, kind: PrefetcherKind) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, k, _)| l == label && *k == kind)
            .map(|(_, _, d)| *d)
    }
}

/// Aggregates one mix cell of a multi-programmed campaign into the
/// per-kind geomean rows of Figures 17/18.
fn mix_rows(
    result: &CampaignResult,
    cell: &str,
    kinds: &[PrefetcherKind],
) -> Vec<(String, PrefetcherKind, f64)> {
    kinds
        .iter()
        .map(|kind| {
            let speedups = result.speedups(cell, kind.label());
            (cell.to_owned(), *kind, geomean(&speedups) - 1.0)
        })
        .collect()
}

/// Figure 17: homogeneous 4-core mixes on the dual-channel DDR4-2133 system.
/// Mixes run through the same shared-queue parallel executor as single-thread
/// workloads (they were fully serial before the Campaign redesign).
pub fn fig17_homogeneous(scale: &RunScale) -> MultiProgrammedReport {
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let label = "homogeneous DDR4-2133";
    let spec = CampaignSpec::single_cell(
        "Figure 17: homogeneous multi-programmed mixes",
        CellSpec {
            label: label.to_owned(),
            targets: TargetSelector::HomogeneousMixes { cores: 4 },
            prefetchers: sels(&kinds),
            config: ConfigSpec::multi_programmed(),
            baseline: true,
        },
    );
    let result = run_figure_spec(&spec, scale);
    MultiProgrammedReport {
        rows: mix_rows(&result, label, &kinds),
    }
}

/// Figure 18: homogeneous and heterogeneous mixes at DDR4-2133 and DDR4-2400.
pub fn fig18_mixes_and_bandwidth(scale: &RunScale) -> MultiProgrammedReport {
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let speeds = [DramSpeedGrade::Ddr4_2133, DramSpeedGrade::Ddr4_2400];
    let mut cells = Vec::new();
    for speed in speeds {
        let config = ConfigSpec::multi_programmed().with_dram(2, speed);
        cells.push(CellSpec {
            label: format!("homogeneous DDR4-{}", speed.label()),
            targets: TargetSelector::HomogeneousMixes { cores: 4 },
            prefetchers: sels(&kinds),
            config,
            baseline: true,
        });
        cells.push(CellSpec {
            label: format!("heterogeneous DDR4-{}", speed.label()),
            targets: TargetSelector::HeterogeneousMixes {
                count: 75,
                cores: 4,
                seed: 0xD5,
            },
            prefetchers: sels(&kinds),
            config,
            baseline: true,
        });
    }
    let spec = CampaignSpec {
        name: "Figure 18: mixes across DRAM speeds".to_owned(),
        scale: None,
        cells,
    };
    let result = run_figure_spec(&spec, scale);
    let mut rows = Vec::new();
    for cell in &spec.cells {
        rows.extend(mix_rows(&result, &cell.label, &kinds));
    }
    MultiProgrammedReport { rows }
}

/// Figure 19: the accuracy-biased-pattern ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// `(variant, delta over baseline)` rows.
    pub rows: Vec<(PrefetcherKind, f64)>,
}

impl AblationReport {
    /// Renders the report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 19: contribution of the accuracy-biased pattern",
            vec!["Variant".into(), "Perf delta".into()],
        );
        for (kind, delta) in &self.rows {
            table.add_row(vec![kind.label().to_owned(), percent(*delta)]);
        }
        table
    }

    /// The delta of one variant.
    pub fn delta_of(&self, kind: PrefetcherKind) -> Option<f64> {
        self.rows.iter().find(|(k, _)| *k == kind).map(|(_, d)| *d)
    }
}

/// Figure 19: full DSPatch vs AlwaysCovP vs ModCovP (as adjuncts to SPP), on
/// the memory-intensive subset with half the DRAM bandwidth per core so the
/// bandwidth-driven selection matters.
pub fn fig19_ablation(scale: &RunScale) -> AblationReport {
    let kinds = [
        PrefetcherKind::DspatchPlusSpp,
        PrefetcherKind::AlwaysCovpPlusSpp,
        PrefetcherKind::ModCovpPlusSpp,
    ];
    let spec = CampaignSpec::single_cell(
        "Figure 19: accuracy-biased-pattern ablation",
        CellSpec {
            label: "ablation".to_owned(),
            targets: TargetSelector::MemoryIntensive,
            prefetchers: sels(&kinds),
            config: ConfigSpec::single_thread().with_dram(1, DramSpeedGrade::Ddr4_1600),
            baseline: true,
        },
    );
    let result = run_figure_spec(&spec, scale);
    let rows = kinds
        .iter()
        .map(|kind| {
            let speedups = result.speedups("ablation", kind.label());
            (*kind, geomean(&speedups) - 1.0)
        })
        .collect();
    AblationReport { rows }
}

/// Figure 20: pollution caused by an aggressive, inaccurate streamer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PollutionReport {
    /// `(LLC size label, NoReuse, PrefetchedBeforeUse, BadPollution)` rows,
    /// fractions of all classified victims.
    pub rows: Vec<(String, f64, f64, f64)>,
}

impl PollutionReport {
    /// Renders the report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 20: breakdown of LLC victims evicted by prefetches",
            vec![
                "LLC size".into(),
                "NoReuse".into(),
                "PrefetchedBeforeUse".into(),
                "BadPollution".into(),
            ],
        );
        for (label, a, b, c) in &self.rows {
            table.add_row(vec![label.clone(), percent(*a), percent(*b), percent(*c)]);
        }
        table
    }
}

/// Figure 20: run the streamer on the workload suite with 8, 4 and 2 MB LLCs
/// and classify the victims of its prefetch fills. Pure-statistics cells:
/// no baselines are simulated.
pub fn fig20_pollution(scale: &RunScale) -> PollutionReport {
    const LLC_SIZES: [(&str, usize); 3] = [("8MB", 8 << 20), ("4MB", 4 << 20), ("2MB", 2 << 20)];
    let spec = CampaignSpec {
        name: "Figure 20: prefetch pollution".to_owned(),
        scale: None,
        cells: LLC_SIZES
            .into_iter()
            .map(|(label, bytes)| CellSpec {
                label: label.to_owned(),
                targets: TargetSelector::MemoryIntensive,
                prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Streamer)],
                config: ConfigSpec::single_thread().with_llc_bytes(bytes),
                baseline: false,
            })
            .collect(),
    };
    let result = run_figure_spec(&spec, scale);
    let rows = LLC_SIZES
        .into_iter()
        .map(|(label, _)| {
            let mut totals = dspatch_sim::PollutionBreakdown::default();
            for row in result.rows_for_cell(label) {
                let pollution = &result.sim_of(row).pollution;
                totals.no_reuse += pollution.no_reuse;
                totals.prefetched_before_use += pollution.prefetched_before_use;
                totals.bad_pollution += pollution.bad_pollution;
            }
            let (a, b, c) = totals.fractions();
            (label.to_owned(), a, b, c)
        })
        .collect();
    PollutionReport { rows }
}

/// Table 1: DSPatch storage budget.
pub fn table1_storage() -> Table {
    let breakdown = StorageBreakdown::for_config(&DsPatchConfig::default());
    let mut table = Table::new(
        "Table 1: DSPatch storage overhead",
        vec![
            "Structure".into(),
            "Entries".into(),
            "Bits/entry".into(),
            "Total bits".into(),
        ],
    );
    table.add_row(vec![
        "PB".into(),
        breakdown.pb_entries.to_string(),
        breakdown.pb_entry_bits.to_string(),
        breakdown.pb_bits().to_string(),
    ]);
    table.add_row(vec![
        "SPT".into(),
        breakdown.spt_entries.to_string(),
        breakdown.spt_entry_bits.to_string(),
        breakdown.spt_bits().to_string(),
    ]);
    table.add_row(vec![
        "Total".into(),
        String::new(),
        String::new(),
        format!(
            "{} ({:.1} KB)",
            breakdown.total_bits(),
            breakdown.total_kib()
        ),
    ]);
    table
}

/// Table 3: storage of every evaluated prefetcher.
pub fn table3_prefetcher_storage() -> Table {
    let mut table = Table::new(
        "Table 3: evaluated prefetcher configurations",
        vec!["Prefetcher".into(), "Storage (KB)".into()],
    );
    for kind in [
        PrefetcherKind::Bop,
        PrefetcherKind::Dspatch,
        PrefetcherKind::Spp,
        PrefetcherKind::SmsIso,
        PrefetcherKind::Sms,
    ] {
        let kb = kind.build().storage_bits() as f64 / 8.0 / 1024.0;
        table.add_row(vec![kind.label().to_owned(), format!("{kb:.1}")]);
    }
    table
}

/// Standalone DSPatch model statistics useful for debugging experiments
/// (selection decisions, SPT occupancy) on one workload.
pub fn dspatch_introspection(scale: &RunScale) -> Table {
    let workloads = scale.select_workloads(category_suite(WorkloadCategory::Cloud));
    let workload = &workloads[0];
    let mut source = workload.source(scale.accesses_per_workload);
    let mut prefetcher = DsPatch::new(DsPatchConfig::default());
    let ctx = dspatch_types::PrefetchContext::default();
    let mut sink = dspatch_types::PrefetchSink::new();
    while let Some(record) = source.next_record() {
        sink.clear();
        prefetcher.on_access(&record.to_access(), &ctx, &mut sink);
    }
    let stats = *prefetcher.stats();
    let mut table = Table::new(
        format!("DSPatch decision statistics on {}", workload.name),
        vec!["Metric".into(), "Value".into()],
    );
    table.add_row(vec!["accesses".into(), stats.accesses.to_string()]);
    table.add_row(vec!["triggers".into(), stats.triggers.to_string()]);
    table.add_row(vec![
        "CovP predictions".into(),
        stats.covp_predictions.to_string(),
    ]);
    table.add_row(vec![
        "AccP predictions".into(),
        stats.accp_predictions.to_string(),
    ]);
    table.add_row(vec![
        "throttled".into(),
        stats.throttled_predictions.to_string(),
    ]);
    table.add_row(vec![
        "prefetches issued".into(),
        stats.prefetches_issued.to_string(),
    ]);
    table.add_row(vec![
        "SPT occupancy".into(),
        format!("{:.1}%", prefetcher.spt().occupancy() * 100.0),
    ]);
    let _ = LINES_PER_PAGE; // referenced for documentation purposes
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunScale {
        RunScale {
            accesses_per_workload: 800,
            workloads_per_category: 1,
            mixes: 1,
            threads: 4,
            sim_workers: 0,
            sampling: None,
        }
    }

    #[test]
    fn table1_reproduces_the_paper_budget() {
        let text = table1_storage().render();
        assert!(text.contains("10112"));
        assert!(text.contains("19456"));
        assert!(text.contains("3.6 KB"));
    }

    #[test]
    fn table3_orders_prefetchers_by_storage() {
        let text = table3_prefetcher_storage().render();
        assert!(text.contains("BOP"));
        assert!(text.contains("SMS"));
        assert!(text.contains("DSPatch"));
    }

    #[test]
    fn fig11_finds_unit_strides_dominant() {
        let study = fig11_delta_and_compression(&tiny());
        assert!(study.plus_minus_one_fraction > 0.2);
        let sum: f64 = study.misprediction_buckets.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "bucket fractions must sum to 1, got {sum}"
        );
    }

    #[test]
    fn fig4_produces_a_row_per_category_plus_geomean() {
        let fig = fig4_baseline_prefetchers(&tiny());
        assert_eq!(fig.rows.len(), 10);
        assert!(fig.geomean_delta(PrefetcherKind::Spp).is_some());
        assert!(fig.to_table().render().contains("GEOMEAN"));
    }

    #[test]
    fn fig19_reports_all_three_variants() {
        let ablation = fig19_ablation(&tiny());
        assert_eq!(ablation.rows.len(), 3);
        assert!(ablation.delta_of(PrefetcherKind::DspatchPlusSpp).is_some());
    }

    #[test]
    fn fig20_fractions_are_valid() {
        let report = fig20_pollution(&tiny());
        assert_eq!(report.rows.len(), 3);
        for (_, a, b, c) in &report.rows {
            let sum = a + b + c;
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fig5_sweeps_four_pht_sizes_with_one_baseline_each() {
        let sweep = fig5_sms_storage_sweep(&tiny());
        assert_eq!(sweep.rows.len(), 4);
        // Rows are ordered largest PHT first and storage shrinks with it.
        assert!(sweep.rows[0].1 > sweep.rows[3].1);
    }

    #[test]
    fn introspection_reports_decisions() {
        let table = dspatch_introspection(&tiny()).render();
        assert!(table.contains("CovP predictions"));
    }
}
