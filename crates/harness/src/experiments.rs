//! One function per table and figure of the paper's evaluation.
//!
//! Every function takes a [`RunScale`] and returns a structured result with
//! a `to_table()` (or `render()`) method producing the same rows or series
//! the paper plots. The absolute numbers come from the synthetic-workload
//! substitution documented in `DESIGN.md`; `EXPERIMENTS.md` records the
//! measured values next to the paper's.

use crate::report::{percent, Table};
use crate::runner::{
    geomean, perf_delta, run_mix, run_workload, speedups_over_baseline, PrefetcherKind, RunScale,
};
use dspatch::{CompressedPattern, DsPatch, DsPatchConfig, SpatialPattern, StorageBreakdown};
use dspatch_sim::{DramConfig, DramSpeedGrade, SystemConfig};
use dspatch_trace::workloads::{category_suite, memory_intensive_suite, suite, WorkloadCategory};
use dspatch_trace::{heterogeneous_mixes, homogeneous_mixes};
use dspatch_types::{Prefetcher, LINES_PER_PAGE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Performance of several prefetchers per workload category plus the
/// geometric mean (the shape of Figures 4, 12, 14 and 17).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryPerformance {
    /// Figure name used as the table caption.
    pub figure: String,
    /// Prefetchers compared, in column order.
    pub kinds: Vec<PrefetcherKind>,
    /// Per-category performance delta over baseline (fraction), one row per
    /// category, plus a final "GEOMEAN" row.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl CategoryPerformance {
    /// Renders the figure as a table.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["Category".to_owned()];
        headers.extend(self.kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new(self.figure.clone(), headers);
        for (label, deltas) in &self.rows {
            let mut row = vec![label.clone()];
            row.extend(deltas.iter().map(|d| percent(*d)));
            table.add_row(row);
        }
        table
    }

    /// Returns the geometric-mean delta of one prefetcher kind.
    pub fn geomean_delta(&self, kind: PrefetcherKind) -> Option<f64> {
        let column = self.kinds.iter().position(|k| *k == kind)?;
        self.rows
            .iter()
            .find(|(label, _)| label == "GEOMEAN")
            .map(|(_, deltas)| deltas[column])
    }
}

fn category_performance(
    figure: &str,
    kinds: &[PrefetcherKind],
    config: &SystemConfig,
    scale: &RunScale,
) -> CategoryPerformance {
    let mut rows = Vec::new();
    let mut per_kind_all: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for category in WorkloadCategory::ALL {
        let workloads = scale.select_workloads(category_suite(category));
        if workloads.is_empty() {
            continue;
        }
        let mut deltas = Vec::with_capacity(kinds.len());
        for (k, kind) in kinds.iter().enumerate() {
            let speedups = speedups_over_baseline(&workloads, *kind, config, scale);
            per_kind_all[k].extend(speedups.iter().copied());
            deltas.push(geomean(&speedups) - 1.0);
        }
        rows.push((category.label().to_owned(), deltas));
    }
    let geomean_row: Vec<f64> = per_kind_all.iter().map(|s| geomean(s) - 1.0).collect();
    rows.push(("GEOMEAN".to_owned(), geomean_row));
    CategoryPerformance {
        figure: figure.to_owned(),
        kinds: kinds.to_vec(),
        rows,
    }
}

/// Figure 4: BOP, SMS and SPP per category over the baseline (1-channel
/// DDR4-2133).
pub fn fig4_baseline_prefetchers(scale: &RunScale) -> CategoryPerformance {
    category_performance(
        "Figure 4: BOP / SMS / SPP performance delta over baseline",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
        ],
        &SystemConfig::single_thread(),
        scale,
    )
}

/// Figure 12: the full single-thread line-up including DSPatch and
/// DSPatch+SPP.
pub fn fig12_single_thread(scale: &RunScale) -> CategoryPerformance {
    category_performance(
        "Figure 12: single-thread performance delta over baseline",
        &PrefetcherKind::standalone_lineup(),
        &SystemConfig::single_thread(),
        scale,
    )
}

/// Figure 14: adjunct prefetchers on top of SPP.
pub fn fig14_adjuncts(scale: &RunScale) -> CategoryPerformance {
    category_performance(
        "Figure 14: adjunct prefetchers to SPP",
        &PrefetcherKind::adjunct_lineup(),
        &SystemConfig::single_thread(),
        scale,
    )
}

/// One point of a bandwidth-scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthPoint {
    /// DRAM configuration label ("1ch-2133").
    pub dram: String,
    /// Peak bandwidth in GB/s (the x axis of Figures 1, 6 and 15).
    pub peak_gbps: f64,
    /// Per-prefetcher performance delta over the baseline at this point.
    pub deltas: Vec<(PrefetcherKind, f64)>,
}

/// A bandwidth-scaling sweep (Figures 1, 6 and 15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthScaling {
    /// Figure name.
    pub figure: String,
    /// One entry per DRAM configuration, in increasing peak bandwidth.
    pub points: Vec<BandwidthPoint>,
}

impl BandwidthScaling {
    /// Renders the sweep as a table (rows = DRAM configs, columns =
    /// prefetchers).
    pub fn to_table(&self) -> Table {
        let kinds: Vec<PrefetcherKind> = self
            .points
            .first()
            .map(|p| p.deltas.iter().map(|(k, _)| *k).collect())
            .unwrap_or_default();
        let mut headers = vec!["DRAM".to_owned(), "Peak GB/s".to_owned()];
        headers.extend(kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new(self.figure.clone(), headers);
        for point in &self.points {
            let mut row = vec![point.dram.clone(), format!("{:.1}", point.peak_gbps)];
            row.extend(point.deltas.iter().map(|(_, d)| percent(*d)));
            table.add_row(row);
        }
        table
    }

    /// Delta of `kind` at the lowest- and highest-bandwidth points, used to
    /// check scaling trends.
    pub fn scaling_of(&self, kind: PrefetcherKind) -> Option<(f64, f64)> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        let pick = |p: &BandwidthPoint| p.deltas.iter().find(|(k, _)| *k == kind).map(|(_, d)| *d);
        Some((pick(first)?, pick(last)?))
    }
}

fn bandwidth_scaling(figure: &str, kinds: &[PrefetcherKind], scale: &RunScale) -> BandwidthScaling {
    let workloads = scale.select_workloads(memory_intensive_suite());
    let mut points = Vec::new();
    for (channels, speed) in SystemConfig::bandwidth_sweep() {
        let config = SystemConfig::single_thread().with_dram(channels, speed);
        let dram = DramConfig::with_speed(channels, speed);
        let deltas = kinds
            .iter()
            .map(|kind| (*kind, perf_delta(&workloads, *kind, &config, scale)))
            .collect();
        points.push(BandwidthPoint {
            dram: dram.label(),
            peak_gbps: dram.peak_bandwidth_gbps(),
            deltas,
        });
    }
    points.sort_by(|a, b| {
        a.peak_gbps
            .partial_cmp(&b.peak_gbps)
            .expect("finite bandwidth")
    });
    BandwidthScaling {
        figure: figure.to_owned(),
        points,
    }
}

/// Figure 1: BOP / SMS / SPP performance as peak DRAM bandwidth scales.
pub fn fig1_bandwidth_scaling_baselines(scale: &RunScale) -> BandwidthScaling {
    bandwidth_scaling(
        "Figure 1: prefetcher performance scaling with DRAM bandwidth",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
        ],
        scale,
    )
}

/// Figure 6: adds the bandwidth-enhanced eSPP and eBOP variants.
pub fn fig6_bandwidth_scaling_enhanced(scale: &RunScale) -> BandwidthScaling {
    bandwidth_scaling(
        "Figure 6: bandwidth scaling including eSPP and eBOP",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
            PrefetcherKind::Espp,
            PrefetcherKind::Ebop,
        ],
        scale,
    )
}

/// Figure 15: adds eBOP+SPP and DSPatch+SPP.
pub fn fig15_bandwidth_scaling_dspatch(scale: &RunScale) -> BandwidthScaling {
    bandwidth_scaling(
        "Figure 15: performance scaling with DRAM bandwidth (DSPatch+SPP)",
        &[
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
            PrefetcherKind::EbopPlusSpp,
            PrefetcherKind::DspatchPlusSpp,
        ],
        scale,
    )
}

/// Figure 5: SMS performance as its pattern-history table shrinks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmsStorageSweep {
    /// `(PHT entries, storage KB, performance delta over baseline)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

impl SmsStorageSweep {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 5: SMS performance vs pattern-history-table size",
            vec![
                "PHT entries".into(),
                "Storage (KB)".into(),
                "Perf delta".into(),
            ],
        );
        for (entries, kb, delta) in &self.rows {
            table.add_row(vec![
                entries.to_string(),
                format!("{kb:.1}"),
                percent(*delta),
            ]);
        }
        table
    }
}

/// Figure 5: sweep the SMS PHT from 16 K entries down to 256.
pub fn fig5_sms_storage_sweep(scale: &RunScale) -> SmsStorageSweep {
    use dspatch_prefetchers::{SmsConfig, SmsPrefetcher};
    let workloads = scale.select_workloads(suite());
    let config = SystemConfig::single_thread();
    let rows = [16 * 1024, 4 * 1024, 1024, 256]
        .into_iter()
        .map(|entries| {
            let storage_kb = SmsPrefetcher::new(SmsConfig::with_pht_entries(entries)).storage_bits()
                as f64
                / 8.0
                / 1024.0;
            // Run SMS with this PHT size on every selected workload.
            let speedups: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let baseline = run_workload(w, PrefetcherKind::Baseline, &config, scale);
                    let trace = w.generate(scale.accesses_per_workload);
                    let result = dspatch_sim::SimulationBuilder::new(config.clone())
                        .with_core(
                            trace,
                            Box::new(SmsPrefetcher::new(SmsConfig::with_pht_entries(entries))),
                        )
                        .run();
                    result.speedup_over(&baseline)
                })
                .collect();
            (entries, storage_kb, geomean(&speedups) - 1.0)
        })
        .collect();
    SmsStorageSweep { rows }
}

/// Figure 11: delta-occurrence distribution and the misprediction rate
/// induced by 128 B-granularity pattern compression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaCompressionStudy {
    /// Fraction of consecutive-access deltas equal to +1 or -1.
    pub plus_minus_one_fraction: f64,
    /// Fraction of deltas equal to +2 or +3.
    pub small_delta_fraction: f64,
    /// Histogram of per-page compression misprediction rates, bucketed as in
    /// Figure 11(b): exactly 0 %, (0, 12.5 %], (12.5, 25 %], (25, 37 %],
    /// (37, 50 %), exactly 50 %.
    pub misprediction_buckets: [f64; 6],
}

impl DeltaCompressionStudy {
    /// Renders both panels as one table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 11: delta distribution and 128B-compression mispredictions",
            vec!["Metric".into(), "Value".into()],
        );
        table.add_row(vec![
            "+1/-1 delta share".into(),
            percent(self.plus_minus_one_fraction),
        ]);
        table.add_row(vec![
            "+2/+3 delta share".into(),
            percent(self.small_delta_fraction),
        ]);
        let labels = ["0%", "0-12.5%", "12.5-25%", "25-37%", "37-50%", "50%"];
        for (label, value) in labels.iter().zip(self.misprediction_buckets.iter()) {
            table.add_row(vec![
                format!("compression misprediction {label}"),
                percent(*value),
            ]);
        }
        table
    }
}

/// Figure 11: pure trace analysis, no simulation.
pub fn fig11_delta_and_compression(scale: &RunScale) -> DeltaCompressionStudy {
    let workloads = scale.select_workloads(suite());
    let mut delta_total = 0u64;
    let mut delta_unit = 0u64;
    let mut delta_small = 0u64;
    let mut buckets = [0u64; 6];
    let mut pages_total = 0u64;
    for workload in &workloads {
        let trace = workload.generate(scale.accesses_per_workload);
        // Per-page delta statistics and access patterns.
        let mut last_offset: BTreeMap<u64, usize> = BTreeMap::new();
        let mut patterns: BTreeMap<u64, SpatialPattern> = BTreeMap::new();
        for record in &trace {
            let page = record.addr.page().as_u64();
            let offset = record.addr.page_line_offset();
            if let Some(previous) = last_offset.insert(page, offset) {
                let delta = offset as i64 - previous as i64;
                if delta != 0 {
                    delta_total += 1;
                    if delta.abs() == 1 {
                        delta_unit += 1;
                    } else if delta == 2 || delta == 3 {
                        delta_small += 1;
                    }
                }
            }
            patterns.entry(page).or_default().set(offset);
        }
        for pattern in patterns.values() {
            let real = pattern.popcount();
            if real == 0 {
                continue;
            }
            let mispredicted = CompressedPattern::compression_mispredictions(*pattern);
            let predicted = pattern.compress().decompress().popcount();
            let rate = mispredicted as f64 / predicted.max(1) as f64;
            pages_total += 1;
            let bucket = if mispredicted == 0 {
                0
            } else if rate <= 0.125 {
                1
            } else if rate <= 0.25 {
                2
            } else if rate <= 0.37 {
                3
            } else if rate < 0.5 {
                4
            } else {
                5
            };
            buckets[bucket] += 1;
        }
    }
    let fraction = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    DeltaCompressionStudy {
        plus_minus_one_fraction: fraction(delta_unit, delta_total),
        small_delta_fraction: fraction(delta_small, delta_total),
        misprediction_buckets: std::array::from_fn(|i| fraction(buckets[i], pages_total)),
    }
}

/// Figure 13: per-workload speedups on the 42 memory-intensive workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryIntensiveLine {
    /// Prefetchers plotted.
    pub kinds: Vec<PrefetcherKind>,
    /// `(workload, per-kind delta)` rows sorted by the last kind's delta.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl MemoryIntensiveLine {
    /// Renders the line graph data as a table.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["Workload".to_owned()];
        headers.extend(self.kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new("Figure 13: memory-intensive workloads", headers);
        for (name, deltas) in &self.rows {
            let mut row = vec![name.clone()];
            row.extend(deltas.iter().map(|d| percent(*d)));
            table.add_row(row);
        }
        table
    }
}

/// Figure 13: SMS, SPP and DSPatch+SPP on the memory-intensive subset.
pub fn fig13_memory_intensive(scale: &RunScale) -> MemoryIntensiveLine {
    let kinds = vec![
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let workloads = scale.select_workloads(memory_intensive_suite());
    let config = SystemConfig::single_thread();
    let per_kind: Vec<Vec<f64>> = kinds
        .iter()
        .map(|kind| speedups_over_baseline(&workloads, *kind, &config, scale))
        .collect();
    let mut rows: Vec<(String, Vec<f64>)> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            (
                w.name.clone(),
                per_kind.iter().map(|speedups| speedups[i] - 1.0).collect(),
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        let last_a = a.1.last().copied().unwrap_or(0.0);
        let last_b = b.1.last().copied().unwrap_or(0.0);
        last_a.partial_cmp(&last_b).expect("finite deltas")
    });
    MemoryIntensiveLine { kinds, rows }
}

/// Figure 16: covered / uncovered / mispredicted fractions of L2 accesses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// `(category, prefetcher, covered, uncovered, mispredicted)` rows.
    pub rows: Vec<(String, PrefetcherKind, f64, f64, f64)>,
}

impl CoverageReport {
    /// Renders the coverage report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 16: coverage and mispredictions (fractions of L2 accesses)",
            vec![
                "Category".into(),
                "Prefetcher".into(),
                "Covered".into(),
                "Uncovered".into(),
                "Mispredicted".into(),
            ],
        );
        for (category, kind, covered, uncovered, mispredicted) in &self.rows {
            table.add_row(vec![
                category.clone(),
                kind.label().to_owned(),
                percent(*covered),
                percent(*uncovered),
                percent(*mispredicted),
            ]);
        }
        table
    }

    /// Average (coverage, misprediction) fractions of one prefetcher kind.
    pub fn average_of(&self, kind: PrefetcherKind) -> Option<(f64, f64)> {
        let rows: Vec<_> = self.rows.iter().filter(|(_, k, ..)| *k == kind).collect();
        if rows.is_empty() {
            return None;
        }
        let coverage = rows.iter().map(|(_, _, c, ..)| *c).sum::<f64>() / rows.len() as f64;
        let mispredictions = rows.iter().map(|(.., m)| *m).sum::<f64>() / rows.len() as f64;
        Some((coverage, mispredictions))
    }
}

/// Figure 16: coverage and misprediction fractions per category for the
/// standalone line-up plus DSPatch+SPP.
pub fn fig16_coverage(scale: &RunScale) -> CoverageReport {
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let config = SystemConfig::single_thread();
    let mut rows = Vec::new();
    for category in WorkloadCategory::ALL {
        let workloads = scale.select_workloads(category_suite(category));
        for kind in kinds {
            let mut acc = dspatch_sim::PrefetchAccounting::default();
            for workload in &workloads {
                let result = run_workload(workload, kind, &config, scale);
                acc.merge(&result.total_accounting());
            }
            rows.push((
                category.label().to_owned(),
                kind,
                acc.coverage(),
                acc.uncovered_fraction(),
                acc.misprediction_fraction(),
            ));
        }
    }
    CoverageReport { rows }
}

/// Figures 17 and 18: multi-programmed performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiProgrammedReport {
    /// `(configuration label, prefetcher, delta over baseline)` rows.
    pub rows: Vec<(String, PrefetcherKind, f64)>,
}

impl MultiProgrammedReport {
    /// Renders the report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Multi-programmed performance delta over baseline",
            vec![
                "Configuration".into(),
                "Prefetcher".into(),
                "Perf delta".into(),
            ],
        );
        for (label, kind, delta) in &self.rows {
            table.add_row(vec![
                label.clone(),
                kind.label().to_owned(),
                percent(*delta),
            ]);
        }
        table
    }

    /// The delta of `kind` under `label`.
    pub fn delta_of(&self, label: &str, kind: PrefetcherKind) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, k, _)| l == label && *k == kind)
            .map(|(_, _, d)| *d)
    }
}

fn multi_programmed(
    label: &str,
    mixes: &[dspatch_trace::WorkloadMix],
    kinds: &[PrefetcherKind],
    config: &SystemConfig,
    scale: &RunScale,
) -> Vec<(String, PrefetcherKind, f64)> {
    kinds
        .iter()
        .map(|kind| {
            let speedups: Vec<f64> = mixes
                .iter()
                .map(|mix| {
                    let baseline = run_mix(mix, PrefetcherKind::Baseline, config, scale);
                    run_mix(mix, *kind, config, scale).speedup_over(&baseline)
                })
                .collect();
            (label.to_owned(), *kind, geomean(&speedups) - 1.0)
        })
        .collect()
}

/// Figure 17: homogeneous 4-core mixes on the dual-channel DDR4-2133 system.
pub fn fig17_homogeneous(scale: &RunScale) -> MultiProgrammedReport {
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let mixes = scale.select_mixes(homogeneous_mixes(4));
    let config = SystemConfig::multi_programmed();
    MultiProgrammedReport {
        rows: multi_programmed("homogeneous DDR4-2133", &mixes, &kinds, &config, scale),
    }
}

/// Figure 18: homogeneous and heterogeneous mixes at DDR4-2133 and DDR4-2400.
pub fn fig18_mixes_and_bandwidth(scale: &RunScale) -> MultiProgrammedReport {
    let kinds = [
        PrefetcherKind::Bop,
        PrefetcherKind::Sms,
        PrefetcherKind::Spp,
        PrefetcherKind::DspatchPlusSpp,
    ];
    let homogeneous = scale.select_mixes(homogeneous_mixes(4));
    let heterogeneous = scale.select_mixes(heterogeneous_mixes(75, 4, 0xD5));
    let mut rows = Vec::new();
    for speed in [DramSpeedGrade::Ddr4_2133, DramSpeedGrade::Ddr4_2400] {
        let config = SystemConfig::multi_programmed().with_dram(2, speed);
        rows.extend(multi_programmed(
            &format!("homogeneous DDR4-{}", speed.label()),
            &homogeneous,
            &kinds,
            &config,
            scale,
        ));
        rows.extend(multi_programmed(
            &format!("heterogeneous DDR4-{}", speed.label()),
            &heterogeneous,
            &kinds,
            &config,
            scale,
        ));
    }
    MultiProgrammedReport { rows }
}

/// Figure 19: the accuracy-biased-pattern ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// `(variant, delta over baseline)` rows.
    pub rows: Vec<(PrefetcherKind, f64)>,
}

impl AblationReport {
    /// Renders the report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 19: contribution of the accuracy-biased pattern",
            vec!["Variant".into(), "Perf delta".into()],
        );
        for (kind, delta) in &self.rows {
            table.add_row(vec![kind.label().to_owned(), percent(*delta)]);
        }
        table
    }

    /// The delta of one variant.
    pub fn delta_of(&self, kind: PrefetcherKind) -> Option<f64> {
        self.rows.iter().find(|(k, _)| *k == kind).map(|(_, d)| *d)
    }
}

/// Figure 19: full DSPatch vs AlwaysCovP vs ModCovP (as adjuncts to SPP), on
/// the memory-intensive subset with half the DRAM bandwidth per core so the
/// bandwidth-driven selection matters.
pub fn fig19_ablation(scale: &RunScale) -> AblationReport {
    let kinds = [
        PrefetcherKind::DspatchPlusSpp,
        PrefetcherKind::AlwaysCovpPlusSpp,
        PrefetcherKind::ModCovpPlusSpp,
    ];
    let workloads = scale.select_workloads(memory_intensive_suite());
    let config = SystemConfig::single_thread().with_dram(1, DramSpeedGrade::Ddr4_1600);
    let rows = kinds
        .iter()
        .map(|kind| (*kind, perf_delta(&workloads, *kind, &config, scale)))
        .collect();
    AblationReport { rows }
}

/// Figure 20: pollution caused by an aggressive, inaccurate streamer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PollutionReport {
    /// `(LLC size label, NoReuse, PrefetchedBeforeUse, BadPollution)` rows,
    /// fractions of all classified victims.
    pub rows: Vec<(String, f64, f64, f64)>,
}

impl PollutionReport {
    /// Renders the report.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 20: breakdown of LLC victims evicted by prefetches",
            vec![
                "LLC size".into(),
                "NoReuse".into(),
                "PrefetchedBeforeUse".into(),
                "BadPollution".into(),
            ],
        );
        for (label, a, b, c) in &self.rows {
            table.add_row(vec![label.clone(), percent(*a), percent(*b), percent(*c)]);
        }
        table
    }
}

/// Figure 20: run the streamer on the workload suite with 8, 4 and 2 MB LLCs
/// and classify the victims of its prefetch fills.
pub fn fig20_pollution(scale: &RunScale) -> PollutionReport {
    let workloads = scale.select_workloads(memory_intensive_suite());
    let mut rows = Vec::new();
    for (label, bytes) in [("8MB", 8 << 20), ("4MB", 4 << 20), ("2MB", 2 << 20)] {
        let config = SystemConfig::single_thread().with_llc_capacity(bytes);
        let mut totals = dspatch_sim::PollutionBreakdown::default();
        for workload in &workloads {
            let result = run_workload(workload, PrefetcherKind::Streamer, &config, scale);
            totals.no_reuse += result.pollution.no_reuse;
            totals.prefetched_before_use += result.pollution.prefetched_before_use;
            totals.bad_pollution += result.pollution.bad_pollution;
        }
        let (a, b, c) = totals.fractions();
        rows.push((label.to_owned(), a, b, c));
    }
    PollutionReport { rows }
}

/// Table 1: DSPatch storage budget.
pub fn table1_storage() -> Table {
    let breakdown = StorageBreakdown::for_config(&DsPatchConfig::default());
    let mut table = Table::new(
        "Table 1: DSPatch storage overhead",
        vec![
            "Structure".into(),
            "Entries".into(),
            "Bits/entry".into(),
            "Total bits".into(),
        ],
    );
    table.add_row(vec![
        "PB".into(),
        breakdown.pb_entries.to_string(),
        breakdown.pb_entry_bits.to_string(),
        breakdown.pb_bits().to_string(),
    ]);
    table.add_row(vec![
        "SPT".into(),
        breakdown.spt_entries.to_string(),
        breakdown.spt_entry_bits.to_string(),
        breakdown.spt_bits().to_string(),
    ]);
    table.add_row(vec![
        "Total".into(),
        String::new(),
        String::new(),
        format!(
            "{} ({:.1} KB)",
            breakdown.total_bits(),
            breakdown.total_kib()
        ),
    ]);
    table
}

/// Table 3: storage of every evaluated prefetcher.
pub fn table3_prefetcher_storage() -> Table {
    let mut table = Table::new(
        "Table 3: evaluated prefetcher configurations",
        vec!["Prefetcher".into(), "Storage (KB)".into()],
    );
    for kind in [
        PrefetcherKind::Bop,
        PrefetcherKind::Dspatch,
        PrefetcherKind::Spp,
        PrefetcherKind::SmsIso,
        PrefetcherKind::Sms,
    ] {
        let kb = kind.build().storage_bits() as f64 / 8.0 / 1024.0;
        table.add_row(vec![kind.label().to_owned(), format!("{kb:.1}")]);
    }
    table
}

/// Standalone DSPatch model statistics useful for debugging experiments
/// (selection decisions, SPT occupancy) on one workload.
pub fn dspatch_introspection(scale: &RunScale) -> Table {
    let workloads = scale.select_workloads(category_suite(WorkloadCategory::Cloud));
    let workload = &workloads[0];
    let trace = workload.generate(scale.accesses_per_workload);
    let mut prefetcher = DsPatch::new(DsPatchConfig::default());
    let ctx = dspatch_types::PrefetchContext::default();
    let mut sink = dspatch_types::PrefetchSink::new();
    for record in &trace {
        sink.clear();
        prefetcher.on_access(&record.to_access(), &ctx, &mut sink);
    }
    let stats = *prefetcher.stats();
    let mut table = Table::new(
        format!("DSPatch decision statistics on {}", workload.name),
        vec!["Metric".into(), "Value".into()],
    );
    table.add_row(vec!["accesses".into(), stats.accesses.to_string()]);
    table.add_row(vec!["triggers".into(), stats.triggers.to_string()]);
    table.add_row(vec![
        "CovP predictions".into(),
        stats.covp_predictions.to_string(),
    ]);
    table.add_row(vec![
        "AccP predictions".into(),
        stats.accp_predictions.to_string(),
    ]);
    table.add_row(vec![
        "throttled".into(),
        stats.throttled_predictions.to_string(),
    ]);
    table.add_row(vec![
        "prefetches issued".into(),
        stats.prefetches_issued.to_string(),
    ]);
    table.add_row(vec![
        "SPT occupancy".into(),
        format!("{:.1}%", prefetcher.spt().occupancy() * 100.0),
    ]);
    let _ = LINES_PER_PAGE; // referenced for documentation purposes
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunScale {
        RunScale {
            accesses_per_workload: 800,
            workloads_per_category: 1,
            mixes: 1,
            threads: 4,
        }
    }

    #[test]
    fn table1_reproduces_the_paper_budget() {
        let text = table1_storage().render();
        assert!(text.contains("10112"));
        assert!(text.contains("19456"));
        assert!(text.contains("3.6 KB"));
    }

    #[test]
    fn table3_orders_prefetchers_by_storage() {
        let text = table3_prefetcher_storage().render();
        assert!(text.contains("BOP"));
        assert!(text.contains("SMS"));
        assert!(text.contains("DSPatch"));
    }

    #[test]
    fn fig11_finds_unit_strides_dominant() {
        let study = fig11_delta_and_compression(&tiny());
        assert!(study.plus_minus_one_fraction > 0.2);
        let sum: f64 = study.misprediction_buckets.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "bucket fractions must sum to 1, got {sum}"
        );
    }

    #[test]
    fn fig4_produces_a_row_per_category_plus_geomean() {
        let fig = fig4_baseline_prefetchers(&tiny());
        assert_eq!(fig.rows.len(), 10);
        assert!(fig.geomean_delta(PrefetcherKind::Spp).is_some());
        assert!(fig.to_table().render().contains("GEOMEAN"));
    }

    #[test]
    fn fig19_reports_all_three_variants() {
        let ablation = fig19_ablation(&tiny());
        assert_eq!(ablation.rows.len(), 3);
        assert!(ablation.delta_of(PrefetcherKind::DspatchPlusSpp).is_some());
    }

    #[test]
    fn fig20_fractions_are_valid() {
        let report = fig20_pollution(&tiny());
        assert_eq!(report.rows.len(), 3);
        for (_, a, b, c) in &report.rows {
            let sum = a + b + c;
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn introspection_reports_decisions() {
        let table = dspatch_introspection(&tiny()).render();
        assert!(table.contains("CovP predictions"));
    }
}
