//! The one canonical result-row schema every persistence and reporting
//! layer serializes through.
//!
//! Before this module existed the repository carried three divergent
//! renderings of the same fact — "this (workload, prefetcher, config,
//! scale, code version) cell produced these stats": the crash-safe journal
//! lines, the content-addressed store records, and the hand-maintained
//! perf-snapshot shape. [`ResultRow`] spells the cell identity out as
//! typed fields (the exact components of
//! [`crate::store::cell_fingerprint_sampled`], which remains the content
//! address), carries the full exactly-serialized [`SimResult`], and tags
//! itself with a schema version so on-disk formats can evolve without a
//! flag day: legacy (schema 1) records — the PR 8/9 `{"cell": ...}` store
//! lines and `{"sim": {"key", "result"}}` journal lines — upgrade on read
//! into rows with empty identity fields, and everything written from now
//! on is a schema-2 row.
//!
//! The `SimResult` round-trip is exact: `u64` counters encode as JSON
//! numbers below 2^53 and as decimal strings above, `f64` fields rely on
//! the emitter's shortest-round-trip rendering, and the optional
//! `sampling` block is absent (never `null`) on exact runs — so a row
//! parsed from a legacy file re-renders its `result` sub-object
//! byte-identically (`tests/schema_upgrade.rs` proves it against committed
//! fixtures).

use crate::json::Json;
use dspatch_sim::stats::{IntervalEstimate, SamplingStats};
use dspatch_sim::{
    CacheGeometry, CacheStats, CoreResult, DramStats, PollutionBreakdown, PrefetchAccounting,
    SimResult,
};

/// Schema version stamped on every row written from now on.
pub const SCHEMA_VERSION: u64 = 2;
/// Schema tag given to rows upgraded from pre-schema files (identity
/// fields unknown, so they are empty).
pub const LEGACY_SCHEMA: u64 = 1;

/// One simulated cell: the spelled-out fingerprint identity plus the full
/// statistics, in the single canonical JSON encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Schema version of the record this row was read from (or
    /// [`SCHEMA_VERSION`] for freshly built rows).
    pub schema: u64,
    /// Content address ([`crate::store::cell_fingerprint_sampled`]),
    /// 16 hex digits.
    pub fingerprint: String,
    /// Campaign (figure) name the cell was first simulated for. Not part
    /// of the fingerprint: identical cells are shared across campaigns, so
    /// this records the first requester.
    pub figure: String,
    /// Target (workload or mix) display name.
    pub workload: String,
    /// Prefetcher display label ([`crate::campaign::PrefetcherSel::label`]).
    pub prefetcher: String,
    /// Config display label.
    pub config: String,
    /// Accesses per workload.
    pub scale: u64,
    /// Sampling-plan fingerprint suffix
    /// ([`crate::sampling::SamplingPlan::fingerprint_suffix`]), empty for
    /// exact runs.
    pub sampling: String,
    /// Crate version that simulated the cell
    /// ([`crate::store::code_version`]).
    pub code_version: String,
    /// The full simulation statistics.
    pub result: SimResult,
}

impl ResultRow {
    /// Builds a current-schema row for a freshly simulated cell.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fingerprint: String,
        figure: String,
        workload: String,
        prefetcher: String,
        config: String,
        scale: u64,
        sampling: String,
        result: SimResult,
    ) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            fingerprint,
            figure,
            workload,
            prefetcher,
            config,
            scale,
            sampling,
            code_version: crate::store::code_version().to_owned(),
            result,
        }
    }

    /// Upgrades a pre-schema record (fingerprint + result, identity
    /// unknown) into a row. The empty identity fields make the upgrade
    /// visible to queries instead of inventing values.
    pub fn legacy(fingerprint: String, result: SimResult) -> Self {
        Self {
            schema: LEGACY_SCHEMA,
            fingerprint,
            figure: String::new(),
            workload: String::new(),
            prefetcher: String::new(),
            config: String::new(),
            scale: 0,
            sampling: String::new(),
            code_version: String::new(),
            result,
        }
    }

    /// Whether this row was upgraded from a pre-schema record.
    pub fn is_legacy(&self) -> bool {
        self.schema < SCHEMA_VERSION
    }

    /// The canonical JSON encoding: one object, fixed key order, with the
    /// exactly-serialized result as its last field.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", json_u64(self.schema)),
            ("fingerprint", Json::str(&self.fingerprint)),
            ("figure", Json::str(&self.figure)),
            ("workload", Json::str(&self.workload)),
            ("prefetcher", Json::str(&self.prefetcher)),
            ("config", Json::str(&self.config)),
            ("scale", json_u64(self.scale)),
            ("sampling", Json::str(&self.sampling)),
            ("code_version", Json::str(&self.code_version)),
            ("result", sim_result_to_json(&self.result)),
        ])
    }

    /// Parses the canonical encoding, the exact inverse of
    /// [`ResultRow::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        Ok(Self {
            schema: get_u64(json, "schema", "result row")?,
            fingerprint: get_str(json, "fingerprint", "result row")?.to_owned(),
            figure: get_str(json, "figure", "result row")?.to_owned(),
            workload: get_str(json, "workload", "result row")?.to_owned(),
            prefetcher: get_str(json, "prefetcher", "result row")?.to_owned(),
            config: get_str(json, "config", "result row")?.to_owned(),
            scale: get_u64(json, "scale", "result row")?,
            sampling: get_str(json, "sampling", "result row")?.to_owned(),
            code_version: get_str(json, "code_version", "result row")?.to_owned(),
            result: sim_result_from_json(get(json, "result", "result row")?)?,
        })
    }
}

/// Mean per-core IPC of a simulation — the single IPC aggregation every
/// report renderer and the analytics layer use.
pub fn mean_ipc(sim: &SimResult) -> f64 {
    sim.cores.iter().map(CoreResult::ipc).sum::<f64>() / sim.cores.len().max(1) as f64
}

pub(crate) fn json_u64(value: u64) -> Json {
    // Exact round-trip: JSON numbers are f64, so values at or above 2^53
    // travel as decimal strings (the parser accepts both forms).
    if value < (1u64 << 53) {
        Json::num(value as f64)
    } else {
        Json::str(value.to_string())
    }
}

fn get<'a>(obj: &'a Json, key: &str, context: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{context}: missing '{key}'"))
}

fn get_u64(obj: &Json, key: &str, context: &str) -> Result<u64, String> {
    let value = get(obj, key, context)?;
    if let Some(text) = value.as_str() {
        return text
            .parse::<u64>()
            .map_err(|_| format!("{context}: '{key}' string is not a u64: '{text}'"));
    }
    value
        .as_u64()
        .ok_or_else(|| format!("{context}: '{key}' must be a non-negative integer"))
}

fn get_f64(obj: &Json, key: &str, context: &str) -> Result<f64, String> {
    get(obj, key, context)?
        .as_f64()
        .ok_or_else(|| format!("{context}: '{key}' must be a number"))
}

fn get_str<'a>(obj: &'a Json, key: &str, context: &str) -> Result<&'a str, String> {
    get(obj, key, context)?
        .as_str()
        .ok_or_else(|| format!("{context}: '{key}' must be a string"))
}

fn cache_stats_to_json(stats: &CacheStats) -> Json {
    Json::obj([
        ("demand_hits", json_u64(stats.demand_hits)),
        ("demand_misses", json_u64(stats.demand_misses)),
        ("demand_fills", json_u64(stats.demand_fills)),
        ("prefetch_fills", json_u64(stats.prefetch_fills)),
        ("prefetch_first_uses", json_u64(stats.prefetch_first_uses)),
        (
            "prefetch_unused_evictions",
            json_u64(stats.prefetch_unused_evictions),
        ),
    ])
}

fn cache_stats_from_json(json: &Json, context: &str) -> Result<CacheStats, String> {
    Ok(CacheStats {
        demand_hits: get_u64(json, "demand_hits", context)?,
        demand_misses: get_u64(json, "demand_misses", context)?,
        demand_fills: get_u64(json, "demand_fills", context)?,
        prefetch_fills: get_u64(json, "prefetch_fills", context)?,
        prefetch_first_uses: get_u64(json, "prefetch_first_uses", context)?,
        prefetch_unused_evictions: get_u64(json, "prefetch_unused_evictions", context)?,
    })
}

fn accounting_to_json(accounting: &PrefetchAccounting) -> Json {
    Json::obj([
        (
            "l2_demand_accesses",
            json_u64(accounting.l2_demand_accesses),
        ),
        ("covered", json_u64(accounting.covered)),
        ("uncovered", json_u64(accounting.uncovered)),
        ("prefetches_issued", json_u64(accounting.prefetches_issued)),
        ("prefetches_used", json_u64(accounting.prefetches_used)),
        ("prefetches_unused", json_u64(accounting.prefetches_unused)),
    ])
}

fn accounting_from_json(json: &Json, context: &str) -> Result<PrefetchAccounting, String> {
    Ok(PrefetchAccounting {
        l2_demand_accesses: get_u64(json, "l2_demand_accesses", context)?,
        covered: get_u64(json, "covered", context)?,
        uncovered: get_u64(json, "uncovered", context)?,
        prefetches_issued: get_u64(json, "prefetches_issued", context)?,
        prefetches_used: get_u64(json, "prefetches_used", context)?,
        prefetches_unused: get_u64(json, "prefetches_unused", context)?,
    })
}

/// Serializes a full [`SimResult`], exactly.
pub fn sim_result_to_json(sim: &SimResult) -> Json {
    let cores = sim.cores.iter().map(|core| {
        Json::obj([
            ("workload", Json::str(&core.workload)),
            ("prefetcher", Json::str(&core.prefetcher)),
            ("instructions", json_u64(core.instructions)),
            ("finish_cycle", json_u64(core.finish_cycle)),
            ("l1", cache_stats_to_json(&core.l1)),
            ("l2", cache_stats_to_json(&core.l2)),
            ("accounting", accounting_to_json(&core.accounting)),
        ])
    });
    let geometry = sim.cache_geometry.iter().map(|geom| {
        Json::obj([
            ("name", Json::str(&geom.name)),
            ("requested_bytes", json_u64(geom.requested_bytes as u64)),
            ("ways", json_u64(geom.ways as u64)),
            ("sets", json_u64(geom.sets as u64)),
            ("effective_bytes", json_u64(geom.effective_bytes as u64)),
            ("rounded", Json::Bool(geom.rounded)),
        ])
    });
    let mut json = Json::obj([
        ("cores", Json::Arr(cores.collect())),
        ("llc", cache_stats_to_json(&sim.llc)),
        (
            "dram",
            Json::obj([
                ("cas_commands", json_u64(sim.dram.cas_commands)),
                ("row_hits", json_u64(sim.dram.row_hits)),
                ("row_misses", json_u64(sim.dram.row_misses)),
                ("prefetch_accesses", json_u64(sim.dram.prefetch_accesses)),
                // f64: the emitter's shortest-round-trip rendering is exact.
                ("utilization_sum", Json::num(sim.dram.utilization_sum)),
                ("windows", json_u64(sim.dram.windows)),
            ]),
        ),
        (
            "pollution",
            Json::obj([
                ("no_reuse", json_u64(sim.pollution.no_reuse)),
                (
                    "prefetched_before_use",
                    json_u64(sim.pollution.prefetched_before_use),
                ),
                ("bad_pollution", json_u64(sim.pollution.bad_pollution)),
            ]),
        ),
        ("cycles", json_u64(sim.cycles)),
        ("cache_geometry", Json::Arr(geometry.collect())),
    ]);
    // Exact runs keep their historical byte layout: the key only appears
    // for sampled results.
    if let Some(stats) = &sim.sampling {
        if let Json::Obj(entries) = &mut json {
            entries.push(("sampling".to_owned(), sampling_stats_to_json(stats)));
        }
    }
    json
}

fn estimate_to_json(estimate: &IntervalEstimate) -> Json {
    Json::obj([
        ("mean", Json::num(estimate.mean)),
        ("ci95", Json::num(estimate.ci95)),
    ])
}

fn estimate_from_json(json: &Json, context: &str) -> Result<IntervalEstimate, String> {
    Ok(IntervalEstimate {
        mean: get_f64(json, "mean", context)?,
        ci95: get_f64(json, "ci95", context)?,
    })
}

fn sampling_stats_to_json(stats: &SamplingStats) -> Json {
    Json::obj([
        ("warmup_accesses", json_u64(stats.warmup_accesses)),
        ("interval_accesses", json_u64(stats.interval_accesses)),
        ("intervals", json_u64(u64::from(stats.intervals))),
        ("seed", json_u64(stats.seed)),
        ("ipc", estimate_to_json(&stats.ipc)),
        ("coverage", estimate_to_json(&stats.coverage)),
        ("accuracy", estimate_to_json(&stats.accuracy)),
    ])
}

fn sampling_stats_from_json(json: &Json) -> Result<SamplingStats, String> {
    Ok(SamplingStats {
        warmup_accesses: get_u64(json, "warmup_accesses", "sampling")?,
        interval_accesses: get_u64(json, "interval_accesses", "sampling")?,
        intervals: u32::try_from(get_u64(json, "intervals", "sampling")?)
            .map_err(|_| "sampling: 'intervals' is too large")?,
        seed: get_u64(json, "seed", "sampling")?,
        ipc: estimate_from_json(get(json, "ipc", "sampling")?, "sampling ipc")?,
        coverage: estimate_from_json(get(json, "coverage", "sampling")?, "sampling coverage")?,
        accuracy: estimate_from_json(get(json, "accuracy", "sampling")?, "sampling accuracy")?,
    })
}

/// Parses a serialized [`SimResult`], the exact inverse of
/// [`sim_result_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn sim_result_from_json(json: &Json) -> Result<SimResult, String> {
    let cores = get(json, "cores", "sim result")?
        .as_arr()
        .ok_or("sim result: 'cores' must be an array")?
        .iter()
        .map(|core| {
            Ok(CoreResult {
                workload: get_str(core, "workload", "core")?.to_owned(),
                prefetcher: get_str(core, "prefetcher", "core")?.to_owned(),
                instructions: get_u64(core, "instructions", "core")?,
                finish_cycle: get_u64(core, "finish_cycle", "core")?,
                l1: cache_stats_from_json(get(core, "l1", "core")?, "core l1")?,
                l2: cache_stats_from_json(get(core, "l2", "core")?, "core l2")?,
                accounting: accounting_from_json(
                    get(core, "accounting", "core")?,
                    "core accounting",
                )?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let dram = get(json, "dram", "sim result")?;
    let pollution = get(json, "pollution", "sim result")?;
    let geometry = get(json, "cache_geometry", "sim result")?
        .as_arr()
        .ok_or("sim result: 'cache_geometry' must be an array")?
        .iter()
        .map(|geom| {
            Ok(CacheGeometry {
                name: get_str(geom, "name", "geometry")?.to_owned(),
                requested_bytes: get_u64(geom, "requested_bytes", "geometry")? as usize,
                ways: get_u64(geom, "ways", "geometry")? as usize,
                sets: get_u64(geom, "sets", "geometry")? as usize,
                effective_bytes: get_u64(geom, "effective_bytes", "geometry")? as usize,
                rounded: get(geom, "rounded", "geometry")?
                    .as_bool()
                    .ok_or("geometry: 'rounded' must be a boolean")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SimResult {
        cores,
        llc: cache_stats_from_json(get(json, "llc", "sim result")?, "llc")?,
        dram: DramStats {
            cas_commands: get_u64(dram, "cas_commands", "dram")?,
            row_hits: get_u64(dram, "row_hits", "dram")?,
            row_misses: get_u64(dram, "row_misses", "dram")?,
            prefetch_accesses: get_u64(dram, "prefetch_accesses", "dram")?,
            utilization_sum: get_f64(dram, "utilization_sum", "dram")?,
            windows: get_u64(dram, "windows", "dram")?,
        },
        pollution: PollutionBreakdown {
            no_reuse: get_u64(pollution, "no_reuse", "pollution")?,
            prefetched_before_use: get_u64(pollution, "prefetched_before_use", "pollution")?,
            bad_pollution: get_u64(pollution, "bad_pollution", "pollution")?,
        },
        cycles: get_u64(json, "cycles", "sim result")?,
        cache_geometry: geometry,
        sampling: match json.get("sampling") {
            None | Some(Json::Null) => None,
            Some(stats) => Some(sampling_stats_from_json(stats)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sim() -> SimResult {
        SimResult {
            cores: vec![CoreResult {
                workload: "stream_1".to_owned(),
                prefetcher: "SPP".to_owned(),
                instructions: 123_456,
                finish_cycle: 654_321,
                l1: CacheStats {
                    demand_hits: 1,
                    demand_misses: 2,
                    demand_fills: 3,
                    prefetch_fills: 4,
                    prefetch_first_uses: 5,
                    prefetch_unused_evictions: 6,
                },
                l2: CacheStats::default(),
                accounting: PrefetchAccounting {
                    l2_demand_accesses: 7,
                    covered: 8,
                    uncovered: 9,
                    prefetches_issued: 10,
                    prefetches_used: 11,
                    prefetches_unused: 12,
                },
            }],
            llc: CacheStats::default(),
            dram: DramStats {
                cas_commands: 13,
                row_hits: 14,
                row_misses: 15,
                prefetch_accesses: 16,
                utilization_sum: 0.25,
                windows: 17,
            },
            pollution: PollutionBreakdown::default(),
            cycles: 654_321,
            cache_geometry: Vec::new(),
            sampling: None,
        }
    }

    #[test]
    fn rows_round_trip_through_the_canonical_encoding() {
        let row = ResultRow::new(
            "00ff00ff00ff00ff".to_owned(),
            "fig12".to_owned(),
            "linpack".to_owned(),
            "SPP".to_owned(),
            "1T".to_owned(),
            240_000,
            String::new(),
            sample_sim(),
        );
        assert_eq!(row.schema, SCHEMA_VERSION);
        assert!(!row.is_legacy());
        assert_eq!(row.code_version, crate::store::code_version());
        let reparsed = Json::parse(&row.to_json().render_compact()).expect("valid JSON");
        let back = ResultRow::from_json(&reparsed).expect("parses back");
        assert_eq!(back, row);
    }

    #[test]
    fn legacy_rows_carry_empty_identity_and_say_so() {
        let row = ResultRow::legacy("0123456789abcdef".to_owned(), sample_sim());
        assert!(row.is_legacy());
        assert_eq!(row.schema, LEGACY_SCHEMA);
        assert!(row.figure.is_empty() && row.code_version.is_empty());
        // Legacy rows still round-trip the canonical encoding: once
        // rewritten (e.g. by `store gc`) they stay schema-1 tagged.
        let reparsed = Json::parse(&row.to_json().render_compact()).expect("valid JSON");
        assert_eq!(ResultRow::from_json(&reparsed).expect("parses back"), row);
    }

    #[test]
    fn mean_ipc_averages_cores() {
        let mut sim = sample_sim();
        assert!((mean_ipc(&sim) - 123_456.0 / 654_321.0).abs() < 1e-12);
        sim.cores.clear();
        assert_eq!(mean_ipc(&sim), 0.0);
    }
}
