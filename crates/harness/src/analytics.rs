//! Columnar analytics over the result store: one query engine behind
//! `dspatch-lab query`, `GET /query`, and the perf-snapshot regression
//! gate.
//!
//! A [`ColumnarView`] is loaded once from a [`ResultStore`] (or any row
//! set) and holds **per-field vectors** — identity columns as string/`u64`
//! vectors, metrics as `f64` vectors with `NaN` marking "not applicable"
//! (a speedup without a baseline, a confidence interval on an exact run) —
//! so a query scans columns, never re-parses rows. Rows are sorted
//! canonically at load time, which makes every query's output
//! **byte-stable**: the same store contents produce the same bytes,
//! whatever the on-disk or hash-map order was.
//!
//! The query AST is deliberately small: `filter(field op value)` →
//! `group_by(fields)` → `aggregate(mean/min/max/count/geomean)` over one
//! metric, plus `trend(metric)` which groups by `code_version` (ascending,
//! version-ordered) to expose how a metric moved across releases. Unless
//! `all_versions` is set (or a trend is asked for, which needs every
//! version), rows are first deduplicated to the **newest `code_version`
//! per cell identity** — the flat view answers "where are we now", not
//! "every byte ever written".
//!
//! Aggregations are CI-aware: when every contributing row carries a
//! sampled 95% confidence interval for the metric, the aggregate carries
//! one too (summed in quadrature for means; in relative terms for
//! geomeans). Mixed exact/sampled groups drop the interval rather than
//! fabricate one.

use crate::error::HarnessError;
use crate::json::Json;
use crate::report::Table;
use crate::results::{mean_ipc, ResultRow};
use crate::store::{compare_versions, ResultStore};

/// Metric columns every store-loaded view carries, in column order.
pub const METRICS: &[&str] = &["ipc", "speedup", "coverage", "accuracy", "cycles"];

/// CI companion columns (metric → its 95% confidence interval column).
const CI_COMPANIONS: &[(&str, &str)] = &[
    ("ipc", "ipc_ci95"),
    ("coverage", "coverage_ci95"),
    ("accuracy", "accuracy_ci95"),
];

/// An identity field of a [`ResultRow`], addressable in filters and
/// group-bys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Campaign name.
    Figure,
    /// Target display name.
    Workload,
    /// Prefetcher display label.
    Prefetcher,
    /// Config display label.
    Config,
    /// Accesses per workload (numeric).
    Scale,
    /// Sampling-plan suffix ("" = exact).
    Sampling,
    /// Crate version that simulated the cell (version-ordered).
    CodeVersion,
    /// Content address.
    Fingerprint,
}

impl Field {
    /// Every addressable field, in canonical column order.
    pub const ALL: &'static [Field] = &[
        Field::Figure,
        Field::Workload,
        Field::Prefetcher,
        Field::Config,
        Field::Scale,
        Field::Sampling,
        Field::CodeVersion,
        Field::Fingerprint,
    ];

    /// The field's lowercase name (the query grammar's spelling).
    pub fn name(self) -> &'static str {
        match self {
            Field::Figure => "figure",
            Field::Workload => "workload",
            Field::Prefetcher => "prefetcher",
            Field::Config => "config",
            Field::Scale => "scale",
            Field::Sampling => "sampling",
            Field::CodeVersion => "code_version",
            Field::Fingerprint => "fingerprint",
        }
    }

    /// Parses a field name.
    pub fn parse(name: &str) -> Option<Field> {
        Field::ALL.iter().copied().find(|f| f.name() == name)
    }

    fn of(self, row: &ResultRow) -> String {
        match self {
            Field::Figure => row.figure.clone(),
            Field::Workload => row.workload.clone(),
            Field::Prefetcher => row.prefetcher.clone(),
            Field::Config => row.config.clone(),
            Field::Scale => row.scale.to_string(),
            Field::Sampling => row.sampling.clone(),
            Field::CodeVersion => row.code_version.clone(),
            Field::Fingerprint => row.fingerprint.clone(),
        }
    }
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Op {
    fn accepts(self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::{Equal, Greater, Less};
        match self {
            Op::Eq => ordering == Equal,
            Op::Ne => ordering != Equal,
            Op::Lt => ordering == Less,
            Op::Le => ordering != Greater,
            Op::Gt => ordering == Greater,
            Op::Ge => ordering != Less,
        }
    }
}

/// One `field op value` predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    /// Field compared.
    pub field: Field,
    /// Comparison operator.
    pub op: Op,
    /// Right-hand literal.
    pub value: String,
}

impl Filter {
    /// Whether a row passes. `scale` compares numerically, `code_version`
    /// by dotted-segment version order, everything else by byte order.
    pub fn matches(&self, row: &ResultRow) -> bool {
        let ordering = match self.field {
            Field::Scale => match self.value.parse::<u64>() {
                Ok(value) => row.scale.cmp(&value),
                Err(_) => return false,
            },
            Field::CodeVersion => compare_versions(&row.code_version, &self.value),
            field => field.of(row).as_str().cmp(self.value.as_str()),
        };
        self.op.accepts(ordering)
    }
}

/// An aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Arithmetic mean (CI summed in quadrature).
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Row count (no metric needed).
    Count,
    /// Geometric mean (CI propagated in relative terms) — the speedup
    /// aggregation of the paper's figures.
    Geomean,
}

impl Agg {
    fn name(self) -> &'static str {
        match self {
            Agg::Mean => "mean",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Count => "count",
            Agg::Geomean => "geomean",
        }
    }

    fn parse(name: &str) -> Option<Agg> {
        [Agg::Mean, Agg::Min, Agg::Max, Agg::Count, Agg::Geomean]
            .into_iter()
            .find(|a| a.name() == name)
    }
}

/// A parsed query: filters, grouping, one optional aggregation, optional
/// version trend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    /// Conjunctive predicates.
    pub filters: Vec<Filter>,
    /// Grouping fields (empty + agg = one global group).
    pub group_by: Vec<Field>,
    /// Aggregation function; `None` renders raw rows.
    pub agg: Option<Agg>,
    /// Metric the aggregation (or trend) runs over.
    pub metric: Option<String>,
    /// Trend mode: group by `code_version` (ascending) as the innermost
    /// group; implies `all_versions`.
    pub trend: bool,
    /// Keep superseded code versions instead of "newest wins".
    pub all_versions: bool,
}

impl Query {
    /// Parses the shared parameter grammar used by `dspatch-lab query` and
    /// `GET /query` — both surfaces decode to `(key, value)` pairs first,
    /// which is what makes their outputs byte-identical:
    ///
    /// * `where=FIELD OP VALUE` (repeatable; ops `=`, `!=`, `<`, `<=`,
    ///   `>`, `>=`, no spaces) — e.g. `where=prefetcher=SPP`
    /// * `FIELD=VALUE` — shorthand for `where=FIELD=VALUE`
    /// * `group_by=FIELD[,FIELD...]`
    /// * `agg=FN:METRIC` (`mean`/`min`/`max`/`geomean`) or `agg=count`
    /// * `trend=METRIC` — per-code-version trajectory of a metric
    /// * `all_versions=1` — keep superseded code versions
    ///
    /// Metrics: `ipc`, `speedup`, `coverage`, `accuracy`, `cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Spec`] naming the offending parameter —
    /// surfaced as exit 2 by the CLI and HTTP 400 by the server.
    pub fn from_params(params: &[(String, String)]) -> Result<Query, HarnessError> {
        let mut query = Query::default();
        for (key, value) in params {
            match key.as_str() {
                "where" => query.filters.push(parse_filter(value)?),
                "group_by" => {
                    for name in value.split(',') {
                        let field = Field::parse(name.trim()).ok_or_else(|| {
                            HarnessError::spec(format!("group_by: unknown field '{name}'"))
                        })?;
                        if !query.group_by.contains(&field) {
                            query.group_by.push(field);
                        }
                    }
                }
                "agg" => {
                    let (fn_name, metric) = match value.split_once(':') {
                        Some((fn_name, metric)) => (fn_name, Some(metric)),
                        None => (value.as_str(), None),
                    };
                    let agg = Agg::parse(fn_name).ok_or_else(|| {
                        HarnessError::spec(format!(
                            "agg: unknown function '{fn_name}' (want mean/min/max/count/geomean)"
                        ))
                    })?;
                    match (agg, metric) {
                        (Agg::Count, None) => {}
                        (_, Some(metric)) => set_metric(&mut query, metric)?,
                        (_, None) => {
                            return Err(HarnessError::spec(format!(
                                "agg: '{value}' needs a metric (agg={value}:ipc)"
                            )))
                        }
                    }
                    query.agg = Some(agg);
                }
                "trend" => {
                    set_metric(&mut query, value)?;
                    query.trend = true;
                }
                "all_versions" => match value.as_str() {
                    "1" | "true" => query.all_versions = true,
                    "0" | "false" => query.all_versions = false,
                    other => {
                        return Err(HarnessError::spec(format!(
                            "all_versions: want 0/1, got '{other}'"
                        )))
                    }
                },
                field => {
                    let field = Field::parse(field).ok_or_else(|| {
                        HarnessError::spec(format!("unknown query parameter '{key}'"))
                    })?;
                    query.filters.push(Filter {
                        field,
                        op: Op::Eq,
                        value: value.clone(),
                    });
                }
            }
        }
        if query.trend && query.agg.is_none() {
            query.agg = Some(Agg::Mean);
        }
        if matches!(query.agg, Some(Agg::Count)) && query.metric.is_none() {
            query.metric = Some("count".to_owned());
        }
        Ok(query)
    }
}

fn set_metric(query: &mut Query, metric: &str) -> Result<(), HarnessError> {
    if !METRICS.contains(&metric) {
        return Err(HarnessError::spec(format!(
            "unknown metric '{metric}' (want one of {})",
            METRICS.join("/")
        )));
    }
    if let Some(existing) = &query.metric {
        if existing != metric {
            return Err(HarnessError::spec(format!(
                "conflicting metrics '{existing}' and '{metric}': agg and trend must agree"
            )));
        }
    }
    query.metric = Some(metric.to_owned());
    Ok(())
}

fn parse_filter(expr: &str) -> Result<Filter, HarnessError> {
    const OPS: &[(&str, Op)] = &[
        ("!=", Op::Ne),
        ("<=", Op::Le),
        (">=", Op::Ge),
        ("=", Op::Eq),
        ("<", Op::Lt),
        (">", Op::Gt),
    ];
    let mut best: Option<(usize, &str, Op)> = None;
    for &(token, op) in OPS {
        if let Some(pos) = expr.find(token) {
            let better = match best {
                None => true,
                Some((best_pos, best_token, _)) => {
                    pos < best_pos || (pos == best_pos && token.len() > best_token.len())
                }
            };
            if better {
                best = Some((pos, token, op));
            }
        }
    }
    let Some((pos, token, op)) = best else {
        return Err(HarnessError::spec(format!(
            "where: '{expr}' has no operator (want FIELD=VALUE, !=, <, <=, >, >=)"
        )));
    };
    let (name, rest) = expr.split_at(pos);
    let value = &rest[token.len()..];
    let field = Field::parse(name)
        .ok_or_else(|| HarnessError::spec(format!("where: unknown field '{name}'")))?;
    if field == Field::Scale && value.parse::<u64>().is_err() {
        return Err(HarnessError::spec(format!(
            "where: scale compares numerically, got '{value}'"
        )));
    }
    Ok(Filter {
        field,
        op,
        value: value.to_owned(),
    })
}

/// The columnar in-memory view: identity columns plus named metric
/// columns, all parallel vectors indexed by row.
#[derive(Debug, Clone)]
pub struct ColumnarView {
    identity: Vec<(Field, Vec<String>)>,
    scale: Vec<u64>,
    legacy: Vec<bool>,
    metrics: Vec<(String, Vec<f64>)>,
    rows: usize,
}

impl ColumnarView {
    /// Loads a view from the store's rows (sorted canonically, so every
    /// downstream query is byte-stable regardless of index order).
    pub fn from_store(store: &ResultStore) -> Self {
        Self::from_rows(store.rows().cloned().collect())
    }

    /// Builds the view from explicit rows. Rows are sorted canonically;
    /// speedups are computed by joining each row to the `Baseline` row of
    /// the same (workload, config, scale, sampling, code_version).
    pub fn from_rows(mut rows: Vec<ResultRow>) -> Self {
        rows.sort_by_key(canonical_key);
        let baseline_of = |row: &ResultRow| -> Option<usize> {
            if row.is_legacy() || row.prefetcher == "Baseline" {
                return None;
            }
            rows.iter().position(|candidate| {
                candidate.prefetcher == "Baseline"
                    && candidate.workload == row.workload
                    && candidate.config == row.config
                    && candidate.scale == row.scale
                    && candidate.sampling == row.sampling
                    && candidate.code_version == row.code_version
            })
        };
        let speedups: Vec<f64> = rows
            .iter()
            .map(|row| match baseline_of(row) {
                Some(b) if rows[b].result.cores.len() == row.result.cores.len() => {
                    row.result.speedup_over(&rows[b].result)
                }
                _ => f64::NAN,
            })
            .collect();

        let mut view = Self {
            identity: Field::ALL
                .iter()
                .map(|&field| (field, Vec::with_capacity(rows.len())))
                .collect(),
            scale: Vec::with_capacity(rows.len()),
            legacy: Vec::with_capacity(rows.len()),
            metrics: Vec::new(),
            rows: rows.len(),
        };
        let metric = |name: &str| (name.to_owned(), Vec::with_capacity(rows.len()));
        let mut ipc = metric("ipc");
        let mut speedup = metric("speedup");
        let mut coverage = metric("coverage");
        let mut accuracy = metric("accuracy");
        let mut cycles = metric("cycles");
        let mut ipc_ci = metric("ipc_ci95");
        let mut coverage_ci = metric("coverage_ci95");
        let mut accuracy_ci = metric("accuracy_ci95");
        for (index, row) in rows.iter().enumerate() {
            for (field, column) in &mut view.identity {
                column.push(field.of(row));
            }
            view.scale.push(row.scale);
            view.legacy.push(row.is_legacy());
            let accounting = row.result.total_accounting();
            ipc.1.push(mean_ipc(&row.result));
            speedup.1.push(speedups[index]);
            coverage.1.push(nan_if_undefined(accounting.coverage()));
            accuracy.1.push(nan_if_undefined(accounting.accuracy()));
            cycles.1.push(row.result.cycles as f64);
            let sampling = row.result.sampling.as_ref();
            ipc_ci.1.push(sampling.map_or(f64::NAN, |s| s.ipc.ci95));
            coverage_ci
                .1
                .push(sampling.map_or(f64::NAN, |s| s.coverage.ci95));
            accuracy_ci
                .1
                .push(sampling.map_or(f64::NAN, |s| s.accuracy.ci95));
        }
        view.metrics = vec![
            ipc,
            speedup,
            coverage,
            accuracy,
            cycles,
            ipc_ci,
            coverage_ci,
            accuracy_ci,
        ];
        view
    }

    /// Builds a single-metric view from bare `(workload, code_version,
    /// value)` observations — how the perf-snapshot gate loads its two
    /// documents as a two-version trend input.
    pub fn from_named_metric(metric: &str, entries: &[(String, String, f64)]) -> Self {
        let rows = entries.len();
        let mut view = Self {
            identity: Field::ALL
                .iter()
                .map(|&f| (f, vec![String::new(); rows]))
                .collect(),
            scale: vec![0; rows],
            legacy: vec![false; rows],
            metrics: vec![(metric.to_owned(), Vec::with_capacity(rows))],
            rows,
        };
        for (index, (workload, code_version, value)) in entries.iter().enumerate() {
            for (field, column) in &mut view.identity {
                match field {
                    Field::Workload => column[index] = workload.clone(),
                    Field::CodeVersion => column[index] = code_version.clone(),
                    Field::Fingerprint => column[index] = format!("{workload}@{code_version}"),
                    _ => {}
                }
            }
            view.metrics[0].1.push(*value);
        }
        view
    }

    /// Number of rows loaded.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    fn field_column(&self, field: Field) -> &[String] {
        // Field::ALL order is the construction order.
        &self.identity[Field::ALL.iter().position(|&f| f == field).unwrap_or(0)].1
    }

    fn metric_column(&self, name: &str) -> Option<&[f64]> {
        self.metrics
            .iter()
            .find(|(metric, _)| metric == name)
            .map(|(_, column)| column.as_slice())
    }

    fn matches(&self, filter: &Filter, index: usize) -> bool {
        let ordering = match filter.field {
            Field::Scale => match filter.value.parse::<u64>() {
                Ok(value) => self.scale[index].cmp(&value),
                Err(_) => return false,
            },
            Field::CodeVersion => {
                compare_versions(&self.field_column(Field::CodeVersion)[index], &filter.value)
            }
            field => self.field_column(field)[index]
                .as_str()
                .cmp(filter.value.as_str()),
        };
        filter.op.accepts(ordering)
    }

    /// Row indices surviving the query's filters and (unless
    /// `all_versions`/trend) the newest-code-version dedup, in canonical
    /// order.
    fn select(&self, query: &Query) -> Vec<usize> {
        let mut selected: Vec<usize> = (0..self.rows)
            .filter(|&index| query.filters.iter().all(|f| self.matches(f, index)))
            .collect();
        if !query.all_versions && !query.trend {
            selected = self.newest_versions(&selected);
        }
        selected
    }

    /// "Newest code_version wins": keeps, per cell identity, only rows of
    /// that identity's newest version. Legacy rows (identity unknown)
    /// compete only with themselves.
    fn newest_versions(&self, selected: &[usize]) -> Vec<usize> {
        let versions = self.field_column(Field::CodeVersion);
        let identity = |index: usize| -> String {
            if self.legacy[index] {
                format!("legacy|{}", self.field_column(Field::Fingerprint)[index])
            } else {
                format!(
                    "{}|{}|{}|{}|{}",
                    self.field_column(Field::Workload)[index],
                    self.field_column(Field::Prefetcher)[index],
                    self.field_column(Field::Config)[index],
                    self.scale[index],
                    self.field_column(Field::Sampling)[index],
                )
            }
        };
        let mut newest: std::collections::HashMap<String, &str> = std::collections::HashMap::new();
        for &index in selected {
            let key = identity(index);
            let version = versions[index].as_str();
            newest
                .entry(key)
                .and_modify(|best| {
                    if compare_versions(version, best) == std::cmp::Ordering::Greater {
                        *best = version;
                    }
                })
                .or_insert(version);
        }
        selected
            .iter()
            .copied()
            .filter(|&index| newest[&identity(index)] == versions[index])
            .collect()
    }

    /// Runs a query.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Spec`] when the metric is missing for an
    /// aggregation or names a column the view does not carry.
    pub fn run(&self, query: &Query) -> Result<QueryOutput, HarnessError> {
        let selected = self.select(query);
        match query.agg {
            None => Ok(self.render_raw(&selected)),
            Some(agg) => self.render_aggregated(query, agg, &selected),
        }
    }

    /// Raw rows: every identity column (minus fingerprint) plus every
    /// metric column that has at least one defined value.
    fn render_raw(&self, selected: &[usize]) -> QueryOutput {
        let mut columns: Vec<String> = Field::ALL
            .iter()
            .filter(|&&f| f != Field::Fingerprint)
            .map(|f| f.name().to_owned())
            .collect();
        let live_metrics: Vec<&(String, Vec<f64>)> = self
            .metrics
            .iter()
            .filter(|(_, column)| selected.iter().any(|&i| column[i].is_finite()))
            .collect();
        columns.extend(live_metrics.iter().map(|(name, _)| name.clone()));
        let rows = selected
            .iter()
            .map(|&index| {
                let mut row: Vec<Json> = Field::ALL
                    .iter()
                    .filter(|&&f| f != Field::Fingerprint)
                    .map(|&f| match f {
                        Field::Scale => Json::num(self.scale[index] as f64),
                        _ => Json::str(&self.field_column(f)[index]),
                    })
                    .collect();
                row.extend(
                    live_metrics
                        .iter()
                        .map(|(_, column)| json_metric(column[index])),
                );
                row
            })
            .collect();
        QueryOutput { columns, rows }
    }

    fn render_aggregated(
        &self,
        query: &Query,
        agg: Agg,
        selected: &[usize],
    ) -> Result<QueryOutput, HarnessError> {
        // Trend appends code_version as the innermost group.
        let mut group_fields = query.group_by.clone();
        if query.trend && !group_fields.contains(&Field::CodeVersion) {
            group_fields.push(Field::CodeVersion);
        }
        let metric_name = query.metric.as_deref().unwrap_or("count");
        let metric = if agg == Agg::Count && metric_name == "count" {
            None
        } else {
            Some(self.metric_column(metric_name).ok_or_else(|| {
                HarnessError::spec(format!("unknown metric '{metric_name}' for this view"))
            })?)
        };
        let ci = CI_COMPANIONS
            .iter()
            .find(|(name, _)| *name == metric_name)
            .and_then(|(_, companion)| self.metric_column(companion));

        // Group keys in canonical order: group fields compare by value
        // (scale numerically, code_version by version order).
        let mut groups: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
        let mut group_index: std::collections::HashMap<Vec<String>, usize> =
            std::collections::HashMap::new();
        for &index in selected {
            let key: Vec<String> = group_fields
                .iter()
                .map(|&f| self.field_column(f)[index].clone())
                .collect();
            let slot = *group_index.entry(key.clone()).or_insert_with(|| {
                groups.push((key, Vec::new()));
                groups.len() - 1
            });
            groups[slot].1.push(index);
        }
        groups.sort_by(|(a, _), (b, _)| {
            for (position, field) in group_fields.iter().enumerate() {
                let ordering = match field {
                    Field::Scale => {
                        let x = a[position].parse::<u64>().unwrap_or(0);
                        let y = b[position].parse::<u64>().unwrap_or(0);
                        x.cmp(&y)
                    }
                    Field::CodeVersion => compare_versions(&a[position], &b[position]),
                    _ => a[position].cmp(&b[position]),
                };
                if ordering != std::cmp::Ordering::Equal {
                    return ordering;
                }
            }
            std::cmp::Ordering::Equal
        });

        let value_column = match agg {
            Agg::Count => "count".to_owned(),
            _ => format!("{}_{metric_name}", agg.name()),
        };
        let mut columns: Vec<String> = group_fields.iter().map(|f| f.name().to_owned()).collect();
        columns.push(value_column);
        let with_count = agg != Agg::Count;
        if with_count {
            columns.push("count".to_owned());
        }
        // The CI column appears only when some group carries one, so
        // exact-only stores keep a stable column set.
        let mut aggregated: Vec<(Vec<Json>, Option<f64>)> = Vec::new();
        for (key, indices) in &groups {
            let mut row: Vec<Json> = key.iter().map(Json::str).collect();
            let (value, count, interval) = match metric {
                None => (Some(indices.len() as f64), indices.len(), None),
                Some(column) => {
                    let values: Vec<(f64, f64)> = indices
                        .iter()
                        .filter(|&&i| column[i].is_finite())
                        .map(|&i| (column[i], ci.map_or(f64::NAN, |c| c[i])))
                        .collect();
                    let interval = aggregate_ci(agg, &values);
                    (aggregate(agg, &values), values.len(), interval)
                }
            };
            row.push(value.map_or(Json::Null, |v| Json::num(round6(v))));
            if with_count {
                row.push(Json::num(count as f64));
            }
            aggregated.push((row, interval));
        }
        if aggregated.iter().any(|(_, interval)| interval.is_some()) {
            columns.push("ci95".to_owned());
            for (row, interval) in &mut aggregated {
                row.push(interval.map_or(Json::Null, |v| Json::num(round6(v))));
            }
        }
        Ok(QueryOutput {
            columns,
            rows: aggregated.into_iter().map(|(row, _)| row).collect(),
        })
    }
}

/// Canonical row order: identity-major, versions in version order.
fn canonical_key(row: &ResultRow) -> (String, String, String, u64, String, Vec<String>, String) {
    (
        row.figure.clone(),
        row.workload.clone(),
        row.prefetcher.clone(),
        row.scale,
        row.config.clone(),
        // Dotted version segments padded for ordering via the Vec compare.
        row.code_version
            .split('.')
            .map(|segment| format!("{segment:0>12}"))
            .collect(),
        row.fingerprint.clone(),
    )
}

fn nan_if_undefined(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        f64::NAN
    }
}

fn json_metric(value: f64) -> Json {
    if value.is_finite() {
        Json::num(round6(value))
    } else {
        Json::Null
    }
}

fn round6(value: f64) -> f64 {
    crate::json::rounded(value, 1e6)
}

fn aggregate(agg: Agg, values: &[(f64, f64)]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    match agg {
        Agg::Count => Some(n),
        Agg::Mean => Some(values.iter().map(|(v, _)| v).sum::<f64>() / n),
        Agg::Min => values.iter().map(|(v, _)| *v).reduce(f64::min),
        Agg::Max => values.iter().map(|(v, _)| *v).reduce(f64::max),
        Agg::Geomean => {
            Some((values.iter().map(|(v, _)| v.max(1e-12).ln()).sum::<f64>() / n).exp())
        }
    }
}

/// CI of the aggregate, only when **every** contributing row carries one:
/// independent intervals sum in quadrature for a mean, and in relative
/// terms for a geomean. Min/max/count get none.
fn aggregate_ci(agg: Agg, values: &[(f64, f64)]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|(_, ci)| !ci.is_finite()) {
        return None;
    }
    let n = values.len() as f64;
    match agg {
        Agg::Mean => Some(values.iter().map(|(_, ci)| ci * ci).sum::<f64>().sqrt() / n),
        Agg::Geomean => {
            let geomean = aggregate(Agg::Geomean, values)?;
            let relative = values
                .iter()
                .map(|(v, ci)| (ci / v.max(1e-12)).powi(2))
                .sum::<f64>()
                .sqrt()
                / n;
            Some(geomean * relative)
        }
        Agg::Min | Agg::Max | Agg::Count => None,
    }
}

/// A query's result: named columns and typed rows, already rounded —
/// rendering in any format is a pure function of this.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Column names, lowercase.
    pub columns: Vec<String>,
    /// One entry per output row; cells are strings, numbers, or null.
    pub rows: Vec<Vec<Json>>,
}

/// Output encoding of a query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryFormat {
    /// Aligned ASCII table.
    Table,
    /// One JSON document (`{"columns": [...], "rows": [{...}], "matched": N}`).
    Json,
    /// RFC-4180 CSV.
    Csv,
}

impl QueryFormat {
    /// Parses a format name (the CLI's `--format` vocabulary).
    pub fn parse(name: &str) -> Option<QueryFormat> {
        match name {
            "table" => Some(QueryFormat::Table),
            "json" => Some(QueryFormat::Json),
            "csv" => Some(QueryFormat::Csv),
            _ => None,
        }
    }
}

/// Renders a query result. Both `dspatch-lab query` and `GET /query` call
/// this — their bytes are identical by construction.
pub fn render(output: &QueryOutput, format: QueryFormat) -> String {
    match format {
        QueryFormat::Json => {
            let rows = output.rows.iter().map(|row| {
                Json::Obj(
                    output
                        .columns
                        .iter()
                        .zip(row)
                        .map(|(column, value)| (column.clone(), value.clone()))
                        .collect(),
                )
            });
            Json::obj([
                (
                    "columns",
                    Json::Arr(output.columns.iter().map(Json::str).collect()),
                ),
                ("rows", Json::Arr(rows.collect())),
                ("matched", Json::num(output.rows.len() as f64)),
            ])
            .render()
        }
        QueryFormat::Table | QueryFormat::Csv => {
            let table = to_table(output, matches!(format, QueryFormat::Csv));
            match format {
                QueryFormat::Table => table.render(),
                _ => table.to_csv(),
            }
        }
    }
}

fn to_table(output: &QueryOutput, csv: bool) -> Table {
    let mut table = Table::new("query".to_owned(), output.columns.clone());
    for row in &output.rows {
        table.add_row(
            row.iter()
                .map(|value| match value {
                    Json::Null => {
                        if csv {
                            String::new()
                        } else {
                            "-".to_owned()
                        }
                    }
                    Json::Str(text) => text.clone(),
                    other => other.render_compact(),
                })
                .collect(),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_sim::stats::{IntervalEstimate, SamplingStats};
    use dspatch_sim::{
        CacheStats, CoreResult, DramStats, PollutionBreakdown, PrefetchAccounting, SimResult,
    };

    fn sim(ipc_milli: u64) -> SimResult {
        SimResult {
            cores: vec![CoreResult {
                workload: "w".to_owned(),
                prefetcher: "p".to_owned(),
                instructions: ipc_milli,
                finish_cycle: 1000,
                l1: CacheStats::default(),
                l2: CacheStats::default(),
                accounting: PrefetchAccounting {
                    l2_demand_accesses: 100,
                    covered: 40,
                    uncovered: 60,
                    prefetches_issued: 50,
                    prefetches_used: 40,
                    prefetches_unused: 10,
                },
            }],
            llc: CacheStats::default(),
            dram: DramStats::default(),
            pollution: PollutionBreakdown::default(),
            cycles: 1000,
            cache_geometry: Vec::new(),
            sampling: None,
        }
    }

    fn sampled(ipc_milli: u64, ci: f64) -> SimResult {
        SimResult {
            sampling: Some(SamplingStats {
                warmup_accesses: 100,
                interval_accesses: 10,
                intervals: 5,
                seed: 0,
                ipc: IntervalEstimate {
                    mean: ipc_milli as f64 / 1000.0,
                    ci95: ci,
                },
                coverage: IntervalEstimate {
                    mean: 0.4,
                    ci95: ci,
                },
                accuracy: IntervalEstimate {
                    mean: 0.8,
                    ci95: ci,
                },
            }),
            ..sim(ipc_milli)
        }
    }

    fn row(workload: &str, prefetcher: &str, version: &str, result: SimResult) -> ResultRow {
        let mut row = ResultRow::new(
            format!("fp|{workload}|{prefetcher}|{version}"),
            "fig".to_owned(),
            workload.to_owned(),
            prefetcher.to_owned(),
            "1T".to_owned(),
            1000,
            String::new(),
            result,
        );
        row.code_version = version.to_owned();
        row
    }

    fn params(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn filters_group_and_aggregate_deterministically() {
        let rows = vec![
            row("a", "Baseline", "0.1.0", sim(1000)),
            row("a", "SPP", "0.1.0", sim(1500)),
            row("b", "Baseline", "0.1.0", sim(1000)),
            row("b", "SPP", "0.1.0", sim(2000)),
        ];
        let view = ColumnarView::from_rows(rows.clone());
        let query = Query::from_params(&params(&[
            ("prefetcher", "SPP"),
            ("group_by", "prefetcher"),
            ("agg", "geomean:speedup"),
        ]))
        .expect("parses");
        let output = view.run(&query).expect("runs");
        assert_eq!(
            output.columns,
            vec!["prefetcher", "geomean_speedup", "count"]
        );
        assert_eq!(output.rows.len(), 1);
        let expected = (1.5f64.ln() / 2.0 + 2.0f64.ln() / 2.0).exp();
        assert_eq!(output.rows[0][0], Json::str("SPP"));
        assert_eq!(output.rows[0][1].as_f64().unwrap(), round6(expected));
        assert_eq!(output.rows[0][2].as_f64().unwrap(), 2.0);

        // Determinism: a reversed input row order produces identical bytes.
        let reversed = ColumnarView::from_rows(rows.into_iter().rev().collect());
        assert_eq!(
            render(&reversed.run(&query).expect("runs"), QueryFormat::Json),
            render(&output, QueryFormat::Json)
        );
    }

    #[test]
    fn newest_code_version_wins_unless_asked() {
        let rows = vec![
            row("a", "SPP", "0.0.9", sim(1200)),
            row("a", "SPP", "0.1.0", sim(1500)),
        ];
        let view = ColumnarView::from_rows(rows);
        let flat = view.run(&Query::default()).expect("runs");
        assert_eq!(flat.rows.len(), 1, "superseded version hidden by default");
        let all = view
            .run(&Query {
                all_versions: true,
                ..Query::default()
            })
            .expect("runs");
        assert_eq!(all.rows.len(), 2);
    }

    #[test]
    fn trend_orders_versions_ascending_and_keeps_all() {
        let rows = vec![
            row("a", "SPP", "0.0.9", sim(1200)),
            row("a", "SPP", "0.0.10", sim(1300)),
            row("a", "SPP", "0.1.0", sim(1500)),
        ];
        let view = ColumnarView::from_rows(rows);
        let query = Query::from_params(&params(&[("group_by", "prefetcher"), ("trend", "ipc")]))
            .expect("parses");
        let output = view.run(&query).expect("runs");
        assert_eq!(
            output.columns,
            vec!["prefetcher", "code_version", "mean_ipc", "count"]
        );
        let versions: Vec<String> = output
            .rows
            .iter()
            .map(|row| row[1].as_str().unwrap_or("").to_owned())
            .collect();
        // 0.0.10 between 0.0.9 and 0.1.0: numeric segments, not bytes.
        assert_eq!(versions, vec!["0.0.9", "0.0.10", "0.1.0"]);
        assert_eq!(output.rows[0][2].as_f64().unwrap(), 1.2);
        assert_eq!(output.rows[2][2].as_f64().unwrap(), 1.5);
    }

    #[test]
    fn sampled_groups_carry_cis_mixed_groups_drop_them() {
        let rows = vec![
            row("a", "SPP", "0.1.0", sampled(1500, 0.05)),
            row("b", "SPP", "0.1.0", sampled(1300, 0.03)),
        ];
        let view = ColumnarView::from_rows(rows);
        let query = Query::from_params(&params(&[("group_by", "prefetcher"), ("agg", "mean:ipc")]))
            .expect("parses");
        let output = view.run(&query).expect("runs");
        assert_eq!(
            output.columns,
            vec!["prefetcher", "mean_ipc", "count", "ci95"]
        );
        let expected_ci = (0.05f64 * 0.05 + 0.03 * 0.03).sqrt() / 2.0;
        assert_eq!(output.rows[0][3].as_f64().unwrap(), round6(expected_ci));

        // One exact row in the group: no fabricated interval.
        let mixed = ColumnarView::from_rows(vec![
            row("a", "SPP", "0.1.0", sampled(1500, 0.05)),
            row("b", "SPP", "0.1.0", sim(1300)),
        ]);
        let output = mixed.run(&query).expect("runs");
        assert_eq!(output.columns, vec!["prefetcher", "mean_ipc", "count"]);
    }

    #[test]
    fn where_expressions_parse_ops_and_reject_junk() {
        let query = Query::from_params(&params(&[
            ("where", "scale>=1000"),
            ("where", "prefetcher!=Baseline"),
        ]))
        .expect("parses");
        assert_eq!(query.filters.len(), 2);
        assert_eq!(query.filters[0].op, Op::Ge);
        assert_eq!(query.filters[1].op, Op::Ne);

        for bad in [
            &[("where", "no-operator")][..],
            &[("where", "bogus=1")],
            &[("where", "scale>abc")],
            &[("agg", "median:ipc")],
            &[("agg", "mean")],
            &[("trend", "bogus")],
            &[("nonsense", "1")],
            &[("agg", "mean:ipc"), ("trend", "speedup")],
        ] {
            let err = Query::from_params(&params(bad)).expect_err("must reject");
            assert!(matches!(err, HarnessError::Spec { .. }), "{bad:?}: {err:?}");
        }
    }

    #[test]
    fn count_needs_no_metric_and_raw_output_hides_dead_columns() {
        let view = ColumnarView::from_rows(vec![row("a", "SPP", "0.1.0", sim(1500))]);
        let query = Query::from_params(&params(&[("agg", "count")])).expect("parses");
        let output = view.run(&query).expect("runs");
        assert_eq!(output.columns, vec!["count"]);
        assert_eq!(output.rows[0][0].as_f64().unwrap(), 1.0);

        // Raw: no sampled rows and no baseline → no ci95/speedup columns.
        let raw = view.run(&Query::default()).expect("runs");
        assert!(raw.columns.contains(&"ipc".to_owned()));
        assert!(!raw.columns.contains(&"speedup".to_owned()));
        assert!(!raw.columns.contains(&"ipc_ci95".to_owned()));
    }

    #[test]
    fn named_metric_views_drive_version_trends() {
        let view = ColumnarView::from_named_metric(
            "normalized_throughput",
            &[
                ("four_core".to_owned(), "committed".to_owned(), 1.0),
                ("four_core".to_owned(), "measured".to_owned(), 0.9),
                ("baseline".to_owned(), "committed".to_owned(), 1.0),
                ("baseline".to_owned(), "measured".to_owned(), 1.0),
            ],
        );
        let query = Query {
            group_by: vec![Field::Workload],
            agg: Some(Agg::Mean),
            metric: Some("normalized_throughput".to_owned()),
            trend: true,
            ..Query::default()
        };
        let output = view.run(&query).expect("runs");
        assert_eq!(
            output.columns,
            vec![
                "workload",
                "code_version",
                "mean_normalized_throughput",
                "count"
            ]
        );
        assert_eq!(output.rows.len(), 4);
        // Canonical order: workload-major, then version.
        assert_eq!(output.rows[0][0], Json::str("baseline"));
        assert_eq!(output.rows[2][0], Json::str("four_core"));
    }
}
