//! The named-figure registry: every table and figure of the paper,
//! addressable by name for the `dspatch-lab` CLI, the benchmark targets and
//! the parity tests. Each entry routes through the same campaign-backed
//! experiment functions in [`crate::experiments`].

use crate::experiments;
use crate::report::Table;
use crate::runner::RunScale;

/// Every named figure and table of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    /// Figure 1: prefetcher performance scaling with DRAM bandwidth.
    Fig1,
    /// Figure 4: BOP / SMS / SPP per category.
    Fig4,
    /// Figure 5: SMS performance vs pattern-history-table size.
    Fig5,
    /// Figure 6: bandwidth scaling including eSPP and eBOP.
    Fig6,
    /// Figure 11: delta distribution and compression mispredictions.
    Fig11,
    /// Figure 12: the full single-thread line-up.
    Fig12,
    /// Figure 13: per-workload memory-intensive speedups.
    Fig13,
    /// Figure 14: adjunct prefetchers to SPP.
    Fig14,
    /// Figure 15: bandwidth scaling with DSPatch+SPP.
    Fig15,
    /// Figure 16: coverage and mispredictions.
    Fig16,
    /// Figure 17: homogeneous multi-programmed mixes.
    Fig17,
    /// Figure 18: mixes across DRAM speeds.
    Fig18,
    /// Figure 19: accuracy-biased-pattern ablation.
    Fig19,
    /// Figure 20: prefetch pollution breakdown.
    Fig20,
    /// Table 1: DSPatch storage overhead.
    Table1,
    /// Table 3: evaluated prefetcher configurations.
    Table3,
}

impl FigureId {
    /// Every named figure/table, in paper order.
    pub const ALL: [FigureId; 16] = [
        FigureId::Fig1,
        FigureId::Fig4,
        FigureId::Fig5,
        FigureId::Fig6,
        FigureId::Fig11,
        FigureId::Fig12,
        FigureId::Fig13,
        FigureId::Fig14,
        FigureId::Fig15,
        FigureId::Fig16,
        FigureId::Fig17,
        FigureId::Fig18,
        FigureId::Fig19,
        FigureId::Fig20,
        FigureId::Table1,
        FigureId::Table3,
    ];

    /// The CLI name ("fig12", "table1").
    pub fn name(self) -> &'static str {
        match self {
            FigureId::Fig1 => "fig1",
            FigureId::Fig4 => "fig4",
            FigureId::Fig5 => "fig5",
            FigureId::Fig6 => "fig6",
            FigureId::Fig11 => "fig11",
            FigureId::Fig12 => "fig12",
            FigureId::Fig13 => "fig13",
            FigureId::Fig14 => "fig14",
            FigureId::Fig15 => "fig15",
            FigureId::Fig16 => "fig16",
            FigureId::Fig17 => "fig17",
            FigureId::Fig18 => "fig18",
            FigureId::Fig19 => "fig19",
            FigureId::Fig20 => "fig20",
            FigureId::Table1 => "table1",
            FigureId::Table3 => "table3",
        }
    }

    /// One-line description for `dspatch-lab --list`.
    pub fn description(self) -> &'static str {
        match self {
            FigureId::Fig1 => "prefetcher performance scaling with DRAM bandwidth",
            FigureId::Fig4 => "BOP / SMS / SPP performance delta per category",
            FigureId::Fig5 => "SMS performance vs pattern-history-table size",
            FigureId::Fig6 => "bandwidth scaling including eSPP and eBOP",
            FigureId::Fig11 => "delta distribution and 128B-compression mispredictions",
            FigureId::Fig12 => "single-thread performance delta over baseline",
            FigureId::Fig13 => "per-workload speedups on the memory-intensive subset",
            FigureId::Fig14 => "adjunct prefetchers to SPP",
            FigureId::Fig15 => "bandwidth scaling with DSPatch+SPP",
            FigureId::Fig16 => "coverage and mispredictions per category",
            FigureId::Fig17 => "homogeneous 4-core multi-programmed mixes",
            FigureId::Fig18 => "homogeneous and heterogeneous mixes across DRAM speeds",
            FigureId::Fig19 => "accuracy-biased-pattern ablation",
            FigureId::Fig20 => "LLC pollution breakdown of an aggressive streamer",
            FigureId::Table1 => "DSPatch storage overhead",
            FigureId::Table3 => "storage of every evaluated prefetcher",
        }
    }

    /// Parses a figure name. Accepts zero-padded forms ("fig04") and is
    /// ASCII case-insensitive.
    pub fn parse(name: &str) -> Option<FigureId> {
        let normalized: String = name
            .trim()
            .to_ascii_lowercase()
            .replace("figure", "fig")
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '_' && *c != '-')
            .collect();
        // Strip leading zeros from the number ("fig04" → "fig4",
        // "table01" → "table1").
        let normalized = match normalized.find(|c: char| c.is_ascii_digit()) {
            Some(split) => {
                let (prefix, digits) = normalized.split_at(split);
                let digits = digits.trim_start_matches('0');
                let digits = if digits.is_empty() { "0" } else { digits };
                format!("{prefix}{digits}")
            }
            None => normalized,
        };
        FigureId::ALL.into_iter().find(|id| id.name() == normalized)
    }

    /// Regenerates the figure's data at `scale` and returns its table. The
    /// simulation-backed figures all run through the shared campaign engine;
    /// Figure 11 is pure trace analysis and Tables 1/3 are static storage
    /// arithmetic, so `scale` does not affect the latter two.
    pub fn run(self, scale: &RunScale) -> Table {
        match self {
            FigureId::Fig1 => experiments::fig1_bandwidth_scaling_baselines(scale).to_table(),
            FigureId::Fig4 => experiments::fig4_baseline_prefetchers(scale).to_table(),
            FigureId::Fig5 => experiments::fig5_sms_storage_sweep(scale).to_table(),
            FigureId::Fig6 => experiments::fig6_bandwidth_scaling_enhanced(scale).to_table(),
            FigureId::Fig11 => experiments::fig11_delta_and_compression(scale).to_table(),
            FigureId::Fig12 => experiments::fig12_single_thread(scale).to_table(),
            FigureId::Fig13 => experiments::fig13_memory_intensive(scale).to_table(),
            FigureId::Fig14 => experiments::fig14_adjuncts(scale).to_table(),
            FigureId::Fig15 => experiments::fig15_bandwidth_scaling_dspatch(scale).to_table(),
            FigureId::Fig16 => experiments::fig16_coverage(scale).to_table(),
            FigureId::Fig17 => experiments::fig17_homogeneous(scale).to_table(),
            FigureId::Fig18 => experiments::fig18_mixes_and_bandwidth(scale).to_table(),
            FigureId::Fig19 => experiments::fig19_ablation(scale).to_table(),
            FigureId::Fig20 => experiments::fig20_pollution(scale).to_table(),
            FigureId::Table1 => experiments::table1_storage(),
            FigureId::Table3 => experiments::table3_prefetcher_storage(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for id in FigureId::ALL {
            assert_eq!(FigureId::parse(id.name()), Some(id), "{}", id.name());
            assert!(!id.description().is_empty());
        }
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(FigureId::parse("Fig04"), Some(FigureId::Fig4));
        assert_eq!(FigureId::parse("figure 12"), Some(FigureId::Fig12));
        assert_eq!(FigureId::parse("FIG-17"), Some(FigureId::Fig17));
        assert_eq!(FigureId::parse("table_1"), Some(FigureId::Table1));
        assert_eq!(FigureId::parse("table01"), Some(FigureId::Table1));
        assert_eq!(FigureId::parse("fig2"), None);
    }

    #[test]
    fn static_tables_run_without_simulation() {
        let scale = RunScale {
            accesses_per_workload: 100,
            workloads_per_category: 1,
            mixes: 1,
            threads: 1,
            sim_workers: 0,
            sampling: None,
        };
        assert!(FigureId::Table1.run(&scale).render().contains("SPT"));
        assert!(FigureId::Table3.run(&scale).render().contains("DSPatch"));
    }
}
