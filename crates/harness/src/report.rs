//! Report rendering: aligned ASCII tables, CSV and JSON (through the
//! workspace's single JSON emitter, [`crate::json`]).

use crate::json::Json;
use std::fmt;

/// A simple column-aligned table renderable as plain text, CSV or JSON.
///
/// # Example
///
/// ```
/// use dspatch_harness::Table;
/// let mut table = Table::new("Fig. X", vec!["workload".into(), "speedup".into()]);
/// table.add_row(vec!["mcf".into(), "1.26".into()]);
/// let text = table.render();
/// assert!(text.contains("mcf") && text.contains("1.26"));
/// assert!(table.to_csv().contains("mcf,1.26"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text. Column widths count
    /// characters, not bytes, so multi-byte labels ("≥", "µ") do not skew
    /// the alignment.
    pub fn render(&self) -> String {
        let width_of = |cell: &String| cell.chars().count();
        let mut widths: Vec<usize> = self.headers.iter().map(width_of).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(width_of(cell));
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let pad = widths[i].saturating_sub(c.chars().count());
                    format!("{}{}", c, " ".repeat(pad))
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as RFC 4180 CSV: a header row then the data rows,
    /// with fields containing commas, quotes or newlines quoted and embedded
    /// quotes doubled. The title is not part of the CSV payload.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &String| {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.clone()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            out.push_str(&row.iter().map(escape).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Parses an RFC 4180 CSV document (as produced by [`Table::to_csv`])
    /// back into a table with the given title: quoted fields may contain
    /// commas, CR/LF line breaks and doubled quotes. `to_csv` → `from_csv`
    /// round-trips every cell byte for byte.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is empty, a quoted field is
    /// unterminated, or a data row's width differs from the header's.
    pub fn from_csv(title: impl Into<String>, csv: &str) -> Result<Table, String> {
        let mut records: Vec<Vec<String>> = Vec::new();
        let mut record: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut chars = csv.chars().peekable();
        // Tracks whether any character of the current record was consumed,
        // so a trailing newline does not produce a phantom empty record.
        let mut in_record = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    in_record = true;
                    loop {
                        match chars.next() {
                            Some('"') => {
                                if chars.peek() == Some(&'"') {
                                    chars.next();
                                    field.push('"');
                                } else {
                                    break;
                                }
                            }
                            Some(inner) => field.push(inner),
                            None => return Err("unterminated quoted field".to_owned()),
                        }
                    }
                }
                ',' => {
                    in_record = true;
                    record.push(std::mem::take(&mut field));
                }
                '\n' => {
                    if in_record {
                        record.push(std::mem::take(&mut field));
                        records.push(std::mem::take(&mut record));
                        in_record = false;
                    }
                }
                '\r' if chars.peek() == Some(&'\n') => {} // CRLF: handled by '\n'
                other => {
                    in_record = true;
                    field.push(other);
                }
            }
        }
        if in_record {
            record.push(field);
            records.push(record);
        }
        let mut records = records.into_iter();
        let headers = records.next().ok_or_else(|| "empty CSV".to_owned())?;
        let mut table = Table::new(title, headers);
        for row in records {
            if row.len() != table.headers.len() {
                return Err(format!(
                    "row width {} does not match header width {}",
                    row.len(),
                    table.headers.len()
                ));
            }
            table.rows.push(row);
        }
        Ok(table)
    }

    /// The table as a JSON document: `{"title", "headers", "rows"}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(&self.title)),
            ("headers", Json::arr(self.headers.iter().map(Json::str))),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| Json::arr(row.iter().map(Json::str)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fractional delta (e.g. `0.063`) as a percentage string ("6.3%").
pub fn percent(delta: f64) -> String {
    format!("{:.1}%", delta * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_and_rows() {
        let mut t = Table::new("Demo", vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let text = t.render();
        assert!(text.starts_with("Demo\n"));
        assert!(text.contains("xxxxx"));
        assert_eq!(text.lines().count(), 5);
        // Columns are aligned: the second column starts at the same offset.
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let col = lines[0].find("bbbb").unwrap();
        assert_eq!(lines[2].find('1'), Some(col));
    }

    #[test]
    fn multibyte_labels_do_not_skew_alignment() {
        // "≥128B" is 5 characters but 7 bytes; byte-based widths used to pad
        // the following column two cells too far right.
        let mut t = Table::new("Align", vec!["range".into(), "v".into()]);
        t.add_row(vec!["≥128B".into(), "1".into()]);
        t.add_row(vec!["<128B".into(), "2".into()]);
        let lines: Vec<String> = t.render().lines().skip(1).map(str::to_owned).collect();
        let col_of = |line: &str| {
            line.chars()
                .rev()
                .position(|c| !c.is_whitespace())
                .map(|from_end| line.chars().count() - 1 - from_end)
                .unwrap()
        };
        // The last column's single-character cells land on the same
        // character column in every row.
        assert_eq!(col_of(&lines[1]), col_of(&lines[2]));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_is_rejected() {
        let mut t = Table::new("Demo", vec!["a".into()]);
        t.add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.063), "6.3%");
        assert_eq!(percent(-0.02), "-2.0%");
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new("T", vec!["h".into()]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn csv_escapes_delimiters_and_quotes() {
        let mut t = Table::new("CSV", vec!["name".into(), "value".into()]);
        t.add_row(vec!["plain".into(), "1".into()]);
        t.add_row(vec!["with,comma".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_round_trips_hostile_cells() {
        // Workload and mix names can carry commas, quotes and even line
        // breaks; every cell must survive to_csv → from_csv byte for byte.
        let mut t = Table::new(
            "RFC 4180",
            vec!["name".into(), "value".into(), "note".into()],
        );
        t.add_row(vec!["plain".into(), "1.0".into(), String::new()]);
        t.add_row(vec![
            "mix(mcf,lbm,gcc)".into(),
            "say \"hi\"".into(),
            "line\nbreak".into(),
        ]);
        t.add_row(vec![
            "\"fully quoted\"".into(),
            "trailing,comma,".into(),
            "cr\r\nlf".into(),
        ]);
        let csv = t.to_csv();
        let parsed = Table::from_csv("RFC 4180", &csv).expect("round-trip parse");
        assert_eq!(parsed, t);
    }

    #[test]
    fn from_csv_rejects_malformed_documents() {
        assert!(Table::from_csv("t", "").is_err(), "empty document");
        assert!(
            Table::from_csv("t", "a,b\n\"unterminated").is_err(),
            "unterminated quote"
        );
        assert!(
            Table::from_csv("t", "a,b\n1,2,3\n").is_err(),
            "ragged row width"
        );
    }

    #[test]
    fn from_csv_handles_crlf_and_missing_trailing_newline() {
        let parsed = Table::from_csv("t", "a,b\r\n1,2\r\n3,4").expect("parse");
        assert_eq!(parsed.headers, vec!["a", "b"]);
        assert_eq!(parsed.rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn json_form_parses_back() {
        let mut t = Table::new("J", vec!["k".into()]);
        t.add_row(vec!["v".into()]);
        let json = t.to_json();
        assert_eq!(json.get("title").and_then(Json::as_str), Some("J"));
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(reparsed, json);
    }
}
