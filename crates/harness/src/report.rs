//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple column-aligned ASCII table.
///
/// # Example
///
/// ```
/// use dspatch_harness::Table;
/// let mut table = Table::new("Fig. X", vec!["workload".into(), "speedup".into()]);
/// table.add_row(vec!["mcf".into(), "1.26".into()]);
/// let text = table.render();
/// assert!(text.contains("mcf") && text.contains("1.26"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fractional delta (e.g. `0.063`) as a percentage string ("6.3%").
pub fn percent(delta: f64) -> String {
    format!("{:.1}%", delta * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_and_rows() {
        let mut t = Table::new("Demo", vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let text = t.render();
        assert!(text.starts_with("Demo\n"));
        assert!(text.contains("xxxxx"));
        assert_eq!(text.lines().count(), 5);
        // Columns are aligned: the second column starts at the same offset.
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let col = lines[0].find("bbbb").unwrap();
        assert_eq!(lines[2].find('1'), Some(col));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_is_rejected() {
        let mut t = Table::new("Demo", vec!["a".into()]);
        t.add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.063), "6.3%");
        assert_eq!(percent(-0.02), "-2.0%");
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new("T", vec!["h".into()]);
        assert_eq!(format!("{t}"), t.render());
    }
}
