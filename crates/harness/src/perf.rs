//! Fixed-scenario simulator-throughput measurement.
//!
//! The paper's evaluation simulates hundreds of millions of accesses, so the
//! simulator's own throughput — not model fidelity — bounds how many
//! scenarios a given machine can sweep. This module pins down three fixed,
//! deterministic scenarios and measures how fast the simulator retires them,
//! in simulated accesses per wall-clock second and simulated cycles per
//! wall-clock second:
//!
//! * `baseline_single_thread` — one core with the paper's baseline
//!   configuration (L1 PC-stride prefetcher, no L2 prefetcher). Every figure
//!   runs this configuration once per workload for speedup normalization, so
//!   it gates roughly half of all experiment wall-clock.
//! * `dspatch_spp_single_thread` — the same trace with the headline
//!   DSPatch+SPP prefetcher, adding the full train-predict-issue-fill load.
//! * `four_core` — a 4-core multi-programmed mix (DSPatch+SPP per core)
//!   sharing LLC and DRAM.
//!
//! The `perf_snapshot` binary wraps [`run_snapshot`] and writes the result to
//! `BENCH_sim_throughput.json`, populating the repository's performance
//! trajectory. Numbers are comparable only within one machine/build
//! environment; the JSON exists to catch *relative* regressions over time.

use crate::json::Json;
use crate::runner::PrefetcherKind;
use dspatch_prefetchers::AnyPrefetcher;
use dspatch_sim::{SimulationBuilder, SystemConfig};
use dspatch_trace::{
    ChainSource, GeneratorSpec, IntoTraceSource, PatternGenerator, PointerChaseGen,
    SpatialPatternGen, StreamGen, SynthSource, Trace, TraceSource,
};
use std::time::Instant;

/// Throughput measured for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioThroughput {
    /// Simulated memory accesses (trace records) retired.
    pub accesses: u64,
    /// Simulated core cycles the run covered.
    pub cycles: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
}

impl ScenarioThroughput {
    /// Simulated accesses per wall-clock second.
    pub fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.wall_seconds.max(1e-9)
    }

    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_seconds.max(1e-9)
    }
}

/// Host logical CPU count ([`std::thread::available_parallelism`]),
/// recorded in every snapshot document so cross-host comparisons are
/// visible instead of silently wrong.
pub fn host_cpus() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// The result of one snapshot run: the four fixed headline scenarios plus
/// one single-thread row per registry prefetcher.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotReport {
    /// Logical CPUs of the measuring host ([`host_cpus`]).
    pub host_cpus: u64,
    /// One core, baseline configuration (no L2 prefetcher).
    pub baseline_single_thread: ScenarioThroughput,
    /// One core running DSPatch+SPP over a **materialized** trace.
    pub dspatch_spp_single_thread: ScenarioThroughput,
    /// The same workload and prefetcher as `dspatch_spp_single_thread`, fed
    /// through the **streaming** `TraceSource` path (records generated
    /// lazily, O(1) trace memory). Comparing the two rows prices the
    /// streaming layer directly: same records, same machine, different
    /// delivery.
    pub streaming_single_thread: ScenarioThroughput,
    /// The DSPatch+SPP single-thread scenario under **interval sampling**
    /// (2% functional warm-up, ten 0.2% measured intervals, gaps skipped
    /// at trace speed). `accesses`
    /// counts the whole trace — fast-forwarded records included — so
    /// `accesses_per_sec` is the *effective* rate sampling buys: the same
    /// workload coverage per wall-clock second a user of `--sample` sees,
    /// not the detailed-simulation rate.
    pub sampled_single_thread: ScenarioThroughput,
    /// Four cores (DSPatch+SPP each) sharing LLC and DRAM.
    pub four_core: ScenarioThroughput,
    /// The same 4-core scenario on the parallel epoch engine
    /// (`parallel_cores = true`), one row per epoch-worker count. The
    /// `workers = 1` row prices the bounded-lag schedule itself (no
    /// threading); the higher rows price the actual thread scaling. Every
    /// row simulates the identical result — the engine is bit-identical
    /// across worker counts — so the rows differ only in wall-clock.
    pub multi_core_parallel: Vec<(usize, ScenarioThroughput)>,
    /// One single-thread row per registry prefetcher (same trace and
    /// machine as the headline rows), keyed by
    /// [`PrefetcherKind::spec_name`]. This is what attributes throughput
    /// wins and regressions to individual prefetchers rather than to the
    /// machine model.
    pub per_prefetcher: Vec<(&'static str, ScenarioThroughput)>,
}

impl SnapshotReport {
    /// Renders the report as the `BENCH_sim_throughput.json` document,
    /// through the workspace's single JSON emitter ([`crate::json`]).
    pub fn to_json(&self) -> String {
        fn scenario(s: &ScenarioThroughput) -> Json {
            let round = crate::json::rounded;
            Json::obj([
                ("accesses", Json::num(s.accesses as f64)),
                ("cycles", Json::num(s.cycles as f64)),
                ("wall_seconds", Json::num(round(s.wall_seconds, 1e6))),
                (
                    "accesses_per_sec",
                    Json::num(round(s.accesses_per_sec(), 10.0)),
                ),
                ("cycles_per_sec", Json::num(round(s.cycles_per_sec(), 10.0))),
            ])
        }
        Json::obj([
            ("benchmark", Json::str("sim_throughput")),
            ("host_cpus", Json::num(self.host_cpus as f64)),
            (
                "baseline_single_thread",
                scenario(&self.baseline_single_thread),
            ),
            (
                "dspatch_spp_single_thread",
                scenario(&self.dspatch_spp_single_thread),
            ),
            (
                "streaming_single_thread",
                scenario(&self.streaming_single_thread),
            ),
            (
                "sampled_single_thread",
                scenario(&self.sampled_single_thread),
            ),
            ("four_core", scenario(&self.four_core)),
            (
                "multi_core_parallel",
                Json::obj(
                    self.multi_core_parallel
                        .iter()
                        .map(|(workers, s)| (format!("workers_{workers}"), scenario(s))),
                ),
            ),
            (
                "per_prefetcher",
                Json::obj(
                    self.per_prefetcher
                        .iter()
                        .map(|(name, s)| (*name, scenario(s))),
                ),
            ),
        ])
        .render()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "baseline 1T: {:.0} acc/s ({:.2} Mcyc/s) | DSPatch+SPP 1T: {:.0} acc/s ({:.2} Mcyc/s) | streaming 1T: {:.0} acc/s ({:.2} Mcyc/s) | 4-core: {:.0} acc/s ({:.2} Mcyc/s)",
            self.baseline_single_thread.accesses_per_sec(),
            self.baseline_single_thread.cycles_per_sec() / 1e6,
            self.dspatch_spp_single_thread.accesses_per_sec(),
            self.dspatch_spp_single_thread.cycles_per_sec() / 1e6,
            self.streaming_single_thread.accesses_per_sec(),
            self.streaming_single_thread.cycles_per_sec() / 1e6,
            self.four_core.accesses_per_sec(),
            self.four_core.cycles_per_sec() / 1e6,
        );
        line.push_str(&format!(
            " | sampled 1T: {:.0} eff acc/s",
            self.sampled_single_thread.accesses_per_sec()
        ));
        for (workers, s) in &self.multi_core_parallel {
            line.push_str(&format!(
                " | 4-core {}w: {:.0} acc/s",
                workers,
                s.accesses_per_sec()
            ));
        }
        line
    }
}

/// The fixed single-thread snapshot trace: a deterministic blend of
/// streaming, sparse-spatial and pointer-chasing access behaviour so the
/// run exercises every level of the hierarchy, the DRAM model and both
/// prefetcher hook points. Gap values (non-memory instructions per access)
/// match the canonical workload suite in `dspatch-trace` (36–48), so the
/// snapshot's compute-to-memory ratio is representative of the figures'
/// experiments rather than an artificially access-dense stress test.
pub fn snapshot_single_trace(accesses: usize) -> Trace {
    dspatch_trace::collect_source(&mut snapshot_single_source(accesses))
}

/// The streaming form of [`snapshot_single_trace`] — which is defined as
/// this source collected, so the two agree bit for bit and the phase knobs
/// live in exactly one place. Feeding this to the simulator prices the
/// streaming layer against the materialized path.
pub fn snapshot_single_source(accesses: usize) -> ChainSource {
    let third = accesses / 3;
    let phases: [(GeneratorSpec, u64, usize); 3] = [
        (
            GeneratorSpec::Stream(StreamGen {
                streams: 2,
                gap: 48,
                store_percent: 10,
            }),
            0xD5,
            third,
        ),
        (
            GeneratorSpec::Spatial(SpatialPatternGen {
                layouts: 8,
                density: 12,
                reorder_window: 4,
                working_set_pages: 1 << 16,
                gap: 40,
            }),
            0xD5 + 1,
            third,
        ),
        (
            GeneratorSpec::PointerChase(PointerChaseGen {
                nodes: 1 << 14,
                node_bytes: 192,
                gap: 36,
            }),
            0xD5 + 2,
            accesses - 2 * third,
        ),
    ];
    ChainSource::new(
        "perf-snapshot-single",
        phases
            .into_iter()
            .map(|(spec, seed, len)| {
                Box::new(SynthSource::new("phase", spec, seed, len)) as Box<dyn TraceSource>
            })
            .collect(),
    )
}

/// The four per-core traces of the fixed multi-programmed snapshot.
pub fn snapshot_multi_traces(accesses_per_core: usize) -> Vec<Trace> {
    (0..4u64)
        .map(|core| {
            Trace::new(
                format!("perf-snapshot-core{core}"),
                SpatialPatternGen {
                    layouts: 6,
                    density: 10,
                    reorder_window: 3,
                    working_set_pages: 1 << 17,
                    gap: 40,
                }
                .generate_records(0xC0DE + core, accesses_per_core),
            )
        })
        .collect()
}

fn measure(trace_count: u64, run: impl FnOnce() -> u64) -> ScenarioThroughput {
    let start = Instant::now();
    let cycles = run();
    let wall_seconds = start.elapsed().as_secs_f64();
    ScenarioThroughput {
        accesses: trace_count,
        cycles,
        wall_seconds,
    }
}

fn dspatch_plus_spp() -> AnyPrefetcher {
    PrefetcherKind::DspatchPlusSpp.build_any()
}

fn baseline() -> AnyPrefetcher {
    PrefetcherKind::Baseline.build_any()
}

fn run_single(
    source: impl IntoTraceSource,
    count: u64,
    prefetcher: impl Into<AnyPrefetcher>,
) -> ScenarioThroughput {
    measure(count, move || {
        SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(source, prefetcher)
            .run()
            .cycles
    })
}

/// Runs the baseline single-thread snapshot scenario once and times it.
pub fn run_baseline_snapshot(accesses: usize) -> ScenarioThroughput {
    run_single(snapshot_single_trace(accesses), accesses as u64, baseline())
}

/// Runs the DSPatch+SPP single-thread snapshot scenario once and times it.
pub fn run_single_thread_snapshot(accesses: usize) -> ScenarioThroughput {
    run_single(
        snapshot_single_trace(accesses),
        accesses as u64,
        dspatch_plus_spp(),
    )
}

/// Runs the streaming variant of the DSPatch+SPP single-thread scenario —
/// identical records delivered through the lazy `TraceSource` path — once
/// and times it.
pub fn run_streaming_snapshot(accesses: usize) -> ScenarioThroughput {
    run_single(
        snapshot_single_source(accesses),
        accesses as u64,
        dspatch_plus_spp(),
    )
}

/// The sampling plan behind the `sampled_single_thread` row: 2% of the
/// trace as functional warm-up (which also bounds each interval's re-warm),
/// then ten seed-placed intervals of 0.2% each — ~2% simulated in detail,
/// ~22% functionally warmed, the rest skipped at trace speed. These are
/// the ratios a real 100M+-access sampled campaign uses, so the row prices
/// the speedup `--sample` actually delivers.
pub fn snapshot_sampling_plan(accesses: usize) -> crate::sampling::SamplingPlan {
    crate::sampling::SamplingPlan {
        warmup_accesses: (accesses / 50).max(1) as u64,
        interval_accesses: (accesses / 500).max(1) as u64,
        intervals: 10,
        seed: 0xD5,
    }
}

/// Runs the sampled variant of the DSPatch+SPP single-thread scenario and
/// times it. `accesses` counts the whole trace (warm-up and fast-forward
/// included), so the row reports *effective* accesses per second.
pub fn run_sampled_snapshot(accesses: usize) -> ScenarioThroughput {
    let plan = snapshot_sampling_plan(accesses);
    measure(accesses as u64, move || {
        crate::sampling::run_sampled(
            Box::new(snapshot_single_source(accesses)),
            dspatch_plus_spp(),
            &SystemConfig::single_thread(),
            &plan,
            None,
        )
        .map(|sim| sim.cycles)
        .unwrap_or_else(|error| panic!("sampled snapshot scenario failed: {error}"))
    })
}

/// Runs the single-thread snapshot for one registry prefetcher kind.
pub fn run_prefetcher_snapshot(kind: PrefetcherKind, accesses: usize) -> ScenarioThroughput {
    run_single(
        snapshot_single_trace(accesses),
        accesses as u64,
        kind.build_any(),
    )
}

/// The registry line-up measured by the per-prefetcher rows: every
/// [`PrefetcherKind`] except the Figure 19 ablation variants (which share
/// DSPatch's code paths and add no attribution signal).
pub fn attribution_lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::Baseline,
        PrefetcherKind::Streamer,
        PrefetcherKind::Bop,
        PrefetcherKind::Ebop,
        PrefetcherKind::Sms,
        PrefetcherKind::SmsIso,
        PrefetcherKind::Spp,
        PrefetcherKind::Espp,
        PrefetcherKind::Dspatch,
        PrefetcherKind::DspatchPlusSpp,
        PrefetcherKind::BopPlusSpp,
        PrefetcherKind::EbopPlusSpp,
        PrefetcherKind::SmsIsoPlusSpp,
    ]
}

/// Runs the 4-core snapshot scenario once and times it.
pub fn run_four_core_snapshot(accesses_per_core: usize) -> ScenarioThroughput {
    let traces = snapshot_multi_traces(accesses_per_core);
    let count = traces.iter().map(|t| t.records.len() as u64).sum();
    measure(count, move || {
        let mut builder = SimulationBuilder::new(SystemConfig::multi_programmed());
        for trace in traces {
            builder = builder.with_core(trace, dspatch_plus_spp());
        }
        builder.run().cycles
    })
}

/// Runs the 4-core snapshot on the parallel epoch engine with a fixed
/// worker count, and times it. The simulated result is bit-identical to
/// [`run_four_core_snapshot`]'s semantics on the epoch schedule for every
/// `workers`, so rows differ only in wall-clock.
pub fn run_four_core_parallel_snapshot(
    accesses_per_core: usize,
    workers: usize,
) -> ScenarioThroughput {
    let traces = snapshot_multi_traces(accesses_per_core);
    let count = traces.iter().map(|t| t.records.len() as u64).sum();
    let mut config = SystemConfig::multi_programmed();
    config.parallel_cores = true;
    config.parallel_workers = workers;
    measure(count, move || {
        let mut builder = SimulationBuilder::new(config);
        for trace in traces {
            builder = builder.with_core(trace, dspatch_plus_spp());
        }
        builder.run().cycles
    })
}

/// The epoch-worker counts measured by the `multi_core_parallel` rows.
pub const PARALLEL_WORKER_ROWS: [usize; 3] = [1, 2, 4];

/// Runs all three snapshot scenarios. `repeats` > 1 keeps the best (lowest
/// wall-clock) run per scenario, damping scheduler noise.
pub fn run_snapshot(
    single_accesses: usize,
    per_core_accesses: usize,
    repeats: usize,
) -> SnapshotReport {
    let repeats = repeats.max(1);
    let best = |f: &dyn Fn() -> ScenarioThroughput| {
        (1..repeats).map(|_| f()).fold(f(), |best, next| {
            if next.wall_seconds < best.wall_seconds {
                next
            } else {
                best
            }
        })
    };
    let baseline_single_thread = best(&|| run_baseline_snapshot(single_accesses));
    let dspatch_spp_single_thread = best(&|| run_single_thread_snapshot(single_accesses));
    let per_prefetcher = attribution_lineup()
        .into_iter()
        .map(|kind| {
            // The Baseline and DSPatch+SPP attribution rows are the same
            // scenario as the headline rows — reuse those measurements
            // instead of re-running two best-of sets per snapshot.
            let throughput = match kind {
                PrefetcherKind::Baseline => baseline_single_thread,
                PrefetcherKind::DspatchPlusSpp => dspatch_spp_single_thread,
                _ => best(&|| run_prefetcher_snapshot(kind, single_accesses)),
            };
            (kind.spec_name(), throughput)
        })
        .collect();
    SnapshotReport {
        host_cpus: host_cpus(),
        baseline_single_thread,
        dspatch_spp_single_thread,
        streaming_single_thread: best(&|| run_streaming_snapshot(single_accesses)),
        sampled_single_thread: best(&|| run_sampled_snapshot(single_accesses)),
        four_core: best(&|| run_four_core_snapshot(per_core_accesses)),
        multi_core_parallel: PARALLEL_WORKER_ROWS
            .iter()
            .map(|&workers| {
                (
                    workers,
                    best(&|| run_four_core_parallel_snapshot(per_core_accesses, workers)),
                )
            })
            .collect(),
        per_prefetcher,
    }
}

/// Flattens a snapshot JSON document into `(row name, accesses_per_sec)`
/// pairs — the headline scenarios plus the `multi_core_parallel.*` and
/// `per_prefetcher.*` sub-rows.
pub fn throughput_rows(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut push = |name: String, row: &Json| {
        if let Some(rate) = row.get("accesses_per_sec").and_then(Json::as_f64) {
            out.push((name, rate));
        }
    };
    for name in [
        "baseline_single_thread",
        "dspatch_spp_single_thread",
        "streaming_single_thread",
        "sampled_single_thread",
        "four_core",
    ] {
        if let Some(row) = doc.get(name) {
            push(name.to_owned(), row);
        }
    }
    if let Some(Json::Obj(entries)) = doc.get("multi_core_parallel") {
        for (name, row) in entries {
            push(format!("multi_core_parallel.{name}"), row);
        }
    }
    if let Some(Json::Obj(entries)) = doc.get("per_prefetcher") {
        for (name, row) in entries {
            push(format!("per_prefetcher.{name}"), row);
        }
    }
    out
}

/// One regressed row of the perf gate: baseline-normalized throughput in
/// the committed document vs the fresh measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Flattened row name (e.g. `per_prefetcher.spp`).
    pub row: String,
    /// Committed normalized throughput (x baseline).
    pub committed: f64,
    /// Measured normalized throughput (x baseline).
    pub measured: f64,
}

/// The `perf_snapshot --compare` regression gate, evaluated as a
/// **two-version trend through the analytics engine**: both documents'
/// rows are loaded into a [`crate::analytics::ColumnarView`] as a
/// `normalized_throughput` metric under the pseudo-versions `committed`
/// and `measured`, and a `trend` query groups them per row name. A row
/// regresses when its measured normalized throughput falls more than
/// `tolerance` below the committed value. Rows present in only one
/// document never gate.
///
/// Normalization divides each row by its own document's
/// `baseline_single_thread` rate, so the verdict compares machine-relative
/// cost, not absolute host speed. Returns `None` (gate skipped) when
/// either document lacks that baseline row.
pub fn regression_gate(measured: &Json, committed: &Json, tolerance: f64) -> Option<Vec<GateRow>> {
    use crate::analytics::{Agg, ColumnarView, Field, Query};

    let baseline_of = |doc: &Json| {
        doc.get("baseline_single_thread")
            .and_then(|b| b.get("accesses_per_sec"))
            .and_then(Json::as_f64)
            .filter(|&b| b > 0.0)
    };
    let measured_base = baseline_of(measured)?;
    let committed_base = baseline_of(committed)?;

    let mut entries: Vec<(String, String, f64)> = Vec::new();
    for (name, rate) in throughput_rows(committed) {
        entries.push((name, "committed".to_owned(), rate / committed_base));
    }
    for (name, rate) in throughput_rows(measured) {
        entries.push((name, "measured".to_owned(), rate / measured_base));
    }
    let view = ColumnarView::from_named_metric("normalized_throughput", &entries);
    let query = Query {
        group_by: vec![Field::Workload],
        agg: Some(Agg::Mean),
        metric: Some("normalized_throughput".to_owned()),
        trend: true,
        ..Query::default()
    };
    // The view carries the metric by construction, so this cannot fail;
    // degrade to "gate skipped" rather than panic if it ever does.
    let output = view.run(&query).ok()?;

    let mut by_row: std::collections::BTreeMap<String, (Option<f64>, Option<f64>)> =
        std::collections::BTreeMap::new();
    for row in &output.rows {
        let (Some(name), Some(version), Some(value)) = (
            row.first().and_then(Json::as_str),
            row.get(1).and_then(Json::as_str),
            row.get(2).and_then(Json::as_f64),
        ) else {
            continue;
        };
        let slot = by_row.entry(name.to_owned()).or_default();
        match version {
            "committed" => slot.0 = Some(value),
            _ => slot.1 = Some(value),
        }
    }
    Some(
        by_row
            .into_iter()
            .filter_map(|(row, slots)| match slots {
                (Some(committed), Some(measured)) if measured < committed * (1.0 - tolerance) => {
                    Some(GateRow {
                        row,
                        committed,
                        measured,
                    })
                }
                _ => None,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_traces_are_deterministic_and_sized() {
        let a = snapshot_single_trace(600);
        let b = snapshot_single_trace(600);
        assert_eq!(a.records, b.records);
        assert_eq!(a.records.len(), 600);
        let multi = snapshot_multi_traces(300);
        assert_eq!(multi.len(), 4);
        assert!(multi.iter().all(|t| t.records.len() == 300));
    }

    #[test]
    fn streaming_snapshot_source_matches_the_materialized_trace() {
        let trace = snapshot_single_trace(601);
        let mut source = snapshot_single_source(601);
        assert_eq!(
            dspatch_trace::collect_source(&mut source).records,
            trace.records
        );
        use dspatch_trace::TraceSource;
        assert_eq!(source.meta().accesses.value(), 601);
    }

    #[test]
    fn snapshot_runs_and_reports_json() {
        let report = run_snapshot(400, 200, 1);
        assert_eq!(report.baseline_single_thread.accesses, 400);
        assert_eq!(report.dspatch_spp_single_thread.accesses, 400);
        assert_eq!(report.streaming_single_thread.accesses, 400);
        assert_eq!(report.sampled_single_thread.accesses, 400);
        assert!(report.sampled_single_thread.cycles > 0);
        assert!(
            report.sampled_single_thread.cycles < report.dspatch_spp_single_thread.cycles,
            "sampling must simulate fewer detailed cycles than the exact run"
        );
        assert_eq!(report.four_core.accesses, 800);
        assert!(report.dspatch_spp_single_thread.cycles > 0);
        // One row per configured worker count, and every worker count
        // simulates the identical run: same accesses, same cycles.
        assert_eq!(
            report
                .multi_core_parallel
                .iter()
                .map(|(w, _)| *w)
                .collect::<Vec<_>>(),
            PARALLEL_WORKER_ROWS.to_vec()
        );
        for (workers, s) in &report.multi_core_parallel {
            assert_eq!(s.accesses, 800, "workers_{workers} row accesses");
            assert_eq!(
                s.cycles, report.multi_core_parallel[0].1.cycles,
                "workers_{workers} must simulate the same cycles"
            );
        }
        // Same records, same machine: the streaming and materialized rows
        // must simulate the same number of cycles.
        assert_eq!(
            report.streaming_single_thread.cycles,
            report.dspatch_spp_single_thread.cycles
        );
        let json = report.to_json();
        assert!(json.contains("\"accesses_per_sec\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"baseline_single_thread\""));
        assert!(json.contains("\"streaming_single_thread\""));
        assert!(json.contains("\"sampled_single_thread\""));
        assert!(json.contains("\"four_core\""));
        assert!(json.contains("\"multi_core_parallel\""));
        assert!(json.contains("\"workers_4\""));
        let parsed = Json::parse(&json).expect("snapshot JSON is valid");
        assert_eq!(
            parsed
                .get("baseline_single_thread")
                .and_then(|s| s.get("accesses"))
                .and_then(Json::as_u64),
            Some(400)
        );
        assert!(!report.summary().is_empty());
        assert_eq!(report.host_cpus, host_cpus());
    }

    fn doc(baseline: f64, spp: f64) -> Json {
        let scenario = |rate: f64| {
            Json::obj([
                ("accesses", Json::num(1000.0)),
                ("accesses_per_sec", Json::num(rate)),
            ])
        };
        Json::obj([
            ("benchmark", Json::str("sim_throughput")),
            ("baseline_single_thread", scenario(baseline)),
            ("per_prefetcher", Json::obj([("spp", scenario(spp))])),
        ])
    }

    #[test]
    fn gate_passes_on_proportional_slowdown_and_fails_on_relative_one() {
        // Half the absolute speed, same ratio: a different machine, not a
        // regression — normalization must absorb it.
        let committed = doc(1000.0, 800.0);
        let slower_host = doc(500.0, 400.0);
        let verdict = regression_gate(&slower_host, &committed, 0.30).expect("gate runs");
        assert!(verdict.is_empty(), "{verdict:?}");

        // Same machine speed, SPP path 2x more expensive relative to
        // baseline: that is the regression the gate exists for.
        let regressed = doc(1000.0, 400.0);
        let verdict = regression_gate(&regressed, &committed, 0.30).expect("gate runs");
        assert_eq!(verdict.len(), 1);
        assert_eq!(verdict[0].row, "per_prefetcher.spp");
        assert_eq!(verdict[0].committed, 0.8);
        assert_eq!(verdict[0].measured, 0.4);

        // Within tolerance: no verdict.
        let mild = doc(1000.0, 700.0);
        assert!(regression_gate(&mild, &committed, 0.30)
            .expect("gate runs")
            .is_empty());
    }

    #[test]
    fn gate_skips_without_a_baseline_row_and_ignores_unshared_rows() {
        let committed = doc(1000.0, 800.0);
        let no_baseline = Json::obj([("benchmark", Json::str("sim_throughput"))]);
        assert!(regression_gate(&no_baseline, &committed, 0.30).is_none());

        // A row only the measured document has never gates.
        let measured = Json::obj([
            (
                "baseline_single_thread",
                doc(1000.0, 1.0)
                    .get("baseline_single_thread")
                    .cloned()
                    .unwrap(),
            ),
            (
                "per_prefetcher",
                Json::obj([("bop", Json::obj([("accesses_per_sec", Json::num(1.0))]))]),
            ),
        ]);
        assert!(regression_gate(&measured, &committed, 0.30)
            .expect("gate runs")
            .is_empty());
    }
}
