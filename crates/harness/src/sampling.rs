//! Interval sampling: fast-forward → checkpoint → measure loops.
//!
//! A [`SamplingPlan`] turns one long workload into a short **functional
//! warm-up** (caches and predictor tables updated, timing skipped — see
//! [`dspatch_sim::Machine::run_functional`]) followed by a handful of
//! bounded **measurement intervals** whose per-interval IPC, prefetch
//! coverage and accuracy aggregate into a mean ± 95% confidence interval
//! ([`SamplingStats`] on the returned [`SimResult`]). This is the classic
//! sampled-simulation methodology (SMARTS/SimPoint lineage): wall-clock
//! drops by the ratio of detailed to total records, and the CI quantifies
//! what the shortcut cost in fidelity.
//!
//! The campaign executor shares one warm-up per (workload, config) across
//! all prefetcher columns: warm-up runs with the **null** prefetcher and is
//! captured as a [`MachineState`] checkpoint, which each column restores
//! before measuring with its own predictor (the checkpoint's L2-prefetcher
//! section is tagged, so a mismatched column simply keeps its fresh
//! predictor — see [`dspatch_sim::Machine::restore`]).

use crate::error::HarnessError;
use crate::runner::RunScale;
use dspatch_prefetchers::AnyPrefetcher;
use dspatch_sim::stats::{IntervalEstimate, SamplingStats};
use dspatch_sim::{MachineState, SimResult, SimulationBuilder, SystemConfig};
use dspatch_trace::{TraceMeta, TraceSource, WorkloadSpec};
use dspatch_types::NullPrefetcher;
use serde::{Deserialize, Serialize};

/// How a sampled run divides a workload: one warm-up prefix plus
/// seed-placed measurement intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Records consumed in functional warm-up before any interval. The
    /// same length also bounds the functional **re-warm** ahead of each
    /// subsequent interval: gap records beyond it are discarded at trace
    /// speed ([`dspatch_sim::Machine::skip_records`]) instead of warmed,
    /// so sampled wall-clock does not scale with gap length.
    pub warmup_accesses: u64,
    /// Records measured in detail per interval.
    pub interval_accesses: u64,
    /// Number of measurement intervals.
    pub intervals: u32,
    /// Seed for deterministic interval placement.
    pub seed: u64,
}

impl SamplingPlan {
    /// Structural validation independent of any particular trace.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Spec`] for a zero interval length or count.
    pub fn validate(&self) -> Result<(), HarnessError> {
        if self.interval_accesses == 0 {
            return Err(HarnessError::spec("sampling interval must be > 0 accesses"));
        }
        if self.intervals == 0 {
            return Err(HarnessError::spec("sampling needs at least one interval"));
        }
        Ok(())
    }

    /// Validates the plan against a concrete trace length.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Spec`] when warm-up plus all intervals do
    /// not fit in `total_accesses`.
    pub fn validate_for(&self, total_accesses: u64) -> Result<(), HarnessError> {
        self.validate()?;
        let detailed = self
            .interval_accesses
            .saturating_mul(u64::from(self.intervals));
        let needed = self.warmup_accesses.saturating_add(detailed);
        if needed > total_accesses {
            return Err(HarnessError::spec(format!(
                "sampling plan needs {needed} accesses (warmup {} + {} x {}) but the \
                 workload has only {total_accesses}",
                self.warmup_accesses, self.intervals, self.interval_accesses
            )));
        }
        Ok(())
    }

    /// Deterministic interval placement: the post-warm-up region splits
    /// into `intervals` equal slices and the seed picks one aligned window
    /// inside each, so intervals are spread across the whole trace (never
    /// overlapping, never past the end) and identical seeds reproduce
    /// identical placements on any machine.
    ///
    /// Returns absolute record indices of each interval's first access,
    /// strictly increasing. Call [`SamplingPlan::validate_for`] first.
    pub fn interval_starts(&self, total_accesses: u64) -> Vec<u64> {
        let intervals = u64::from(self.intervals);
        let region = total_accesses - self.warmup_accesses;
        let slice = region / intervals;
        (0..intervals)
            .map(|i| {
                let slack = slice.saturating_sub(self.interval_accesses);
                let offset = if slack == 0 {
                    0
                } else {
                    splitmix64(self.seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15))) % (slack + 1)
                };
                self.warmup_accesses + i * slice + offset
            })
            .collect()
    }

    /// Fraction of the trace simulated in detail (the headroom behind the
    /// wall-clock speedup).
    pub fn detailed_fraction(&self, total_accesses: u64) -> f64 {
        if total_accesses == 0 {
            return 1.0;
        }
        (self.interval_accesses * u64::from(self.intervals)) as f64 / total_accesses as f64
    }

    /// Stable fingerprint suffix appended to journal and store identities
    /// so sampled and exact results of the same cell never alias.
    pub fn fingerprint_suffix(&self) -> String {
        format!(
            "|sampling:w{}.i{}.n{}.s{}",
            self.warmup_accesses, self.interval_accesses, self.intervals, self.seed
        )
    }

    /// Parses the CLI form `warmup=N,interval=N,n=N[,seed=N]`. Values take
    /// optional `k`/`m`/`g` suffixes (powers of ten: 2m = 2,000,000).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed key or value.
    pub fn parse(spec: &str) -> Result<SamplingPlan, String> {
        let mut warmup = None;
        let mut interval = None;
        let mut intervals = None;
        let mut seed = 0u64;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("sampling spec '{part}' is not key=value"))?;
            let value = parse_scaled(value.trim())
                .ok_or_else(|| format!("sampling spec '{key}' has invalid value '{value}'"))?;
            match key.trim() {
                "warmup" => warmup = Some(value),
                "interval" => interval = Some(value),
                "n" | "intervals" => intervals = Some(value),
                "seed" => seed = value,
                other => {
                    return Err(format!(
                        "unknown sampling key '{other}' (expected warmup/interval/n/seed)"
                    ))
                }
            }
        }
        let plan = SamplingPlan {
            warmup_accesses: warmup.ok_or("sampling spec needs 'warmup='")?,
            interval_accesses: interval.ok_or("sampling spec needs 'interval='")?,
            intervals: u32::try_from(intervals.ok_or("sampling spec needs 'n='")?)
                .map_err(|_| "sampling 'n' is too large")?,
            seed,
        };
        plan.validate().map_err(|e| e.to_string())?;
        Ok(plan)
    }

    /// The CLI form this plan parses back from.
    pub fn display(&self) -> String {
        format!(
            "warmup={},interval={},n={},seed={}",
            self.warmup_accesses, self.interval_accesses, self.intervals, self.seed
        )
    }
}

/// Parses `123`, `4k`, `2m`, `1g` (underscores allowed) into a u64.
fn parse_scaled(text: &str) -> Option<u64> {
    let text = text.replace('_', "");
    let (digits, factor) = match text.as_bytes().last()? {
        b'k' | b'K' => (&text[..text.len() - 1], 1_000u64),
        b'm' | b'M' => (&text[..text.len() - 1], 1_000_000),
        b'g' | b'G' => (&text[..text.len() - 1], 1_000_000_000),
        _ => (text.as_str(), 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(factor)
}

/// SplitMix64: the placement hash (stable, dependency-free).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-tailed 95% Student's t critical value for `df` degrees of freedom.
fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        return 0.0;
    }
    if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Mean ± 95% CI half-width of a sample set (Student's t; zero half-width
/// for fewer than two samples).
pub fn mean_ci95(samples: &[f64]) -> IntervalEstimate {
    if samples.is_empty() {
        return IntervalEstimate {
            mean: 0.0,
            ci95: 0.0,
        };
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return IntervalEstimate { mean, ci95: 0.0 };
    }
    let variance = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let standard_error = (variance / n).sqrt();
    IntervalEstimate {
        mean,
        ci95: t95(samples.len() - 1) * standard_error,
    }
}

/// The exact record count of a source, required to place intervals.
///
/// # Errors
///
/// Returns [`HarnessError::Spec`] when the source only estimates its
/// length (e.g. a file trace whose record count was derived from the file
/// size): a sampled run would silently mis-place intervals, so it is
/// rejected up front.
pub fn exact_total_accesses(meta: &TraceMeta) -> Result<u64, HarnessError> {
    if meta.accesses.is_exact() {
        Ok(meta.accesses.value())
    } else {
        Err(HarnessError::spec(format!(
            "sampling needs an exact trace length but '{}' only estimates ~{} accesses; \
             materialize or re-index the trace first",
            meta.name,
            meta.accesses.value()
        )))
    }
}

/// Functionally warms one machine (null L2 prefetcher) over the plan's
/// warm-up prefix and captures the checkpoint the campaign executor forks
/// across prefetcher columns.
///
/// # Errors
///
/// Returns [`HarnessError::Spec`] when the plan does not fit the source
/// or the machine cannot be captured.
pub fn warmup_checkpoint(
    source: Box<dyn TraceSource>,
    config: &SystemConfig,
    plan: &SamplingPlan,
) -> Result<MachineState, HarnessError> {
    let total = exact_total_accesses(&source.meta())?;
    plan.validate_for(total)?;
    let mut machine = SimulationBuilder::new(config.clone())
        .with_core(source, NullPrefetcher::new())
        .into_machine();
    machine.run_functional(plan.warmup_accesses);
    machine
        .capture()
        .map_err(|error| HarnessError::spec(format!("warm-up capture failed: {error}")))
}

/// Runs one sampled single-core simulation: restore (or recompute) the
/// warm-up, then fast-forward to each interval and measure it in detail.
/// The returned [`SimResult`]'s counters aggregate the measured intervals
/// and [`SimResult::sampling`] carries the per-interval mean ± 95% CI.
///
/// # Errors
///
/// Returns [`HarnessError::Spec`] when the plan does not fit the source,
/// the source length is inexact, or a checkpoint fails to restore.
pub fn run_sampled(
    source: Box<dyn TraceSource>,
    prefetcher: AnyPrefetcher,
    config: &SystemConfig,
    plan: &SamplingPlan,
    warm: Option<&MachineState>,
) -> Result<SimResult, HarnessError> {
    let total = exact_total_accesses(&source.meta())?;
    plan.validate_for(total)?;
    let mut machine = SimulationBuilder::new(config.clone())
        .with_core(source, prefetcher)
        .into_machine();
    match warm {
        Some(state) => machine
            .restore(state)
            .map_err(|error| HarnessError::spec(format!("warm-up restore failed: {error}")))?,
        None => {
            machine.run_functional(plan.warmup_accesses);
        }
    }
    let mut position = plan.warmup_accesses;
    let mut intervals = Vec::with_capacity(plan.intervals as usize);
    for start in plan.interval_starts(total) {
        // Fast-forward the gap: anything beyond one warm-up's worth of
        // records is discarded at trace speed without touching the machine
        // (`skip_records`), and only the `warmup_accesses` immediately
        // preceding the interval run in functional warm-up mode. Caches and
        // predictors go stale by the skipped span, exactly as in
        // checkpoint-based sampling, and the bounded re-warm repairs them —
        // this keeps sampled wall-clock from scaling with gap length.
        let gap = start - position;
        if gap > plan.warmup_accesses {
            machine.skip_records(gap - plan.warmup_accesses);
            machine.run_functional(plan.warmup_accesses);
        } else {
            machine.run_functional(gap);
        }
        intervals.push(machine.run_interval(plan.interval_accesses));
        position = start + plan.interval_accesses;
    }
    Ok(aggregate_intervals(intervals, plan))
}

/// Convenience wrapper over [`run_sampled`] for a synthetic workload at a
/// given scale (the path `run_workload` takes when the scale samples).
///
/// # Errors
///
/// See [`run_sampled`].
pub fn run_sampled_workload(
    workload: &WorkloadSpec,
    prefetcher: AnyPrefetcher,
    config: &SystemConfig,
    scale: &RunScale,
    warm: Option<&MachineState>,
) -> Result<SimResult, HarnessError> {
    let plan = scale
        .sampling
        .ok_or_else(|| HarnessError::spec("run_sampled_workload needs scale.sampling"))?;
    let source = Box::new(workload.source(scale.accesses_per_workload)) as Box<dyn TraceSource>;
    run_sampled(source, prefetcher, config, &plan, warm)
}

/// Folds per-interval results into one [`SimResult`]: counters sum, the
/// per-interval IPC / coverage / accuracy distributions become mean ± CI.
fn aggregate_intervals(intervals: Vec<SimResult>, plan: &SamplingPlan) -> SimResult {
    assert!(
        !intervals.is_empty(),
        "sampling needs at least one interval"
    );
    let ipcs: Vec<f64> = intervals
        .iter()
        .map(|sim| {
            sim.cores
                .iter()
                .map(dspatch_sim::CoreResult::ipc)
                .sum::<f64>()
                / sim.cores.len().max(1) as f64
        })
        .collect();
    let coverages: Vec<f64> = intervals
        .iter()
        .map(|sim| sim.total_accounting().coverage())
        .collect();
    let accuracies: Vec<f64> = intervals
        .iter()
        .map(|sim| sim.total_accounting().accuracy())
        .collect();

    let mut total = intervals[0].clone();
    for interval in &intervals[1..] {
        total.cycles += interval.cycles;
        for (core, other) in total.cores.iter_mut().zip(&interval.cores) {
            core.instructions += other.instructions;
            core.finish_cycle += other.finish_cycle;
            add_cache_stats(&mut core.l1, &other.l1);
            add_cache_stats(&mut core.l2, &other.l2);
            core.accounting.merge(&other.accounting);
        }
        add_cache_stats(&mut total.llc, &interval.llc);
        let dram = &mut total.dram;
        dram.cas_commands += interval.dram.cas_commands;
        dram.row_hits += interval.dram.row_hits;
        dram.row_misses += interval.dram.row_misses;
        dram.prefetch_accesses += interval.dram.prefetch_accesses;
        dram.utilization_sum += interval.dram.utilization_sum;
        dram.windows += interval.dram.windows;
        total.pollution.no_reuse += interval.pollution.no_reuse;
        total.pollution.prefetched_before_use += interval.pollution.prefetched_before_use;
        total.pollution.bad_pollution += interval.pollution.bad_pollution;
    }
    total.sampling = Some(SamplingStats {
        warmup_accesses: plan.warmup_accesses,
        interval_accesses: plan.interval_accesses,
        intervals: intervals.len() as u32,
        seed: plan.seed,
        ipc: mean_ci95(&ipcs),
        coverage: mean_ci95(&coverages),
        accuracy: mean_ci95(&accuracies),
    });
    total
}

fn add_cache_stats(into: &mut dspatch_sim::CacheStats, from: &dspatch_sim::CacheStats) {
    into.demand_hits += from.demand_hits;
    into.demand_misses += from.demand_misses;
    into.demand_fills += from.demand_fills;
    into.prefetch_fills += from.prefetch_fills;
    into.prefetch_first_uses += from.prefetch_first_uses;
    into.prefetch_unused_evictions += from.prefetch_unused_evictions;
}

/// A warm checkpoint's identity for `--checkpoint-dir`: everything that
/// changes the warm state — target, config, warm-up length — plus the code
/// version, hashed into a filename-safe token. Prefetcher columns are
/// deliberately absent (warm-up is prefetcher-neutral), as are interval
/// knobs (they only shape measurement, not the warm state).
pub fn checkpoint_token(target_key: &str, config: &SystemConfig, plan: &SamplingPlan) -> String {
    let identity = format!(
        "ckpt-v{}|{}|{:?}|w{}",
        dspatch_sim::snapshot::FORMAT_VERSION,
        target_key,
        config,
        plan.warmup_accesses
    );
    format!("{:016x}", fnv1a(identity.as_bytes()))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PrefetcherKind;
    use dspatch_trace::workloads::suite;

    fn plan() -> SamplingPlan {
        SamplingPlan {
            warmup_accesses: 2_000,
            interval_accesses: 400,
            intervals: 4,
            seed: 7,
        }
    }

    #[test]
    fn parse_round_trips_and_scales_suffixes() {
        let parsed = SamplingPlan::parse("warmup=2m,interval=200k,n=10,seed=3").unwrap();
        assert_eq!(parsed.warmup_accesses, 2_000_000);
        assert_eq!(parsed.interval_accesses, 200_000);
        assert_eq!(parsed.intervals, 10);
        assert_eq!(parsed.seed, 3);
        let display = plan().display();
        assert_eq!(SamplingPlan::parse(&display).unwrap(), plan());
        assert!(SamplingPlan::parse("warmup=1k,interval=0,n=2").is_err());
        assert!(SamplingPlan::parse("warmup=1k,n=2").is_err());
        assert!(SamplingPlan::parse("bogus=1").is_err());
    }

    #[test]
    fn interval_placement_is_deterministic_ordered_and_in_bounds() {
        let plan = plan();
        plan.validate_for(20_000).unwrap();
        let starts = plan.interval_starts(20_000);
        assert_eq!(starts, plan.interval_starts(20_000));
        assert_eq!(starts.len(), 4);
        let mut previous_end = plan.warmup_accesses;
        for &start in &starts {
            assert!(start >= previous_end, "intervals must not overlap");
            previous_end = start + plan.interval_accesses;
        }
        assert!(previous_end <= 20_000, "last interval must fit the trace");
        let reseeded = SamplingPlan { seed: 8, ..plan };
        assert_ne!(
            starts,
            reseeded.interval_starts(20_000),
            "the seed must move interval placement"
        );
    }

    #[test]
    fn plans_that_do_not_fit_are_rejected() {
        let plan = plan();
        assert!(plan.validate_for(20_000).is_ok());
        let err = plan.validate_for(3_000).unwrap_err();
        assert!(matches!(err, HarnessError::Spec { .. }), "{err:?}");
    }

    #[test]
    fn ci_math_matches_hand_computation() {
        let estimate = mean_ci95(&[1.0, 2.0, 3.0]);
        assert!((estimate.mean - 2.0).abs() < 1e-12);
        // s = 1, se = 1/sqrt(3), t(2) = 4.303.
        assert!((estimate.ci95 - 4.303 / 3f64.sqrt()).abs() < 1e-9);
        assert_eq!(mean_ci95(&[5.0]).ci95, 0.0);
        assert!(estimate.covers(2.0));
        assert!(!estimate.covers(9.0));
    }

    #[test]
    fn estimated_lengths_are_rejected_with_a_spec_error() {
        let meta = TraceMeta {
            name: "fuzzy".to_owned(),
            accesses: dspatch_trace::LengthHint::Estimate(1_000_000),
            instructions: None,
        };
        let err = exact_total_accesses(&meta).unwrap_err();
        assert!(matches!(err, HarnessError::Spec { .. }), "{err:?}");
        let exact = TraceMeta {
            accesses: dspatch_trace::LengthHint::Exact(42),
            ..meta
        };
        assert_eq!(exact_total_accesses(&exact).unwrap(), 42);
    }

    #[test]
    fn sampled_run_reports_cis_and_shares_warmups() {
        let workload = &suite()[0];
        let config = dspatch_sim::SystemConfig::single_thread();
        let scale = RunScale {
            accesses_per_workload: 20_000,
            sampling: Some(plan()),
            ..RunScale::smoke()
        };
        let warm = warmup_checkpoint(
            Box::new(workload.source(scale.accesses_per_workload)),
            &config,
            &plan(),
        )
        .unwrap();
        let sampled = run_sampled_workload(
            workload,
            PrefetcherKind::Spp.build_any(),
            &config,
            &scale,
            Some(&warm),
        )
        .unwrap();
        let stats = sampled.sampling.expect("sampled result carries stats");
        assert_eq!(stats.intervals, 4);
        assert!(stats.ipc.mean > 0.0);
        assert!(stats.ipc.covers(stats.ipc.mean));
        // Restoring the shared checkpoint is deterministic: two columns
        // forked from the same warm state agree bit-for-bit.
        let again = run_sampled_workload(
            workload,
            PrefetcherKind::Spp.build_any(),
            &config,
            &scale,
            Some(&warm),
        )
        .unwrap();
        assert_eq!(sampled, again);
        // For the null column the cold path's own functional warm-up *is*
        // the neutral warm-up, so warm restore and cold agree exactly.
        let warm_null = run_sampled_workload(
            workload,
            PrefetcherKind::Baseline.build_any(),
            &config,
            &scale,
            Some(&warm),
        )
        .unwrap();
        let cold_null = run_sampled_workload(
            workload,
            PrefetcherKind::Baseline.build_any(),
            &config,
            &scale,
            None,
        )
        .unwrap();
        assert_eq!(warm_null, cold_null);
    }

    #[test]
    fn checkpoint_token_separates_configs_and_warmups() {
        let config = dspatch_sim::SystemConfig::single_thread();
        let token = checkpoint_token("w:a", &config, &plan());
        assert_eq!(token, checkpoint_token("w:a", &config, &plan()));
        assert_ne!(token, checkpoint_token("w:b", &config, &plan()));
        let longer = SamplingPlan {
            warmup_accesses: 4_000,
            ..plan()
        };
        assert_ne!(token, checkpoint_token("w:a", &config, &longer));
    }
}
