//! The declarative Campaign API: one experiment engine behind every figure.
//!
//! A campaign is a grid of [`CellSpec`]s — each a cross-product of targets
//! (workloads or multi-programmed mixes), prefetcher selections and a system
//! configuration — described by a JSON-serializable [`CampaignSpec`] and
//! executed by [`run_campaign`]. The executor
//!
//! * **deduplicates simulations**: each unique (target, prefetcher, config)
//!   triple simulates exactly once per campaign, however many cells request
//!   it — in particular the no-L2-prefetcher **baseline is memoized**, so a
//!   figure with K prefetcher columns runs each (workload, config) baseline
//!   once instead of K times;
//! * runs the deduplicated job list on a **self-scheduling worker pool**: a shared
//!   atomic cursor over a cost-sorted job queue, drained by scoped threads
//!   (`RunScale::threads` workers, which presets default to
//!   `std::thread::available_parallelism`), so long mix simulations no
//!   longer serialize behind short single-core ones;
//! * returns a [`CampaignResult`] holding every [`SimResult`] plus one row
//!   per (cell, target, prefetcher), renderable as an ASCII table, JSON or
//!   CSV, and queryable by the figure-specific aggregations in
//!   [`crate::experiments`].
//!
//! Every `fig*`/`table*` function in [`crate::experiments`] is a thin spec
//! over this engine, and the `dspatch-lab` binary runs either a named figure
//! or a custom spec file (see `CampaignSpec::from_json`).
//!
//! The executor is **fault tolerant**: every cell simulation runs under
//! `catch_unwind`, failures are classified into the typed
//! [`crate::error::HarnessError`] taxonomy, transient failures retry with a
//! bounded deterministic backoff ([`RetryPolicy`]), and cells that exhaust
//! their budget are **quarantined** as [`CellFailure`]s on the result
//! instead of sinking the whole campaign. With [`ExecOptions::journal`] set,
//! each completed cell is appended to a crash-safe JSON-lines journal
//! ([`crate::journal`]) and a resumed campaign re-executes only the missing
//! cells, producing bit-identical output to an uninterrupted run.

use crate::error::HarnessError;
use crate::faults::{FaultKind, FaultPlan};
use crate::journal::{campaign_fingerprint, read_journal, JournalMeta, JournalWriter};
use crate::json::Json;
use crate::report::{percent, Table};
use crate::results::ResultRow;
use crate::runner::{default_threads, PrefetcherKind, RunScale};
use crate::sampling::SamplingPlan;
use dspatch_prefetchers::{SmsConfig, SmsPrefetcher};
use dspatch_sim::{DramSpeedGrade, SimResult, SimulationBuilder, SystemConfig};
use dspatch_trace::workloads::{category_suite, memory_intensive_suite, suite, WorkloadCategory};
use dspatch_trace::{heterogeneous_mixes, homogeneous_mixes, WorkloadMix, WorkloadSpec};
use dspatch_types::Prefetcher;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Rejects unrecognized keys in a spec-file object so a misspelled override
/// (e.g. `"llcbytes"`) errors instead of silently running the defaults.
fn reject_unknown_keys(json: &Json, allowed: &[&str], context: &str) -> Result<(), String> {
    if let Some(entries) = json.as_obj() {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "{context}: unknown key '{key}' (allowed: {})",
                    allowed.join(", ")
                ));
            }
        }
    }
    Ok(())
}

/// A prefetcher selection for one campaign column: either one of the named
/// paper configurations or a parameterized variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherSel {
    /// One of the paper's named prefetcher configurations.
    Kind(PrefetcherKind),
    /// SMS with a custom pattern-history-table size (the Figure 5 sweep).
    SmsPht(usize),
}

impl PrefetcherSel {
    /// Display label for tables and legends.
    pub fn label(&self) -> String {
        match self {
            PrefetcherSel::Kind(kind) => kind.label().to_owned(),
            PrefetcherSel::SmsPht(entries) => format!("SMS(pht={entries})"),
        }
    }

    /// Whether this selection is the no-L2-prefetcher baseline.
    pub fn is_baseline(&self) -> bool {
        matches!(self, PrefetcherSel::Kind(PrefetcherKind::Baseline))
    }

    /// Checks parameter bounds that would otherwise assert deep inside a
    /// prefetcher constructor (e.g. SMS requires a non-empty PHT).
    ///
    /// # Errors
    ///
    /// Returns a message naming the invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PrefetcherSel::Kind(_) => Ok(()),
            PrefetcherSel::SmsPht(0) => {
                Err("sms_pht needs at least one pattern-history-table entry".to_owned())
            }
            PrefetcherSel::SmsPht(_) => Ok(()),
        }
    }

    /// Builds a fresh prefetcher instance behind the dynamic interface.
    /// Delegates to [`PrefetcherSel::build_any`] so there is exactly one
    /// construction table.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        Box::new(self.build_any())
    }

    /// Builds a fresh prefetcher instance as a statically dispatched
    /// [`dspatch_prefetchers::AnyPrefetcher`] — what every campaign
    /// simulation runs with.
    pub fn build_any(&self) -> dspatch_prefetchers::AnyPrefetcher {
        match self {
            PrefetcherSel::Kind(kind) => kind.build_any(),
            PrefetcherSel::SmsPht(entries) => {
                SmsPrefetcher::new(SmsConfig::with_pht_entries(*entries)).into()
            }
        }
    }

    /// JSON form: the kind's spec name as a string, or `{"sms_pht": N}`.
    pub fn to_json(&self) -> Json {
        match self {
            PrefetcherSel::Kind(kind) => Json::str(kind.spec_name()),
            PrefetcherSel::SmsPht(entries) => Json::obj([("sms_pht", Json::num(*entries as f64))]),
        }
    }

    /// Parses the JSON form accepted by spec files.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown prefetcher or malformed entry.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(name) = json.as_str() {
            return PrefetcherKind::parse(name)
                .map(PrefetcherSel::Kind)
                .ok_or_else(|| format!("unknown prefetcher '{name}'"));
        }
        reject_unknown_keys(json, &["sms_pht"], "prefetcher selection")?;
        if let Some(entries) = json.get("sms_pht").and_then(Json::as_u64) {
            return Ok(PrefetcherSel::SmsPht(entries as usize));
        }
        Err(format!("malformed prefetcher selection: {json}"))
    }
}

impl From<PrefetcherKind> for PrefetcherSel {
    fn from(kind: PrefetcherKind) -> Self {
        PrefetcherSel::Kind(kind)
    }
}

/// The base system configuration a cell starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigBase {
    /// [`SystemConfig::single_thread`]: 1 core, 2 MB LLC, 1× DDR4-2133.
    SingleThread,
    /// [`SystemConfig::multi_programmed`]: 4 cores, 8 MB LLC, 2× DDR4-2133.
    MultiProgrammed,
}

/// A declarative, hashable system-configuration variant: a base plus the
/// overrides the paper's figures use (DRAM geometry, LLC capacity). The
/// executor keys baseline memoization on this, so two cells asking for the
/// same variant share every simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigSpec {
    /// Base configuration.
    pub base: ConfigBase,
    /// Optional DRAM override as (channels, speed grade).
    pub dram: Option<(usize, DramSpeedGrade)>,
    /// Optional LLC capacity override in bytes.
    pub llc_bytes: Option<usize>,
}

impl ConfigSpec {
    /// The paper's single-thread configuration.
    pub fn single_thread() -> Self {
        Self {
            base: ConfigBase::SingleThread,
            dram: None,
            llc_bytes: None,
        }
    }

    /// The paper's 4-core multi-programmed configuration.
    pub fn multi_programmed() -> Self {
        Self {
            base: ConfigBase::MultiProgrammed,
            dram: None,
            llc_bytes: None,
        }
    }

    /// Overrides the DRAM geometry.
    pub fn with_dram(mut self, channels: usize, speed: DramSpeedGrade) -> Self {
        self.dram = Some((channels, speed));
        self
    }

    /// Overrides the LLC capacity.
    pub fn with_llc_bytes(mut self, bytes: usize) -> Self {
        self.llc_bytes = Some(bytes);
        self
    }

    /// Builds the concrete [`SystemConfig`].
    pub fn build(&self) -> SystemConfig {
        let mut config = match self.base {
            ConfigBase::SingleThread => SystemConfig::single_thread(),
            ConfigBase::MultiProgrammed => SystemConfig::multi_programmed(),
        };
        if let Some((channels, speed)) = self.dram {
            config = config.with_dram(channels, speed);
        }
        if let Some(bytes) = self.llc_bytes {
            config = config.with_llc_capacity(bytes);
        }
        config
    }

    /// Short label such as "1T" or "4P/2ch-2400/llc=4MiB".
    pub fn label(&self) -> String {
        let mut label = match self.base {
            ConfigBase::SingleThread => "1T".to_owned(),
            ConfigBase::MultiProgrammed => "4P".to_owned(),
        };
        if let Some((channels, speed)) = self.dram {
            label.push_str(&format!("/{}ch-{}", channels, speed.label()));
        }
        if let Some(bytes) = self.llc_bytes {
            label.push_str(&format!("/llc={}MiB", bytes >> 20));
        }
        label
    }

    /// JSON form, e.g. `{"base": "single_thread", "dram": {...}}`.
    pub fn to_json(&self) -> Json {
        let mut entries = vec![(
            "base".to_owned(),
            Json::str(match self.base {
                ConfigBase::SingleThread => "single_thread",
                ConfigBase::MultiProgrammed => "multi_programmed",
            }),
        )];
        if let Some((channels, speed)) = self.dram {
            entries.push((
                "dram".to_owned(),
                Json::obj([
                    ("channels", Json::num(channels as f64)),
                    ("speed", Json::str(speed.label())),
                ]),
            ));
        }
        if let Some(bytes) = self.llc_bytes {
            entries.push(("llc_bytes".to_owned(), Json::num(bytes as f64)));
        }
        Json::Obj(entries)
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        // Every field is optional, so a non-object would otherwise silently
        // become the default config.
        if json.as_obj().is_none() {
            return Err(format!("config must be an object, got {json}"));
        }
        reject_unknown_keys(json, &["base", "dram", "llc_bytes"], "config")?;
        let base = match json.get("base") {
            None => ConfigBase::SingleThread,
            Some(base) => match base.as_str() {
                Some("single_thread") => ConfigBase::SingleThread,
                Some("multi_programmed") => ConfigBase::MultiProgrammed,
                Some(other) => return Err(format!("unknown config base '{other}'")),
                None => return Err(format!("config 'base' must be a string, got {base}")),
            },
        };
        let dram = match json.get("dram") {
            None | Some(Json::Null) => None,
            Some(dram) => {
                reject_unknown_keys(dram, &["channels", "speed"], "dram override")?;
                let channels = dram
                    .get("channels")
                    .and_then(Json::as_u64)
                    .ok_or("dram override needs integer 'channels'")?
                    as usize;
                let speed_label = dram
                    .get("speed")
                    .and_then(Json::as_str)
                    .ok_or("dram override needs 'speed'")?;
                Some((channels, parse_speed(speed_label)?))
            }
        };
        let llc_bytes = match json.get("llc_bytes") {
            None | Some(Json::Null) => None,
            Some(bytes) => Some(
                bytes
                    .as_u64()
                    .ok_or("'llc_bytes' must be a non-negative integer")? as usize,
            ),
        };
        Ok(Self {
            base,
            dram,
            llc_bytes,
        })
    }
}

fn parse_speed(label: &str) -> Result<DramSpeedGrade, String> {
    DramSpeedGrade::ALL
        .into_iter()
        .find(|grade| grade.label() == label)
        .ok_or_else(|| format!("unknown DRAM speed grade '{label}' (use 1600/2133/2400)"))
}

fn parse_category(label: &str) -> Result<WorkloadCategory, String> {
    WorkloadCategory::ALL
        .into_iter()
        .find(|category| category.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| format!("unknown workload category '{label}'"))
}

/// Selects the targets (workloads or mixes) of one cell. Group selectors
/// honour the [`RunScale`] caps; explicit name lists do not.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetSelector {
    /// Explicit workloads by suite name (no scale cap applied).
    Workloads(Vec<String>),
    /// Every workload of one category, capped by the scale.
    Category(WorkloadCategory),
    /// The full 75-workload suite, capped per category by the scale.
    Suite,
    /// The 42-workload memory-intensive subset, capped by the scale.
    MemoryIntensive,
    /// The homogeneous 4-copies-per-workload mixes, capped by the scale.
    HomogeneousMixes {
        /// Cores (copies) per mix.
        cores: usize,
    },
    /// Seed-deterministic random heterogeneous mixes, capped by the scale.
    HeterogeneousMixes {
        /// Mixes generated before the scale cap.
        count: usize,
        /// Cores per mix.
        cores: usize,
        /// Draw seed. Spec files carry it as a JSON number up to 2^53 and
        /// as a decimal string above that, so every value round-trips
        /// exactly.
        seed: u64,
    },
}

impl TargetSelector {
    /// Resolves the selector into concrete targets under `scale`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown workload.
    pub fn resolve(&self, scale: &RunScale) -> Result<Vec<Target>, String> {
        let workloads = |all: Vec<WorkloadSpec>| {
            scale
                .select_workloads(all)
                .into_iter()
                .map(Target::Workload)
                .collect::<Vec<_>>()
        };
        Ok(match self {
            TargetSelector::Workloads(names) => {
                // A repeated name would double-weight that workload in
                // every aggregation, so duplicates are rejected like
                // duplicate prefetchers and cell labels.
                let mut seen = std::collections::HashSet::new();
                for name in names {
                    if !seen.insert(name.as_str()) {
                        return Err(format!("duplicate workload '{name}' in target list"));
                    }
                }
                let pool = suite();
                names
                    .iter()
                    .map(|name| {
                        pool.iter()
                            .find(|w| &w.name == name)
                            .cloned()
                            .map(Target::Workload)
                            .ok_or_else(|| format!("unknown workload '{name}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
            TargetSelector::Category(category) => workloads(category_suite(*category)),
            TargetSelector::Suite => workloads(suite()),
            TargetSelector::MemoryIntensive => workloads(memory_intensive_suite()),
            TargetSelector::HomogeneousMixes { cores } => scale
                .select_mixes(homogeneous_mixes(*cores))
                .into_iter()
                .map(Target::Mix)
                .collect(),
            TargetSelector::HeterogeneousMixes { count, cores, seed } => scale
                .select_mixes(heterogeneous_mixes(*count, *cores, *seed))
                .into_iter()
                .map(Target::Mix)
                .collect(),
        })
    }

    /// JSON form (see the README's spec-file documentation).
    pub fn to_json(&self) -> Json {
        match self {
            TargetSelector::Workloads(names) => {
                Json::obj([("workloads", Json::arr(names.iter().map(Json::str)))])
            }
            TargetSelector::Category(category) => {
                Json::obj([("category", Json::str(category.label()))])
            }
            TargetSelector::Suite => Json::str("suite"),
            TargetSelector::MemoryIntensive => Json::str("memory_intensive"),
            TargetSelector::HomogeneousMixes { cores } => Json::obj([(
                "homogeneous_mixes",
                Json::obj([("cores", Json::num(*cores as f64))]),
            )]),
            TargetSelector::HeterogeneousMixes { count, cores, seed } => {
                // Seeds above 2^53 are not exact as JSON doubles, so they
                // serialize as decimal strings (the parser accepts both).
                let seed_json = if *seed < (1u64 << 53) {
                    Json::num(*seed as f64)
                } else {
                    Json::str(seed.to_string())
                };
                Json::obj([(
                    "heterogeneous_mixes",
                    Json::obj([
                        ("count", Json::num(*count as f64)),
                        ("cores", Json::num(*cores as f64)),
                        ("seed", seed_json),
                    ]),
                )])
            }
        }
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed selector.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(name) = json.as_str() {
            return match name {
                "suite" => Ok(TargetSelector::Suite),
                "memory_intensive" => Ok(TargetSelector::MemoryIntensive),
                other => Err(format!(
                    "unknown target selector '{other}' (use \"suite\" or \"memory_intensive\")"
                )),
            };
        }
        reject_unknown_keys(
            json,
            &[
                "workloads",
                "category",
                "homogeneous_mixes",
                "heterogeneous_mixes",
            ],
            "target selector",
        )?;
        if json.as_obj().is_some_and(|entries| entries.len() != 1) {
            return Err(format!(
                "target selector must have exactly one key, got {json}"
            ));
        }
        if let Some(names) = json.get("workloads").and_then(Json::as_arr) {
            let names = names
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("workload names must be strings, got {n}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(TargetSelector::Workloads(names));
        }
        if let Some(label) = json.get("category").and_then(Json::as_str) {
            return Ok(TargetSelector::Category(parse_category(label)?));
        }
        if let Some(homogeneous) = json.get("homogeneous_mixes") {
            reject_unknown_keys(homogeneous, &["cores"], "homogeneous_mixes")?;
            let cores = homogeneous
                .get("cores")
                .and_then(Json::as_u64)
                .ok_or("homogeneous_mixes needs integer 'cores'")? as usize;
            return Ok(TargetSelector::HomogeneousMixes { cores });
        }
        if let Some(heterogeneous) = json.get("heterogeneous_mixes") {
            reject_unknown_keys(
                heterogeneous,
                &["count", "cores", "seed"],
                "heterogeneous_mixes",
            )?;
            let count = heterogeneous
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("heterogeneous_mixes needs integer 'count'")?
                as usize;
            let cores = heterogeneous
                .get("cores")
                .and_then(Json::as_u64)
                .ok_or("heterogeneous_mixes needs integer 'cores'")?
                as usize;
            let seed = match heterogeneous.get("seed") {
                None => 0xD5,
                // Number form is exact up to 2^53; larger seeds arrive as
                // decimal strings (matching what to_json emits).
                Some(seed) => match seed.as_str() {
                    Some(text) => text.parse::<u64>().map_err(|_| {
                        format!("heterogeneous_mixes 'seed' string is not a u64: '{text}'")
                    })?,
                    None => seed.as_u64().ok_or(
                        "heterogeneous_mixes 'seed' must be a non-negative integer or a decimal string",
                    )?,
                },
            };
            return Ok(TargetSelector::HeterogeneousMixes { count, cores, seed });
        }
        Err(format!("malformed target selector: {json}"))
    }
}

/// One cell of the campaign grid: targets × prefetchers under one config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Cell label, used as the first table column (e.g. a category name).
    pub label: String,
    /// Target selection.
    pub targets: TargetSelector,
    /// Prefetcher columns.
    pub prefetchers: Vec<PrefetcherSel>,
    /// System configuration variant.
    pub config: ConfigSpec,
    /// Whether to simulate the no-L2-prefetcher baseline for each target
    /// (memoized per (target, config)) so rows carry speedups. Cells that
    /// only need raw statistics (coverage, pollution) turn this off.
    pub baseline: bool,
}

impl CellSpec {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("targets", self.targets.to_json()),
            (
                "prefetchers",
                Json::arr(self.prefetchers.iter().map(PrefetcherSel::to_json)),
            ),
            ("config", self.config.to_json()),
            ("baseline", Json::Bool(self.baseline)),
        ])
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        reject_unknown_keys(
            json,
            &["label", "targets", "prefetchers", "config", "baseline"],
            "cell",
        )?;
        // Labels are mandatory: report rows are grouped by them, so two
        // silently-defaulted labels would merge unrelated cells.
        let label = json
            .get("label")
            .and_then(Json::as_str)
            .ok_or("cell needs a string 'label'")?
            .to_owned();
        let targets = TargetSelector::from_json(
            json.get("targets")
                .ok_or("cell needs a 'targets' selector")?,
        )?;
        let prefetchers = json
            .get("prefetchers")
            .and_then(Json::as_arr)
            .ok_or("cell needs a 'prefetchers' array")?
            .iter()
            .map(PrefetcherSel::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let config = match json.get("config") {
            None | Some(Json::Null) => ConfigSpec::single_thread(),
            Some(config) => ConfigSpec::from_json(config)?,
        };
        let baseline = match json.get("baseline") {
            None => true,
            Some(baseline) => baseline
                .as_bool()
                .ok_or("cell 'baseline' must be a boolean")?,
        };
        Ok(Self {
            label,
            targets,
            prefetchers,
            config,
            baseline,
        })
    }
}

/// The run scale carried by a spec file: a named preset or explicit knobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleSpec {
    /// One of "smoke", "quick" or "full".
    Preset(String),
    /// Explicit knobs; `threads: None` means `available_parallelism`.
    Custom {
        /// Memory accesses per workload.
        accesses_per_workload: usize,
        /// Per-category workload cap (0 = all).
        workloads_per_category: usize,
        /// Mix cap (0 = all).
        mixes: usize,
        /// Worker threads; `None` defaults to the machine's parallelism.
        threads: Option<usize>,
        /// Epoch workers inside each multi-core simulation (0 = serial
        /// multi-core engine).
        sim_workers: usize,
        /// Interval-sampling plan (`None` = exact simulation).
        sampling: Option<SamplingPlan>,
    },
}

impl ScaleSpec {
    /// Resolves into a concrete [`RunScale`].
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown preset name.
    pub fn resolve(&self) -> Result<RunScale, String> {
        match self {
            ScaleSpec::Preset(name) => RunScale::preset(name)
                .ok_or_else(|| format!("unknown scale preset '{name}' (smoke/quick/full)")),
            ScaleSpec::Custom {
                accesses_per_workload,
                workloads_per_category,
                mixes,
                threads,
                sim_workers,
                sampling,
            } => Ok(RunScale {
                accesses_per_workload: *accesses_per_workload,
                workloads_per_category: *workloads_per_category,
                mixes: *mixes,
                threads: threads.unwrap_or_else(default_threads).max(1),
                sim_workers: *sim_workers,
                sampling: *sampling,
            }),
        }
    }

    /// JSON form: a preset string or an object of knobs.
    pub fn to_json(&self) -> Json {
        match self {
            ScaleSpec::Preset(name) => Json::str(name),
            ScaleSpec::Custom {
                accesses_per_workload,
                workloads_per_category,
                mixes,
                threads,
                sim_workers,
                sampling,
            } => {
                let mut entries = vec![
                    (
                        "accesses_per_workload".to_owned(),
                        Json::num(*accesses_per_workload as f64),
                    ),
                    (
                        "workloads_per_category".to_owned(),
                        Json::num(*workloads_per_category as f64),
                    ),
                    ("mixes".to_owned(), Json::num(*mixes as f64)),
                ];
                if let Some(threads) = threads {
                    entries.push(("threads".to_owned(), Json::num(*threads as f64)));
                }
                if *sim_workers > 0 {
                    entries.push(("sim_workers".to_owned(), Json::num(*sim_workers as f64)));
                }
                if let Some(plan) = sampling {
                    entries.push((
                        "sampling".to_owned(),
                        Json::Obj(vec![
                            ("warmup".to_owned(), Json::num(plan.warmup_accesses as f64)),
                            (
                                "interval".to_owned(),
                                Json::num(plan.interval_accesses as f64),
                            ),
                            ("n".to_owned(), Json::num(f64::from(plan.intervals))),
                            ("seed".to_owned(), Json::num(plan.seed as f64)),
                        ]),
                    ));
                }
                Json::Obj(entries)
            }
        }
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(name) = json.as_str() {
            return Ok(ScaleSpec::Preset(name.to_owned()));
        }
        reject_unknown_keys(
            json,
            &[
                "accesses_per_workload",
                "workloads_per_category",
                "mixes",
                "threads",
                "sim_workers",
                "sampling",
            ],
            "custom scale",
        )?;
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("custom scale needs integer '{key}'"))
        };
        Ok(ScaleSpec::Custom {
            accesses_per_workload: field("accesses_per_workload")?,
            workloads_per_category: field("workloads_per_category")?,
            mixes: field("mixes")?,
            threads: match json.get("threads") {
                None | Some(Json::Null) => None,
                Some(threads) => Some(
                    threads
                        .as_u64()
                        .ok_or("custom scale 'threads' must be a non-negative integer")?
                        as usize,
                ),
            },
            sim_workers: match json.get("sim_workers") {
                None | Some(Json::Null) => 0,
                Some(workers) => workers
                    .as_u64()
                    .ok_or("custom scale 'sim_workers' must be a non-negative integer")?
                    as usize,
            },
            sampling: match json.get("sampling") {
                None | Some(Json::Null) => None,
                Some(plan) => Some(sampling_plan_from_json(plan)?),
            },
        })
    }
}

/// Parses the nested `sampling` object of a custom scale.
fn sampling_plan_from_json(json: &Json) -> Result<SamplingPlan, String> {
    reject_unknown_keys(json, &["warmup", "interval", "n", "seed"], "sampling")?;
    let field = |key: &str| {
        json.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("sampling needs integer '{key}'"))
    };
    let plan = SamplingPlan {
        warmup_accesses: field("warmup")?,
        interval_accesses: field("interval")?,
        intervals: u32::try_from(field("n")?).map_err(|_| "sampling 'n' is too large")?,
        seed: match json.get("seed") {
            None | Some(Json::Null) => 0,
            Some(seed) => seed
                .as_u64()
                .ok_or("sampling 'seed' must be a non-negative integer")?,
        },
    };
    plan.validate().map_err(|e| e.to_string())?;
    Ok(plan)
}

/// A complete campaign description, loadable from a JSON spec file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name, used as the report title.
    pub name: String,
    /// Optional embedded scale (the CLI's `--scale` flag overrides it).
    pub scale: Option<ScaleSpec>,
    /// The grid cells.
    pub cells: Vec<CellSpec>,
}

impl CampaignSpec {
    /// A single-cell campaign, the common case for programmatic use.
    pub fn single_cell(name: impl Into<String>, cell: CellSpec) -> Self {
        Self {
            name: name.into(),
            scale: None,
            cells: vec![cell],
        }
    }

    /// JSON form (the spec-file format).
    pub fn to_json(&self) -> Json {
        let mut entries = vec![("name".to_owned(), Json::str(&self.name))];
        if let Some(scale) = &self.scale {
            entries.push(("scale".to_owned(), scale.to_json()));
        }
        entries.push((
            "cells".to_owned(),
            Json::arr(self.cells.iter().map(CellSpec::to_json)),
        ));
        Json::Obj(entries)
    }

    /// Parses a spec document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        reject_unknown_keys(json, &["name", "scale", "cells"], "campaign spec")?;
        let name = json
            .get("name")
            .map(|name| {
                name.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("campaign 'name' must be a string, got {name}"))
            })
            .transpose()?
            .unwrap_or_else(|| "campaign".to_owned());
        let scale = match json.get("scale") {
            None | Some(Json::Null) => None,
            Some(scale) => Some(ScaleSpec::from_json(scale)?),
        };
        let cells = json
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("campaign spec needs a 'cells' array")?
            .iter()
            .map(CellSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { name, scale, cells })
    }

    /// Parses a spec file's text.
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// An example spec exercising every selector family, used by the README
    /// and `dspatch-lab --template`.
    pub fn template() -> Self {
        Self {
            name: "example campaign".to_owned(),
            scale: Some(ScaleSpec::Preset("smoke".to_owned())),
            cells: vec![
                CellSpec {
                    label: "cloud single-thread".to_owned(),
                    targets: TargetSelector::Category(WorkloadCategory::Cloud),
                    prefetchers: vec![
                        PrefetcherSel::Kind(PrefetcherKind::Spp),
                        PrefetcherSel::Kind(PrefetcherKind::DspatchPlusSpp),
                        PrefetcherSel::SmsPht(1024),
                    ],
                    config: ConfigSpec::single_thread(),
                    baseline: true,
                },
                CellSpec {
                    label: "mixes low-bandwidth".to_owned(),
                    targets: TargetSelector::HomogeneousMixes { cores: 4 },
                    prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::DspatchPlusSpp)],
                    config: ConfigSpec::multi_programmed().with_dram(1, DramSpeedGrade::Ddr4_1600),
                    baseline: true,
                },
            ],
        }
    }
}

/// A concrete simulation target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// One single-core workload.
    Workload(WorkloadSpec),
    /// One multi-programmed mix (one workload per core).
    Mix(WorkloadMix),
}

impl Target {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            Target::Workload(workload) => &workload.name,
            Target::Mix(mix) => &mix.name,
        }
    }

    /// Simulated cores.
    pub fn cores(&self) -> usize {
        match self {
            Target::Workload(_) => 1,
            Target::Mix(mix) => mix.cores(),
        }
    }

    /// Memoization identity. The full `WorkloadSpec` (generator included)
    /// participates so two targets that share a name and seed but differ in
    /// generator parameters never alias to one simulation. Also the target
    /// component of the durable store's [`crate::store::cell_fingerprint`].
    pub fn key(&self) -> String {
        let workload_key = |w: &WorkloadSpec| format!("{}:{:x}:{:?}", w.name, w.seed, w.generator);
        match self {
            Target::Workload(workload) => format!("w:{}", workload_key(workload)),
            Target::Mix(mix) => {
                let cores: Vec<String> = mix.workloads.iter().map(workload_key).collect();
                format!("m:{}:{}", mix.name, cores.join("+"))
            }
        }
    }
}

/// A resolved cell: concrete targets, ready for the executor. Figure code
/// that starts from explicit [`WorkloadSpec`]s (rather than suite names)
/// builds these directly and calls [`run_cells`].
#[derive(Debug, Clone)]
pub struct ResolvedCell {
    /// Cell label.
    pub label: String,
    /// Concrete targets.
    pub targets: Vec<Target>,
    /// Prefetcher columns.
    pub prefetchers: Vec<PrefetcherSel>,
    /// Concrete system configuration.
    pub config: SystemConfig,
    /// Config label shown in reports.
    pub config_label: String,
    /// Whether to simulate (memoized) baselines for speedup rows.
    pub baseline: bool,
}

/// Executor accounting, the observable proof of memoization.
///
/// Only the spec-deterministic fields (`sims_run`, `baseline_sims`,
/// `memo_hits`, `threads`) appear in [`CampaignResult::to_json`]; the
/// robustness counters below them describe *how* this particular run went
/// (journal hits, store hits, retries, quarantines) and are deliberately
/// excluded so a resumed or store-served campaign renders bit-identically
/// to an uninterrupted, cold-cache one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Deduplicated simulations with a result (fresh or journal-replayed).
    pub sims_run: usize,
    /// How many of those were no-L2-prefetcher baselines.
    pub baseline_sims: usize,
    /// Requests served from the memo table instead of a fresh simulation
    /// (baseline and candidate alike).
    pub memo_hits: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Simulations replayed from a resume journal instead of re-executing.
    pub journal_hits: usize,
    /// Simulations served from the content-addressed [`crate::store`]
    /// instead of re-executing (cross-campaign, cross-process memoization).
    pub store_hits: usize,
    /// Extra attempts spent on transiently failing cells.
    pub retries: usize,
    /// Cells quarantined after exhausting their retry budget.
    pub quarantined: usize,
    /// Warm-up checkpoints **computed** by this campaign (sampled scales
    /// only). Checkpoints restored from `checkpoint_dir` do not count: the
    /// counter proves one warm-up is shared across all prefetcher columns
    /// of a (target, config) group, not recomputed per column.
    pub warmups_run: usize,
}

/// One output row: a (cell, target, prefetcher) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Cell label.
    pub cell: String,
    /// Target (workload or mix) name.
    pub target: String,
    /// Config label.
    pub config: String,
    /// Prefetcher label ([`PrefetcherSel::label`] of the column selection).
    pub prefetcher: String,
    /// Index of the candidate simulation in [`CampaignResult::sims`].
    pub sim: usize,
    /// Index of the memoized baseline simulation, if the cell requested one.
    pub baseline: Option<usize>,
}

/// One quarantined grid point: the cell failed every attempt and the
/// campaign completed without it.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// The executor's job key (also the journal key).
    pub key: String,
    /// Target (workload or mix) name.
    pub target: String,
    /// Prefetcher label.
    pub prefetcher: String,
    /// Config label.
    pub config: String,
    /// Attempts made (1 initial + retries).
    pub attempts: u32,
    /// The classified failure, a [`HarnessError::Quarantined`] wrapping the
    /// final attempt's error.
    pub error: HarnessError,
}

/// Everything a campaign produced: deduplicated simulation results, one row
/// per grid point, and executor statistics.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Campaign name (report title).
    pub name: String,
    /// One row per (cell, target, prefetcher), in spec order. Rows whose
    /// candidate simulation was quarantined are absent (see `failures`);
    /// rows that only lost their baseline stay, with `baseline: None`.
    pub rows: Vec<CampaignRow>,
    /// Deduplicated simulation results the rows index into.
    pub sims: Vec<SimResult>,
    /// Executor accounting.
    pub stats: ExecStats,
    /// Quarantined cells, in job-discovery order. Empty on a clean run.
    pub failures: Vec<CellFailure>,
}

impl CampaignResult {
    /// The candidate simulation behind a row.
    pub fn sim_of(&self, row: &CampaignRow) -> &SimResult {
        &self.sims[row.sim]
    }

    /// The memoized baseline simulation behind a row, if any.
    pub fn baseline_of(&self, row: &CampaignRow) -> Option<&SimResult> {
        row.baseline.map(|i| &self.sims[i])
    }

    /// Speedup of a row's candidate over its baseline.
    pub fn speedup(&self, row: &CampaignRow) -> Option<f64> {
        self.baseline_of(row)
            .map(|baseline| self.sim_of(row).speedup_over(baseline))
    }

    /// Rows of one cell, in target-major spec order.
    pub fn rows_for_cell<'a>(
        &'a self,
        cell: &'a str,
    ) -> impl Iterator<Item = &'a CampaignRow> + 'a {
        self.rows.iter().filter(move |row| row.cell == cell)
    }

    /// Per-target speedups of one (cell, prefetcher label) column, in target
    /// order. Rows without a baseline are skipped.
    pub fn speedups(&self, cell: &str, prefetcher: &str) -> Vec<f64> {
        self.rows_for_cell(cell)
            .filter(|row| row.prefetcher == prefetcher)
            .filter_map(|row| self.speedup(row))
            .collect()
    }

    /// Mean per-core IPC of a row's candidate simulation (the single IPC
    /// aggregation both report renderers use).
    pub fn row_ipc(&self, row: &CampaignRow) -> f64 {
        crate::results::mean_ipc(self.sim_of(row))
    }

    /// Renders every row as an aligned ASCII table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            self.name.clone(),
            vec![
                "Cell".into(),
                "Target".into(),
                "Config".into(),
                "Prefetcher".into(),
                "IPC".into(),
                "Speedup".into(),
                "Delta".into(),
            ],
        );
        for row in &self.rows {
            let ipc = self.row_ipc(row);
            let (speedup, delta) = match self.speedup(row) {
                Some(speedup) => (format!("{speedup:.4}x"), percent(speedup - 1.0)),
                None => ("-".to_owned(), "-".to_owned()),
            };
            table.add_row(vec![
                row.cell.clone(),
                row.target.clone(),
                row.config.clone(),
                row.prefetcher.clone(),
                format!("{ipc:.3}"),
                speedup,
                delta,
            ]);
        }
        table
    }

    /// Renders the result as a JSON document (one emitter: [`crate::json`]).
    pub fn to_json(&self) -> Json {
        let rows = self.rows.iter().map(|row| {
            let ipc = self.row_ipc(row);
            let mut entries = vec![
                ("cell".to_owned(), Json::str(&row.cell)),
                ("target".to_owned(), Json::str(&row.target)),
                ("config".to_owned(), Json::str(&row.config)),
                ("prefetcher".to_owned(), Json::str(&row.prefetcher)),
                ("ipc".to_owned(), Json::num(round6(ipc))),
            ];
            match self.speedup(row) {
                Some(speedup) => {
                    entries.push(("speedup".to_owned(), Json::num(round6(speedup))));
                    entries.push(("delta".to_owned(), Json::num(round6(speedup - 1.0))));
                }
                None => {
                    entries.push(("speedup".to_owned(), Json::Null));
                    entries.push(("delta".to_owned(), Json::Null));
                }
            }
            // Sampled rows carry their confidence intervals; exact rows
            // keep the historical byte layout (no key at all).
            if let Some(stats) = &self.sim_of(row).sampling {
                entries.push((
                    "sampling".to_owned(),
                    Json::obj([
                        ("ipc", Json::num(round6(stats.ipc.mean))),
                        ("ipc_ci95", Json::num(round6(stats.ipc.ci95))),
                        ("coverage", Json::num(round6(stats.coverage.mean))),
                        ("coverage_ci95", Json::num(round6(stats.coverage.ci95))),
                        ("accuracy", Json::num(round6(stats.accuracy.mean))),
                        ("accuracy_ci95", Json::num(round6(stats.accuracy.ci95))),
                        ("intervals", Json::num(f64::from(stats.intervals))),
                    ]),
                ));
            }
            Json::Obj(entries)
        });
        let mut document = vec![
            ("campaign".to_owned(), Json::str(&self.name)),
            (
                "stats".to_owned(),
                Json::obj([
                    ("sims_run", Json::num(self.stats.sims_run as f64)),
                    ("baseline_sims", Json::num(self.stats.baseline_sims as f64)),
                    ("memo_hits", Json::num(self.stats.memo_hits as f64)),
                    ("threads", Json::num(self.stats.threads as f64)),
                ]),
            ),
            ("rows".to_owned(), Json::Arr(rows.collect())),
        ];
        // Only present when something was quarantined, so the clean-run
        // document (and with it resumed-vs-uninterrupted parity) is
        // unchanged.
        if !self.failures.is_empty() {
            let failures = self.failures.iter().map(|failure| {
                Json::obj([
                    ("target", Json::str(&failure.target)),
                    ("prefetcher", Json::str(&failure.prefetcher)),
                    ("config", Json::str(&failure.config)),
                    ("attempts", Json::num(f64::from(failure.attempts))),
                    ("error", failure.error.to_json()),
                ])
            });
            document.push(("failures".to_owned(), Json::Arr(failures.collect())));
        }
        Json::Obj(document)
    }

    /// Renders the rows as CSV with **raw numeric values** (six decimals,
    /// like the JSON form) rather than the display strings of
    /// [`CampaignResult::to_table`], so the file loads as numbers in
    /// spreadsheet/pandas pipelines. Baseline-less rows leave the speedup
    /// and delta fields empty.
    pub fn to_csv(&self) -> String {
        // CI columns appear only when at least one row is sampled, so
        // exact-run CSVs keep their historical column set byte-for-byte.
        let sampled = self
            .rows
            .iter()
            .any(|row| self.sim_of(row).sampling.is_some());
        let mut header = vec![
            "Cell".into(),
            "Target".into(),
            "Config".into(),
            "Prefetcher".into(),
            "IPC".into(),
            "Speedup".into(),
            "Delta".into(),
        ];
        if sampled {
            header.extend(["IpcCi95".into(), "Coverage".into(), "CoverageCi95".into()]);
        }
        let mut table = Table::new(self.name.clone(), header);
        for row in &self.rows {
            let (speedup, delta) = match self.speedup(row) {
                Some(speedup) => (
                    round6(speedup).to_string(),
                    round6(speedup - 1.0).to_string(),
                ),
                None => (String::new(), String::new()),
            };
            let mut fields = vec![
                row.cell.clone(),
                row.target.clone(),
                row.config.clone(),
                row.prefetcher.clone(),
                round6(self.row_ipc(row)).to_string(),
                speedup,
                delta,
            ];
            if sampled {
                match &self.sim_of(row).sampling {
                    Some(stats) => fields.extend([
                        round6(stats.ipc.ci95).to_string(),
                        round6(stats.coverage.mean).to_string(),
                        round6(stats.coverage.ci95).to_string(),
                    ]),
                    None => fields.extend([String::new(), String::new(), String::new()]),
                }
            }
            table.add_row(fields);
        }
        table.to_csv()
    }
}

fn round6(value: f64) -> f64 {
    crate::json::rounded(value, 1e6)
}

/// Bounded, deterministic retry for transiently failing cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell (1 = no retry). Clamped to at least 1.
    pub attempts: u32,
    /// Base backoff before the second attempt; doubles per further attempt
    /// (25 ms, 50 ms, 100 ms, ...). Deterministic, not jittered: retry
    /// timing must never make a campaign's *results* nondeterministic, and
    /// the executor's workers are self-scheduling so thundering herds are
    /// not a concern.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 2,
            backoff_ms: 25,
        }
    }
}

impl RetryPolicy {
    /// The delay before the given 1-based attempt (zero before the first).
    pub fn backoff_before(&self, attempt: u32) -> std::time::Duration {
        if attempt <= 1 {
            return std::time::Duration::ZERO;
        }
        let doublings = (attempt - 2).min(16);
        std::time::Duration::from_millis(self.backoff_ms.saturating_mul(1u64 << doublings))
    }
}

/// How one grid cell obtained its result, reported in
/// [`ProgressEvent::CellFinished`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// Freshly simulated this run.
    Fresh,
    /// Replayed from the campaign's resume journal.
    Journal,
    /// Served from the content-addressed result store.
    Store,
    /// Quarantined after exhausting its retry budget.
    Quarantined,
}

impl CellOutcome {
    /// Stable lower-case name (the serve layer's event vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            CellOutcome::Fresh => "fresh",
            CellOutcome::Journal => "journal",
            CellOutcome::Store => "store",
            CellOutcome::Quarantined => "quarantined",
        }
    }
}

/// One executor progress notification, delivered through
/// [`ExecOptions::progress`]. Cached cells (journal or store hits) are
/// announced up-front, before the worker pool starts; fresh and quarantined
/// cells as they finish.
#[derive(Debug, Clone)]
pub enum ProgressEvent {
    /// The grid is resolved: `total` deduplicated jobs, of which `cached`
    /// were satisfied by the journal or store before any worker started.
    Started {
        /// Deduplicated job count.
        total: usize,
        /// Jobs already satisfied from the journal or store.
        cached: usize,
    },
    /// One job finished (or was served from a cache).
    CellFinished {
        /// The executor's job key.
        key: String,
        /// Target (workload or mix) name.
        target: String,
        /// Prefetcher label.
        prefetcher: String,
        /// Config label.
        config: String,
        /// How the result was obtained.
        outcome: CellOutcome,
        /// Jobs completed so far (including this one).
        completed: usize,
        /// Deduplicated job count.
        total: usize,
    },
    /// The campaign is complete.
    Finished {
        /// Simulations with a result.
        sims: usize,
        /// Cells quarantined.
        quarantined: usize,
    },
}

/// Callback receiving [`ProgressEvent`]s; invoked from executor worker
/// threads, so it must be cheap and must not block on the caller.
pub type ProgressSink = std::sync::Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Shared handle to the durable result store (one per process, shared across
/// campaigns and with the serve layer's query endpoints).
pub type SharedStore = std::sync::Arc<Mutex<crate::store::ResultStore>>;

/// Execution options for [`run_campaign_with`]: retry budget, optional
/// fault injection, optional crash-safe journaling, optional durable result
/// store, optional progress callbacks.
#[derive(Clone, Default)]
pub struct ExecOptions {
    /// Retry budget per cell.
    pub retry: RetryPolicy,
    /// Deterministic fault injection (tests only; `None` in production).
    pub faults: Option<FaultPlan>,
    /// Journal file: every completed cell is appended (and flushed) here.
    pub journal: Option<PathBuf>,
    /// With `journal` set: replay completed cells from an existing journal
    /// instead of re-executing them. A missing or empty journal file starts
    /// fresh, so `resume` is safe to pass unconditionally.
    pub resume: bool,
    /// Content-addressed durable store: cells whose
    /// [`crate::store::cell_fingerprint`] is present are served from it
    /// (counted in [`ExecStats::store_hits`]), and every fresh result is
    /// appended to it — so identical cells never simulate twice across
    /// campaigns, requests, or process restarts.
    pub store: Option<SharedStore>,
    /// Progress callback; see [`ProgressEvent`].
    pub progress: Option<ProgressSink>,
    /// With a sampled scale: directory caching warm-up checkpoints across
    /// processes (`<token>.ckpt` per (target, config, warm-up) identity).
    /// A corrupt or version-skewed file is recomputed, never trusted.
    pub checkpoint_dir: Option<PathBuf>,
}

impl std::fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("retry", &self.retry)
            .field("faults", &self.faults)
            .field("journal", &self.journal)
            .field("resume", &self.resume)
            .field("store", &self.store.as_ref().map(|_| "<store>"))
            .field("progress", &self.progress.as_ref().map(|_| "<sink>"))
            .field("checkpoint_dir", &self.checkpoint_dir)
            .finish()
    }
}

struct Job {
    /// Memoization identity; doubles as the journal key.
    key: String,
    /// Content address in the durable store ([`crate::store::cell_fingerprint`]).
    fingerprint: String,
    target: Target,
    sel: PrefetcherSel,
    config: SystemConfig,
    config_label: String,
    /// Sampled scales only: the shared neutral warm-up checkpoint this
    /// column restores instead of re-warming (one per (target, config)).
    warm: Option<std::sync::Arc<dspatch_sim::MachineState>>,
}

impl Job {
    fn run(&self, scale: &RunScale) -> SimResult {
        if let Some(plan) = &scale.sampling {
            // resolve_cells rejects mixes under sampling, so the target is
            // always a single workload here.
            let Target::Workload(workload) = &self.target else {
                panic!("job '{}': sampled scales cannot run mixes", self.key)
            };
            let source = Box::new(workload.source(scale.accesses_per_workload))
                as Box<dyn dspatch_trace::TraceSource>;
            return crate::sampling::run_sampled(
                source,
                self.sel.build_any(),
                &self.config,
                plan,
                self.warm.as_deref(),
            )
            .unwrap_or_else(|error| panic!("sampled job '{}': {error}", self.key));
        }
        // Workloads stream into the machine as lazy sources: a campaign's
        // resident memory is independent of `accesses_per_workload`, however
        // many workers run concurrently.
        let mut builder = SimulationBuilder::new(self.config.clone());
        match &self.target {
            Target::Workload(workload) => {
                builder = builder.with_core(
                    workload.source(scale.accesses_per_workload),
                    self.sel.build_any(),
                );
            }
            Target::Mix(mix) => {
                for workload in &mix.workloads {
                    builder = builder.with_core(
                        workload.source(scale.accesses_per_workload),
                        self.sel.build_any(),
                    );
                }
            }
        }
        builder.run()
    }
}

/// Resolves a declarative spec against the workload suite and runs it.
///
/// The scale passed here wins over `spec.scale`; callers that want the
/// spec's embedded scale resolve it first (the CLI does).
///
/// # Errors
///
/// Returns a message for unknown workload names in the spec.
pub fn run_campaign(spec: &CampaignSpec, scale: &RunScale) -> Result<CampaignResult, String> {
    run_campaign_with(spec, scale, &ExecOptions::default()).map_err(|error| error.to_string())
}

/// [`run_campaign`] with explicit execution options: retry policy, fault
/// injection, and crash-safe journaling/resume.
///
/// # Errors
///
/// * [`HarnessError::Spec`] — the spec is invalid (unknown workloads,
///   duplicate labels, core-count mismatches, ...).
/// * [`HarnessError::Io`] / [`HarnessError::Corrupt`] /
///   [`HarnessError::Mismatch`] — the journal cannot be written, is
///   damaged mid-file, or belongs to a different campaign.
///
/// Quarantined cells are **not** errors: the campaign completes and reports
/// them in [`CampaignResult::failures`].
pub fn run_campaign_with(
    spec: &CampaignSpec,
    scale: &RunScale,
    opts: &ExecOptions,
) -> Result<CampaignResult, HarnessError> {
    let cells = resolve_cells(spec, scale).map_err(HarnessError::spec)?;
    let journal = opts.journal.as_ref().map(|path| {
        let meta = JournalMeta {
            campaign: spec.name.clone(),
            fingerprint: campaign_fingerprint(&spec.to_json(), scale),
        };
        (path.clone(), meta)
    });
    execute_cells(&spec.name, &cells, scale, opts, journal)
}

/// Validates a spec and resolves its cells against the workload suite.
fn resolve_cells(spec: &CampaignSpec, scale: &RunScale) -> Result<Vec<ResolvedCell>, String> {
    // Report rows and per-cell queries (rows_for_cell / speedups) key on the
    // label, so duplicates would silently pool unrelated cells.
    let mut labels = std::collections::HashSet::new();
    for cell in &spec.cells {
        if !labels.insert(cell.label.as_str()) {
            return Err(format!(
                "duplicate cell label '{}': every cell needs a unique label",
                cell.label
            ));
        }
    }
    spec.cells
        .iter()
        .map(|cell| {
            let targets = cell.targets.resolve(scale)?;
            let config = cell.config.build();
            config
                .validate()
                .map_err(|e| format!("cell '{}': invalid config: {e}", cell.label))?;
            if cell.prefetchers.is_empty() {
                return Err(format!(
                    "cell '{}': needs at least one prefetcher (an empty cell would \
                     simulate baselines but produce no rows)",
                    cell.label
                ));
            }
            let mut seen_sels = std::collections::HashSet::new();
            for sel in &cell.prefetchers {
                sel.validate()
                    .map_err(|e| format!("cell '{}': {e}", cell.label))?;
                // A repeated column would emit duplicate rows under one
                // label, double-weighting that prefetcher in aggregations.
                if !seen_sels.insert(*sel) {
                    return Err(format!(
                        "cell '{}': duplicate prefetcher '{}'",
                        cell.label,
                        sel.label()
                    ));
                }
            }
            if let Some(plan) = &scale.sampling {
                plan.validate_for(scale.accesses_per_workload as u64)
                    .map_err(|e| format!("cell '{}': {e}", cell.label))?;
                if let Some(mix) = targets.iter().find_map(|t| match t {
                    Target::Mix(mix) => Some(mix),
                    Target::Workload(_) => None,
                }) {
                    return Err(format!(
                        "cell '{}': sampled scales are single-core-only, but target \
                         '{}' is a multi-programmed mix (drop --sample or the mixes)",
                        cell.label, mix.name
                    ));
                }
            }
            // Catch core-count mismatches here, where they are a clean spec
            // error, instead of panicking inside an executor worker.
            for target in &targets {
                if target.cores() == 0 {
                    return Err(format!(
                        "cell '{}': target '{}' has no cores",
                        cell.label,
                        target.name()
                    ));
                }
                if target.cores() > config.cores {
                    return Err(format!(
                        "cell '{}': target '{}' needs {} cores but config '{}' provides {}",
                        cell.label,
                        target.name(),
                        target.cores(),
                        cell.config.label(),
                        config.cores
                    ));
                }
            }
            Ok(ResolvedCell {
                label: cell.label.clone(),
                targets,
                prefetchers: cell.prefetchers.clone(),
                config,
                config_label: cell.config.label(),
                baseline: cell.baseline,
            })
        })
        .collect::<Result<Vec<_>, String>>()
}

/// Executes resolved cells: deduplicates (target, prefetcher, config) jobs,
/// memoizes baselines, and drains the job queue with a pool of workers that
/// each claim the next job from a shared atomic cursor (self-scheduling,
/// not per-worker deques).
///
/// # Panics
///
/// Panics if two cells share a label: [`CampaignResult::rows_for_cell`] and
/// [`CampaignResult::speedups`] key on the label, so duplicates would
/// silently pool unrelated cells. (Spec files get the same condition as a
/// clean error from [`run_campaign`] before any work happens.)
pub fn run_cells(name: &str, cells: &[ResolvedCell], scale: &RunScale) -> CampaignResult {
    match execute_cells(name, cells, scale, &ExecOptions::default(), None) {
        Ok(result) => result,
        // The default options configure no journal, so no fallible I/O path
        // exists; cell failures surface as quarantines, not errors.
        Err(error) => unreachable!("journal-less execution cannot fail: {error}"),
    }
}

/// Locks a mutex, recovering the guard if a panicking thread poisoned it —
/// the executor's shared state (journal handle, first-error slot) stays
/// usable because every write through it is a single self-contained record.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Renders a panic payload (almost always a `&str` or `String`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One isolated attempt at a job: arms any injected fault, then runs the
/// simulation under `catch_unwind` so a panic (injected or real) becomes a
/// typed [`HarnessError`] instead of tearing down the worker pool.
fn attempt_job(
    job: &Job,
    scale: &RunScale,
    opts: &ExecOptions,
    attempt: u32,
) -> Result<SimResult, HarnessError> {
    let prefetcher = job.sel.label();
    let armed = opts
        .faults
        .as_ref()
        .and_then(|plan| plan.arm(job.target.name(), &prefetcher, attempt));
    if matches!(armed, Some(FaultKind::Io)) {
        return Err(HarnessError::CellIo {
            job: job.key.clone(),
            message: format!("injected I/O fault (attempt {attempt})"),
        });
    }
    catch_unwind(AssertUnwindSafe(|| {
        if matches!(armed, Some(FaultKind::Panic)) {
            panic!("injected panic (attempt {attempt})");
        }
        job.run(scale)
    }))
    .map_err(|payload| HarnessError::CellPanic {
        job: job.key.clone(),
        message: panic_message(payload),
    })
}

/// Runs one job to completion or quarantine: up to `retry.attempts` isolated
/// attempts with deterministic exponential backoff between them.
fn run_job(
    job: &Job,
    scale: &RunScale,
    opts: &ExecOptions,
    retries: &AtomicUsize,
) -> Result<SimResult, Box<CellFailure>> {
    let attempts = opts.retry.attempts.max(1);
    let mut last: Option<HarnessError> = None;
    for attempt in 1..=attempts {
        if attempt > 1 {
            retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(opts.retry.backoff_before(attempt));
        }
        match attempt_job(job, scale, opts, attempt) {
            Ok(sim) => return Ok(sim),
            Err(error) => last = Some(error),
        }
    }
    let last = last.unwrap_or_else(|| HarnessError::CellPanic {
        job: job.key.clone(),
        message: "no attempt recorded an error".to_owned(),
    });
    Err(Box::new(CellFailure {
        key: job.key.clone(),
        target: job.target.name().to_owned(),
        prefetcher: job.sel.label(),
        config: job.config_label.clone(),
        attempts,
        error: HarnessError::Quarantined {
            job: job.key.clone(),
            attempts,
            last: Box::new(last),
        },
    }))
}

/// Computes (or loads from `checkpoint_dir`) the neutral warm-up checkpoint
/// for one (target, config) group of a sampled campaign. Returns the state
/// and whether it was computed fresh (`true`) rather than loaded from disk.
/// One warm-up group's result: the shared checkpoint plus whether it was
/// freshly computed (`true`) or loaded from a checkpoint directory.
type WarmupOutcome = Result<(std::sync::Arc<dspatch_sim::MachineState>, bool), HarnessError>;

fn warm_group(
    job: &Job,
    token: &str,
    plan: &SamplingPlan,
    scale: &RunScale,
    checkpoint_dir: Option<&std::path::Path>,
) -> WarmupOutcome {
    let path = checkpoint_dir.map(|dir| dir.join(format!("{token}.ckpt")));
    if let Some(path) = &path {
        if let Ok(bytes) = std::fs::read(path) {
            if let Ok(state) = dspatch_sim::MachineState::from_bytes(bytes) {
                return Ok((std::sync::Arc::new(state), false));
            }
            // Corrupt or version-skewed bytes: recompute below (the token
            // embeds the snapshot format version, so skew is rare).
        }
    }
    let Target::Workload(workload) = &job.target else {
        return Err(HarnessError::spec(format!(
            "job '{}': sampled scales cannot warm mixes",
            job.key
        )));
    };
    let source = Box::new(workload.source(scale.accesses_per_workload))
        as Box<dyn dspatch_trace::TraceSource>;
    let state = crate::sampling::warmup_checkpoint(source, &job.config, plan)?;
    if let Some(path) = &path {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| HarnessError::io(dir.display().to_string(), "create_dir", &e))?;
        }
        std::fs::write(path, state.as_bytes())
            .map_err(|e| HarnessError::io(path.display().to_string(), "write", &e))?;
    }
    Ok((std::sync::Arc::new(state), true))
}

/// The executor behind [`run_cells`] and [`run_campaign_with`].
fn execute_cells(
    name: &str,
    cells: &[ResolvedCell],
    scale: &RunScale,
    opts: &ExecOptions,
    journal: Option<(PathBuf, JournalMeta)>,
) -> Result<CampaignResult, HarnessError> {
    let mut labels = std::collections::HashSet::new();
    for cell in cells {
        assert!(
            labels.insert(cell.label.as_str()),
            "duplicate cell label '{}': every cell needs a unique label",
            cell.label
        );
    }

    let mut jobs: Vec<Job> = Vec::new();
    let mut job_index: HashMap<String, usize> = HashMap::new();
    let mut configs: Vec<SystemConfig> = Vec::new();
    let mut memo_hits = 0usize;
    let mut rows: Vec<CampaignRow> = Vec::new();

    for cell in cells {
        // Deduplicated config index, part of each job's memoization key.
        let cfg = configs
            .iter()
            .position(|c| c == &cell.config)
            .unwrap_or_else(|| {
                configs.push(cell.config.clone());
                configs.len() - 1
            });
        for target in &cell.targets {
            let target_key = target.key();
            let ensure = |jobs: &mut Vec<Job>,
                          job_index: &mut HashMap<String, usize>,
                          memo_hits: &mut usize,
                          sel: PrefetcherSel| {
                let key = format!("{target_key}|c{cfg}|{sel:?}");
                if let Some(&existing) = job_index.get(&key) {
                    *memo_hits += 1;
                    return existing;
                }
                let index = jobs.len();
                job_index.insert(key.clone(), index);
                let config = scale.apply_sim_workers(cell.config.clone());
                let fingerprint = crate::store::cell_fingerprint_sampled(
                    &target_key,
                    &format!("{sel:?}"),
                    &config,
                    scale.accesses_per_workload,
                    scale.sampling.as_ref(),
                );
                jobs.push(Job {
                    key,
                    fingerprint,
                    target: target.clone(),
                    sel,
                    config,
                    config_label: cell.config_label.clone(),
                    warm: None,
                });
                index
            };
            let baseline = cell.baseline.then(|| {
                ensure(
                    &mut jobs,
                    &mut job_index,
                    &mut memo_hits,
                    PrefetcherSel::Kind(PrefetcherKind::Baseline),
                )
            });
            for sel in &cell.prefetchers {
                let sim = ensure(&mut jobs, &mut job_index, &mut memo_hits, *sel);
                rows.push(CampaignRow {
                    cell: cell.label.clone(),
                    target: target.name().to_owned(),
                    config: cell.config_label.clone(),
                    prefetcher: sel.label(),
                    sim,
                    baseline,
                });
            }
        }
    }

    // Every persisted record — journal line, store row — carries the cell's
    // identity spelled out as one canonical ResultRow, so the analytics
    // layer can filter and group without re-deriving anything.
    let sampling_suffix = scale
        .sampling
        .as_ref()
        .map(crate::sampling::SamplingPlan::fingerprint_suffix)
        .unwrap_or_default();
    let row_of = |job: &Job, sim: &SimResult| {
        ResultRow::new(
            job.fingerprint.clone(),
            name.to_owned(),
            job.target.name().to_owned(),
            job.sel.label(),
            job.config_label.clone(),
            scale.accesses_per_workload as u64,
            sampling_suffix.clone(),
            sim.clone(),
        )
    };

    // Journal replay: completed cells load from the verified journal and
    // never re-execute. A missing (or not-yet-written) journal starts fresh
    // so `resume: true` is safe on the first run too.
    let mut replayed: Vec<Option<SimResult>> = Vec::new();
    replayed.resize_with(jobs.len(), || None);
    let mut journal_hits = 0usize;
    let writer = match &journal {
        None => None,
        Some((path, meta)) => {
            let resumable = opts.resume && path.exists();
            let clean_len = if resumable {
                let contents = read_journal(path, meta)?;
                for (slot, job) in replayed.iter_mut().zip(&jobs) {
                    if let Some(sim) = contents.sims.get(&job.key) {
                        *slot = Some(sim.clone());
                        journal_hits += 1;
                    }
                }
                contents.clean_len
            } else {
                0
            };
            if clean_len == 0 {
                Some(JournalWriter::create(path, meta)?)
            } else {
                Some(JournalWriter::resume(path, clean_len)?)
            }
        }
    };
    let mut cached_outcome: Vec<Option<CellOutcome>> = replayed
        .iter()
        .map(|slot| slot.as_ref().map(|_| CellOutcome::Journal))
        .collect();

    // Store replay: cells already simulated by ANY prior campaign — this
    // one's journal aside, another request's grid or a previous process
    // incarnation's — load from the content-addressed store. Store-served
    // cells are appended to the journal (if one is active) so its
    // completeness guarantee holds, and journal-replayed cells are
    // backfilled into the store so resumed campaigns populate it too.
    let mut writer = writer;
    let mut store_hits = 0usize;
    if let Some(shared) = &opts.store {
        let mut store = lock_unpoisoned(shared);
        for (index, job) in jobs.iter().enumerate() {
            if let Some(sim) = &replayed[index] {
                store.insert(&row_of(job, sim))?;
                continue;
            }
            let hit = store.get(&job.fingerprint).cloned();
            if let Some(sim) = hit {
                if let Some(writer) = writer.as_mut() {
                    writer.append_sim(&job.key, &row_of(job, &sim), false)?;
                }
                replayed[index] = Some(sim);
                cached_outcome[index] = Some(CellOutcome::Store);
                store_hits += 1;
            }
        }
    }
    let skip: Vec<bool> = replayed.iter().map(Option::is_some).collect();

    // Sampled scales: one neutral warm-up checkpoint per (target, config)
    // group, computed (or loaded from `checkpoint_dir`) before the worker
    // pool starts and forked across every prefetcher column of the group.
    let mut warmups_run = 0usize;
    if let Some(plan) = &scale.sampling {
        let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
        for (index, job) in jobs.iter().enumerate() {
            if skip[index] {
                continue;
            }
            let token = crate::sampling::checkpoint_token(&job.target.key(), &job.config, plan);
            groups.entry(token).or_default().push(index);
        }
        let groups: Vec<(String, Vec<usize>)> = groups.into_iter().collect();
        let warm_cursor = AtomicUsize::new(0);
        let warm_threads = scale.threads.clamp(1, groups.len().max(1));
        let mut warmed: Vec<Option<WarmupOutcome>> = Vec::new();
        warmed.resize_with(groups.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(warm_threads);
            for _ in 0..warm_threads {
                let groups = &groups;
                let jobs = &jobs;
                let warm_cursor = &warm_cursor;
                let checkpoint_dir = opts.checkpoint_dir.as_deref();
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let next = warm_cursor.fetch_add(1, Ordering::Relaxed);
                        if next >= groups.len() {
                            break;
                        }
                        let (token, indices) = &groups[next];
                        let job = &jobs[indices[0]];
                        local.push((next, warm_group(job, token, plan, scale, checkpoint_dir)));
                    }
                    local
                }));
            }
            for handle in handles {
                // Warm-up closures don't panic on simulation content (the
                // plan was validated in resolve_cells); a join failure is
                // an executor bug and surfaces as the slot staying empty.
                if let Ok(local) = handle.join() {
                    for (index, outcome) in local {
                        warmed[index] = Some(outcome);
                    }
                }
            }
        });
        for ((_, indices), slot) in groups.iter().zip(warmed) {
            let (state, computed) = slot.ok_or_else(|| HarnessError::CellPanic {
                job: jobs[indices[0]].key.clone(),
                message: "warm-up worker died before reporting".to_owned(),
            })??;
            if computed {
                warmups_run += 1;
            }
            for &index in indices {
                jobs[index].warm = Some(state.clone());
            }
        }
    }

    // Progress: announce the resolved grid, then every cache-satisfied cell
    // (in job-discovery order) before the worker pool starts.
    let total_jobs = jobs.len();
    let cached = skip.iter().filter(|&&hit| hit).count();
    if let Some(sink) = &opts.progress {
        sink(&ProgressEvent::Started {
            total: total_jobs,
            cached,
        });
        let mut announced = 0usize;
        for (index, outcome) in cached_outcome.iter().enumerate() {
            if let Some(outcome) = outcome {
                announced += 1;
                let job = &jobs[index];
                sink(&ProgressEvent::CellFinished {
                    key: job.key.clone(),
                    target: job.target.name().to_owned(),
                    prefetcher: job.sel.label(),
                    config: job.config_label.clone(),
                    outcome: *outcome,
                    completed: announced,
                    total: total_jobs,
                });
            }
        }
    }

    // Cost-sorted execution order: multi-core mixes first so the longest
    // simulations never strand at the tail of the queue.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(jobs[i].target.cores()));

    // Campaign-level workers and intra-simulation epoch workers share one
    // thread budget: when the cells request `parallel_cores`, each job may
    // spin up `effective_workers()` threads of its own, so the outer pool
    // shrinks by that factor instead of multiplying against it.
    let max_intra = jobs
        .iter()
        .map(|job| job.config.effective_workers())
        .max()
        .unwrap_or(1)
        .max(1);
    let threads = (scale.threads / max_intra).clamp(1, jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let retries = AtomicUsize::new(0);
    let completed = AtomicUsize::new(cached);
    let journal_sink: Mutex<Option<JournalWriter>> = Mutex::new(writer);
    let write_error: Mutex<Option<HarnessError>> = Mutex::new(None);

    let mut slots: Vec<Option<Result<SimResult, Box<CellFailure>>>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    for (slot, sim) in slots.iter_mut().zip(replayed) {
        if let Some(sim) = sim {
            *slot = Some(Ok(sim));
        }
    }
    let mut worker_panic: Option<HarnessError> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let jobs = &jobs;
            let order = &order;
            let skip = &skip;
            let cursor = &cursor;
            let stop = &stop;
            let retries = &retries;
            let completed = &completed;
            let journal_sink = &journal_sink;
            let write_error = &write_error;
            let row_of = &row_of;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    if next >= order.len() {
                        break;
                    }
                    let index = order[next];
                    if skip[index] {
                        continue;
                    }
                    let job = &jobs[index];
                    let outcome = run_job(job, scale, opts, retries);
                    // One flushed journal record per completed cell: the
                    // lock is taken after the (multi-second) simulation, so
                    // it never serializes actual work. A write failure is
                    // fatal for the campaign (the journal's guarantee is
                    // gone) — record the first error, stop claiming jobs.
                    let appended = match lock_unpoisoned(journal_sink).as_mut() {
                        None => Ok(()),
                        Some(writer) => match &outcome {
                            Ok(sim) => {
                                let corrupt = opts.faults.as_ref().is_some_and(|plan| {
                                    plan.corrupts_journal(job.target.name(), &job.sel.label())
                                });
                                writer.append_sim(&job.key, &row_of(job, sim), corrupt)
                            }
                            Err(failure) => {
                                writer.append_failure(&job.key, &failure.error, failure.attempts)
                            }
                        },
                    };
                    if let Err(error) = appended {
                        lock_unpoisoned(write_error).get_or_insert(error);
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    // Durable store append: every fresh result becomes
                    // addressable by all future campaigns. Like the journal,
                    // a write failure voids the store's guarantee and is
                    // fatal for the campaign.
                    let stored = match (&opts.store, &outcome) {
                        (Some(shared), Ok(sim)) => lock_unpoisoned(shared)
                            .insert(&row_of(job, sim))
                            .map(|_| ()),
                        _ => Ok(()),
                    };
                    if let Err(error) = stored {
                        lock_unpoisoned(write_error).get_or_insert(error);
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    if let Some(sink) = &opts.progress {
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        sink(&ProgressEvent::CellFinished {
                            key: job.key.clone(),
                            target: job.target.name().to_owned(),
                            prefetcher: job.sel.label(),
                            config: job.config_label.clone(),
                            outcome: if outcome.is_ok() {
                                CellOutcome::Fresh
                            } else {
                                CellOutcome::Quarantined
                            },
                            completed: done,
                            total: total_jobs,
                        });
                    }
                    local.push((index, outcome));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (index, outcome) in local {
                        slots[index] = Some(outcome);
                    }
                }
                // Workers wrap every simulation in catch_unwind, so this
                // only fires on an executor bug; classify it instead of
                // propagating the panic.
                Err(payload) => {
                    worker_panic = Some(HarnessError::CellPanic {
                        job: "<executor worker>".to_owned(),
                        message: panic_message(payload),
                    });
                }
            }
        }
    });
    if let Some(error) = lock_unpoisoned(&write_error).take() {
        return Err(error);
    }
    if let Some(error) = worker_panic {
        return Err(error);
    }

    // Compact the surviving simulations: quarantined jobs leave no sim, so
    // rows are remapped onto the dense vector (a row that lost its candidate
    // is dropped into `failures`; one that lost only its baseline stays).
    let mut sims: Vec<SimResult> = Vec::new();
    let mut remap: Vec<Option<usize>> = vec![None; jobs.len()];
    let mut failures_by_job: Vec<Option<CellFailure>> = vec![None; jobs.len()];
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(sim)) => {
                remap[index] = Some(sims.len());
                sims.push(sim);
            }
            Some(Err(failure)) => failures_by_job[index] = Some(*failure),
            None => {
                return Err(HarnessError::CellPanic {
                    job: jobs[index].key.clone(),
                    message: "executor finished without a result for this job".to_owned(),
                })
            }
        }
    }
    let rows = rows
        .into_iter()
        .filter_map(|row| {
            remap[row.sim].map(|sim| CampaignRow {
                sim,
                baseline: row.baseline.and_then(|b| remap[b]),
                ..row
            })
        })
        .collect();
    let failures: Vec<CellFailure> = failures_by_job.into_iter().flatten().collect();
    let baseline_sims = jobs
        .iter()
        .enumerate()
        .filter(|(index, job)| job.sel.is_baseline() && remap[*index].is_some())
        .count();

    if let Some(sink) = &opts.progress {
        sink(&ProgressEvent::Finished {
            sims: sims.len(),
            quarantined: failures.len(),
        });
    }

    Ok(CampaignResult {
        name: name.to_owned(),
        stats: ExecStats {
            sims_run: sims.len(),
            baseline_sims,
            memo_hits,
            threads,
            journal_hits,
            store_hits,
            retries: retries.load(Ordering::Relaxed),
            quarantined: failures.len(),
            warmups_run,
        },
        rows,
        sims,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunScale {
        RunScale {
            accesses_per_workload: 600,
            workloads_per_category: 1,
            mixes: 1,
            threads: 2,
            sim_workers: 0,
            sampling: None,
        }
    }

    fn sampled_tiny() -> RunScale {
        RunScale {
            accesses_per_workload: 20_000,
            sampling: Some(SamplingPlan {
                warmup_accesses: 2_000,
                interval_accesses: 400,
                intervals: 4,
                seed: 1,
            }),
            ..tiny()
        }
    }

    fn sampled_cell() -> CellSpec {
        CellSpec {
            label: "sampled".to_owned(),
            targets: TargetSelector::Category(WorkloadCategory::Cloud),
            prefetchers: vec![
                PrefetcherSel::Kind(PrefetcherKind::Bop),
                PrefetcherSel::Kind(PrefetcherKind::Spp),
                PrefetcherSel::Kind(PrefetcherKind::DspatchPlusSpp),
            ],
            config: ConfigSpec::single_thread(),
            baseline: true,
        }
    }

    #[test]
    fn sampled_campaigns_share_one_warmup_across_columns() {
        let spec = CampaignSpec::single_cell("sampled", sampled_cell());
        let result = run_campaign(&spec, &sampled_tiny()).expect("valid spec");
        // 1 workload × (1 baseline + 3 candidates), all forked from ONE
        // neutral warm-up checkpoint — the counter proves the sharing.
        assert_eq!(result.stats.sims_run, 4);
        assert_eq!(result.stats.warmups_run, 1);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            let stats = result.sim_of(row).sampling.expect("sampled rows carry CIs");
            assert_eq!(stats.intervals, 4);
            assert!(result.row_ipc(row) > 0.0);
        }
        // The row surface carries the CIs in JSON and CSV.
        let json = result.to_json().render_compact();
        assert!(json.contains("\"ipc_ci95\""));
        let csv = result.to_csv();
        assert!(csv.contains("IpcCi95"));
        // Exact runs keep their historical surfaces untouched.
        let exact = run_campaign(&spec, &tiny()).expect("valid spec");
        assert_eq!(exact.stats.warmups_run, 0);
        assert!(!exact.to_json().render_compact().contains("ipc_ci95"));
        assert!(!exact.to_csv().contains("IpcCi95"));
    }

    #[test]
    fn checkpoint_dir_reuses_warmups_across_campaigns() {
        let dir = std::env::temp_dir().join(format!("dspatch_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = CampaignSpec::single_cell("ckpt", sampled_cell());
        let opts = ExecOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ExecOptions::default()
        };
        let first = run_campaign_with(&spec, &sampled_tiny(), &opts).expect("valid spec");
        assert_eq!(first.stats.warmups_run, 1);
        // Second process incarnation: the warm-up loads from disk.
        let second = run_campaign_with(&spec, &sampled_tiny(), &opts).expect("valid spec");
        assert_eq!(second.stats.warmups_run, 0);
        assert_eq!(first.sims, second.sims);
        // A corrupt checkpoint is recomputed, never trusted.
        for entry in std::fs::read_dir(&dir).expect("dir exists") {
            std::fs::write(entry.expect("entry").path(), b"garbage").expect("writable");
        }
        let third = run_campaign_with(&spec, &sampled_tiny(), &opts).expect("valid spec");
        assert_eq!(third.stats.warmups_run, 1);
        assert_eq!(first.sims, third.sims);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_scales_reject_mixes_and_oversized_plans() {
        let mixes = CampaignSpec::single_cell(
            "mixes",
            CellSpec {
                targets: TargetSelector::HomogeneousMixes { cores: 4 },
                config: ConfigSpec::multi_programmed(),
                ..sampled_cell()
            },
        );
        let err = run_campaign(&mixes, &sampled_tiny()).unwrap_err();
        assert!(err.contains("single-core-only"), "{err}");
        let oversized = RunScale {
            accesses_per_workload: 3_000,
            ..sampled_tiny()
        };
        let spec = CampaignSpec::single_cell("oversized", sampled_cell());
        let err = run_campaign(&spec, &oversized).unwrap_err();
        assert!(err.contains("sampling plan needs"), "{err}");
    }

    #[test]
    fn sampled_and_exact_cells_never_alias_in_the_store() {
        let config = ConfigSpec::single_thread().build();
        let exact = crate::store::cell_fingerprint("w:a", "Kind(Spp)", &config, 20_000);
        let plan = SamplingPlan {
            warmup_accesses: 2_000,
            interval_accesses: 400,
            intervals: 4,
            seed: 1,
        };
        let sampled = crate::store::cell_fingerprint_sampled(
            "w:a",
            "Kind(Spp)",
            &config,
            20_000,
            Some(&plan),
        );
        assert_ne!(exact, sampled);
    }

    #[test]
    fn baselines_are_memoized_across_prefetcher_columns() {
        let spec = CampaignSpec::single_cell(
            "memo",
            CellSpec {
                label: "cloud".to_owned(),
                targets: TargetSelector::Category(WorkloadCategory::Cloud),
                prefetchers: vec![
                    PrefetcherSel::Kind(PrefetcherKind::Bop),
                    PrefetcherSel::Kind(PrefetcherKind::Spp),
                    PrefetcherSel::Kind(PrefetcherKind::Sms),
                ],
                config: ConfigSpec::single_thread(),
                baseline: true,
            },
        );
        let result = run_campaign(&spec, &tiny()).expect("valid spec");
        // 1 workload (smoke cap) × (1 baseline + 3 candidates).
        assert_eq!(result.stats.sims_run, 4);
        assert_eq!(result.stats.baseline_sims, 1);
        assert_eq!(result.rows.len(), 3);
        assert!(result.rows.iter().all(|row| row.baseline.is_some()));
        for row in &result.rows {
            assert!(result.speedup(row).unwrap() > 0.0);
        }
    }

    #[test]
    fn duplicate_cells_share_candidate_simulations() {
        let cell = CellSpec {
            label: "a".to_owned(),
            targets: TargetSelector::Category(WorkloadCategory::Hpc),
            prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
            config: ConfigSpec::single_thread(),
            baseline: true,
        };
        let mut twin = cell.clone();
        twin.label = "b".to_owned();
        let spec = CampaignSpec {
            name: "dedup".to_owned(),
            scale: None,
            cells: vec![cell, twin],
        };
        let result = run_campaign(&spec, &tiny()).expect("valid spec");
        // Cell b's baseline and candidate both come from the memo table.
        assert_eq!(result.stats.sims_run, 2);
        assert_eq!(result.stats.memo_hits, 2);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].sim, result.rows[1].sim);
    }

    #[test]
    fn distinct_configs_do_not_share_baselines() {
        let base = CellSpec {
            label: "2133".to_owned(),
            targets: TargetSelector::Category(WorkloadCategory::Hpc),
            prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
            config: ConfigSpec::single_thread(),
            baseline: true,
        };
        let mut faster = base.clone();
        faster.label = "2400".to_owned();
        faster.config = ConfigSpec::single_thread().with_dram(2, DramSpeedGrade::Ddr4_2400);
        let spec = CampaignSpec {
            name: "configs".to_owned(),
            scale: None,
            cells: vec![base, faster],
        };
        let result = run_campaign(&spec, &tiny()).expect("valid spec");
        assert_eq!(result.stats.sims_run, 4);
        assert_eq!(result.stats.baseline_sims, 2);
        assert_eq!(result.stats.memo_hits, 0);
    }

    #[test]
    fn cells_without_baseline_run_candidates_only() {
        let spec = CampaignSpec::single_cell(
            "raw",
            CellSpec {
                label: "pollution".to_owned(),
                targets: TargetSelector::Category(WorkloadCategory::Server),
                prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Streamer)],
                config: ConfigSpec::single_thread().with_llc_bytes(2 << 20),
                baseline: false,
            },
        );
        let result = run_campaign(&spec, &tiny()).expect("valid spec");
        assert_eq!(result.stats.sims_run, 1);
        assert_eq!(result.stats.baseline_sims, 0);
        assert!(result.rows[0].baseline.is_none());
        assert!(result.speedup(&result.rows[0]).is_none());
        assert!(result.to_table().render().contains("-"));
    }

    #[test]
    fn mixes_resolve_and_run_in_parallel() {
        let spec = CampaignSpec::single_cell(
            "mixes",
            CellSpec {
                label: "homogeneous".to_owned(),
                targets: TargetSelector::HomogeneousMixes { cores: 4 },
                prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
                config: ConfigSpec::multi_programmed(),
                baseline: true,
            },
        );
        let result = run_campaign(&spec, &tiny()).expect("valid spec");
        assert_eq!(result.rows.len(), 1, "mix cap of 1 at tiny scale");
        let sim = result.sim_of(&result.rows[0]);
        assert_eq!(sim.cores.len(), 4);
        assert!(result.speedup(&result.rows[0]).is_some());
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = CampaignSpec::template();
        let text = spec.to_json().render();
        let reparsed = CampaignSpec::parse(&text).expect("template parses");
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn spec_errors_are_reported() {
        assert!(CampaignSpec::parse("{\"cells\": 3}").is_err());
        assert!(CampaignSpec::parse("not json").is_err());
        let unknown_workload = CampaignSpec::single_cell(
            "bad",
            CellSpec {
                label: "x".to_owned(),
                targets: TargetSelector::Workloads(vec!["no-such-workload".to_owned()]),
                prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
                config: ConfigSpec::single_thread(),
                baseline: true,
            },
        );
        let err = run_campaign(&unknown_workload, &tiny()).unwrap_err();
        assert!(err.contains("no-such-workload"));
        assert!(PrefetcherSel::from_json(&Json::str("warp-drive")).is_err());
        assert!(TargetSelector::from_json(&Json::str("everything")).is_err());
        assert!(ConfigSpec::from_json(&Json::obj([("base", Json::str("dual"))])).is_err());
    }

    #[test]
    fn mistyped_spec_fields_error_instead_of_defaulting() {
        // A wrongly-typed field must never silently fall back to a default.
        let bad_seed = r#"{"heterogeneous_mixes": {"count": 5, "cores": 4, "seed": "big"}}"#;
        let err = TargetSelector::from_json(&Json::parse(bad_seed).unwrap()).unwrap_err();
        assert!(err.contains("seed"));

        // Decimal-string seeds are the exact encoding for values over 2^53.
        let big_seed =
            r#"{"heterogeneous_mixes": {"count": 5, "cores": 4, "seed": "18446744073709551615"}}"#;
        assert_eq!(
            TargetSelector::from_json(&Json::parse(big_seed).unwrap()).unwrap(),
            TargetSelector::HeterogeneousMixes {
                count: 5,
                cores: 4,
                seed: u64::MAX
            }
        );

        let negative_seed = r#"{"heterogeneous_mixes": {"count": 5, "cores": 4, "seed": -5}}"#;
        assert!(TargetSelector::from_json(&Json::parse(negative_seed).unwrap()).is_err());

        let bad_cell =
            r#"{"label": "x", "targets": "suite", "prefetchers": ["spp"], "baseline": "yes"}"#;
        let err = CellSpec::from_json(&Json::parse(bad_cell).unwrap()).unwrap_err();
        assert!(err.contains("baseline"));

        let unlabeled = r#"{"targets": "suite", "prefetchers": ["spp"]}"#;
        let err = CellSpec::from_json(&Json::parse(unlabeled).unwrap()).unwrap_err();
        assert!(err.contains("label"));

        let bad_base = r#"{"base": 5}"#;
        assert!(ConfigSpec::from_json(&Json::parse(bad_base).unwrap()).is_err());

        let bad_threads = r#"{"accesses_per_workload": 1, "workloads_per_category": 1, "mixes": 1, "threads": "four"}"#;
        let err = ScaleSpec::from_json(&Json::parse(bad_threads).unwrap()).unwrap_err();
        assert!(err.contains("threads"));

        let bad_name = r#"{"name": 7, "cells": []}"#;
        assert!(CampaignSpec::parse(bad_name).is_err());
    }

    #[test]
    fn misspelled_spec_keys_error_instead_of_being_ignored() {
        let typo_config = r#"{"base": "single_thread", "llcbytes": 1048576}"#;
        let err = ConfigSpec::from_json(&Json::parse(typo_config).unwrap()).unwrap_err();
        assert!(err.contains("llcbytes"), "got: {err}");

        // A non-object config must error, not silently become the default.
        let err = ConfigSpec::from_json(&Json::str("multi_programmed")).unwrap_err();
        assert!(err.contains("must be an object"), "got: {err}");

        let typo_cell = r#"{"label": "x", "targets": "suite", "prefetcher": ["spp"]}"#;
        let err = CellSpec::from_json(&Json::parse(typo_cell).unwrap()).unwrap_err();
        assert!(err.contains("prefetcher"), "got: {err}");

        let typo_scale =
            r#"{"accesses_per_workload": 1, "workloads_per_category": 1, "mixes": 1, "thread": 2}"#;
        assert!(ScaleSpec::from_json(&Json::parse(typo_scale).unwrap()).is_err());

        let typo_selector = r#"{"categories": "cloud"}"#;
        assert!(TargetSelector::from_json(&Json::parse(typo_selector).unwrap()).is_err());

        let two_selectors = r#"{"category": "cloud", "workloads": ["x"]}"#;
        let err = TargetSelector::from_json(&Json::parse(two_selectors).unwrap()).unwrap_err();
        assert!(err.contains("exactly one"), "got: {err}");

        let typo_campaign = r#"{"name": "x", "cell": []}"#;
        assert!(CampaignSpec::parse(typo_campaign).is_err());
    }

    #[test]
    fn csv_carries_raw_numeric_values() {
        let spec = CampaignSpec::single_cell(
            "csv",
            CellSpec {
                label: "hpc".to_owned(),
                targets: TargetSelector::Category(WorkloadCategory::Hpc),
                prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
                config: ConfigSpec::single_thread(),
                baseline: true,
            },
        );
        let result = run_campaign(&spec, &tiny()).expect("valid spec");
        let csv = result.to_csv();
        let data_row = csv.lines().nth(1).expect("one data row");
        let fields: Vec<&str> = data_row.split(',').collect();
        assert_eq!(fields.len(), 7);
        for numeric in &fields[4..7] {
            assert!(
                numeric.parse::<f64>().is_ok(),
                "field '{numeric}' should be a raw number in: {data_row}"
            );
        }
    }

    #[test]
    fn mix_targets_under_a_single_core_config_are_a_spec_error() {
        let spec = CampaignSpec::single_cell(
            "mismatch",
            CellSpec {
                label: "mixes".to_owned(),
                targets: TargetSelector::HomogeneousMixes { cores: 4 },
                prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
                config: ConfigSpec::single_thread(),
                baseline: true,
            },
        );
        let err = run_campaign(&spec, &tiny()).unwrap_err();
        assert!(err.contains("4 cores"), "got: {err}");
    }

    #[test]
    fn degenerate_spec_parameters_are_clean_errors_not_worker_panics() {
        let mut cell = CellSpec {
            label: "bad".to_owned(),
            targets: TargetSelector::Category(WorkloadCategory::Hpc),
            prefetchers: vec![PrefetcherSel::SmsPht(0)],
            config: ConfigSpec::single_thread(),
            baseline: false,
        };
        let spec = CampaignSpec::single_cell("zero-pht", cell.clone());
        let err = run_campaign(&spec, &tiny()).unwrap_err();
        assert!(err.contains("sms_pht"), "got: {err}");

        let mut empty = cell.clone();
        empty.prefetchers = Vec::new();
        let spec = CampaignSpec::single_cell("no-prefetchers", empty);
        let err = run_campaign(&spec, &tiny()).unwrap_err();
        assert!(err.contains("at least one prefetcher"), "got: {err}");

        let mut doubled = cell.clone();
        doubled.prefetchers = vec![
            PrefetcherSel::Kind(PrefetcherKind::Spp),
            PrefetcherSel::Kind(PrefetcherKind::Spp),
        ];
        let spec = CampaignSpec::single_cell("doubled", doubled);
        let err = run_campaign(&spec, &tiny()).unwrap_err();
        assert!(err.contains("duplicate prefetcher"), "got: {err}");

        cell.prefetchers = vec![PrefetcherSel::Kind(PrefetcherKind::Spp)];
        cell.targets = TargetSelector::HomogeneousMixes { cores: 0 };
        let spec = CampaignSpec::single_cell("zero-cores", cell);
        let err = run_campaign(&spec, &tiny()).unwrap_err();
        assert!(err.contains("no cores"), "got: {err}");
    }

    #[test]
    fn duplicate_cell_labels_are_rejected() {
        let cell = CellSpec {
            label: "same".to_owned(),
            targets: TargetSelector::Category(WorkloadCategory::Hpc),
            prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
            config: ConfigSpec::single_thread(),
            baseline: true,
        };
        let spec = CampaignSpec {
            name: "dupes".to_owned(),
            scale: None,
            cells: vec![cell.clone(), cell],
        };
        let err = run_campaign(&spec, &tiny()).unwrap_err();
        assert!(err.contains("duplicate cell label"), "got: {err}");
    }

    #[test]
    fn explicit_workload_names_resolve_without_caps() {
        let pool = suite();
        let names = vec![pool[0].name.clone(), pool[1].name.clone()];
        let targets = TargetSelector::Workloads(names.clone())
            .resolve(&tiny())
            .expect("known names");
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].name(), names[0]);

        let doubled = vec![pool[0].name.clone(), pool[0].name.clone()];
        let err = TargetSelector::Workloads(doubled)
            .resolve(&tiny())
            .unwrap_err();
        assert!(err.contains("duplicate workload"), "got: {err}");
    }

    #[test]
    fn config_spec_builds_the_requested_variant() {
        let spec = ConfigSpec::multi_programmed()
            .with_dram(1, DramSpeedGrade::Ddr4_1600)
            .with_llc_bytes(4 << 20);
        let config = spec.build();
        assert_eq!(config.cores, 4);
        assert_eq!(config.dram.channels, 1);
        assert_eq!(config.llc.size_bytes, 4 << 20);
        assert_eq!(spec.label(), "4P/1ch-1600/llc=4MiB");
    }

    #[test]
    fn campaign_renders_table_json_and_csv() {
        let spec = CampaignSpec::single_cell(
            "render",
            CellSpec {
                label: "hpc".to_owned(),
                targets: TargetSelector::Category(WorkloadCategory::Hpc),
                prefetchers: vec![PrefetcherSel::Kind(PrefetcherKind::Spp)],
                config: ConfigSpec::single_thread(),
                baseline: true,
            },
        );
        let result = run_campaign(&spec, &tiny()).expect("valid spec");
        let table = result.to_table().render();
        assert!(table.contains("SPP") && table.contains("Speedup"));
        let json = result.to_json();
        assert_eq!(json.get("campaign").and_then(Json::as_str), Some("render"));
        assert!(Json::parse(&json.render()).is_ok());
        let csv = result.to_csv();
        assert!(csv.starts_with("Cell,Target,Config,Prefetcher"));
    }
}
