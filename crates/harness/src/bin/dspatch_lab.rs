//! `dspatch-lab`: run any paper figure or a custom campaign spec file.
//!
//! Usage:
//!
//! ```text
//! dspatch-lab --figure fig12 [--scale smoke|quick|full] [--format table|json|csv]
//! dspatch-lab --spec my_campaign.json [--scale ...] [--format ...] [--threads N]
//! dspatch-lab --list        # named figures
//! dspatch-lab --template    # print an example spec file
//! ```
//!
//! Figures render their paper-shaped table; spec files render the raw
//! campaign rows. `--out PATH` writes the report to a file instead of
//! stdout. `--scale` beats a spec file's embedded `"scale"`; the default is
//! `smoke`. `--threads` overrides the worker count (presets default to the
//! machine's available parallelism).

use dspatch_harness::campaign::run_campaign;
use dspatch_harness::figures::FigureId;
use dspatch_harness::runner::RunScale;
use dspatch_harness::CampaignSpec;

enum Format {
    Table,
    Json,
    Csv,
}

fn usage() -> ! {
    eprintln!(
        "usage: dspatch-lab (--figure NAME | --spec FILE.json | --list | --template)\n\
         \x20                [--scale smoke|quick|full] [--format table|json|csv]\n\
         \x20                [--threads N] [--out PATH]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("dspatch-lab: {message}");
    std::process::exit(1);
}

fn main() {
    let mut figure: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut scale_name: Option<String> = None;
    let mut format = Format::Table;
    let mut threads: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut list = false;
    let mut template = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--figure" => figure = Some(value("--figure")),
            "--spec" => spec_path = Some(value("--spec")),
            "--scale" => scale_name = Some(value("--scale")),
            "--format" => {
                format = match value("--format").as_str() {
                    "table" => Format::Table,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => fail(&format!("unknown format '{other}' (table/json/csv)")),
                }
            }
            "--threads" => {
                threads = Some(
                    value("--threads")
                        .parse()
                        .unwrap_or_else(|_| fail("--threads must be an integer")),
                )
            }
            "--out" => out = Some(value("--out")),
            "--list" => list = true,
            "--template" => template = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    // --list and --template produce their document through the same `out`
    // sink as the run modes, so `--template --out spec.json` works.
    if (list || template) && (figure.is_some() || spec_path.is_some()) {
        fail("--list/--template cannot be combined with --figure/--spec");
    }
    if list && template {
        fail("--list and --template are mutually exclusive");
    }
    let report = if list {
        let mut listing = String::new();
        for id in FigureId::ALL {
            listing.push_str(&format!("{:8} {}\n", id.name(), id.description()));
        }
        listing
    } else if template {
        CampaignSpec::template().to_json().render()
    } else {
        match (&figure, &spec_path) {
            (Some(_), Some(_)) => fail("--figure and --spec are mutually exclusive"),
            (None, None) => usage(),
            (Some(name), None) => {
                let id = FigureId::parse(name)
                    .unwrap_or_else(|| fail(&format!("unknown figure '{name}' (see --list)")));
                let scale = resolve_scale(scale_name.as_deref(), None, threads);
                let table = id.run(&scale);
                match format {
                    Format::Table => table.render(),
                    Format::Json => table.to_json().render(),
                    Format::Csv => table.to_csv(),
                }
            }
            (None, Some(path)) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                let spec = CampaignSpec::parse(&text)
                    .unwrap_or_else(|e| fail(&format!("invalid spec {path}: {e}")));
                let scale = resolve_scale(scale_name.as_deref(), spec.scale.as_ref(), threads);
                let result = run_campaign(&spec, &scale)
                    .unwrap_or_else(|e| fail(&format!("spec error: {e}")));
                eprintln!(
                    "campaign '{}': {} rows from {} simulations ({} baselines, {} memo hits), {} threads",
                    result.name,
                    result.rows.len(),
                    result.stats.sims_run,
                    result.stats.baseline_sims,
                    result.stats.memo_hits,
                    result.stats.threads,
                );
                match format {
                    Format::Table => result.to_table().render(),
                    Format::Json => result.to_json().render(),
                    Format::Csv => result.to_csv(),
                }
            }
        }
    };

    match out {
        None => print!("{report}"),
        Some(path) => {
            std::fs::write(&path, report)
                .unwrap_or_else(|e| fail(&format!("failed to write {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }
}

/// `--scale` wins, then a spec file's embedded scale, then smoke.
/// `--threads` overrides whichever was chosen.
fn resolve_scale(
    flag: Option<&str>,
    embedded: Option<&dspatch_harness::campaign::ScaleSpec>,
    threads: Option<usize>,
) -> RunScale {
    let mut scale = match (flag, embedded) {
        (Some(name), _) => RunScale::preset(name)
            .unwrap_or_else(|| fail(&format!("unknown scale '{name}' (smoke/quick/full)"))),
        (None, Some(spec)) => spec
            .resolve()
            .unwrap_or_else(|e| fail(&format!("spec scale: {e}"))),
        (None, None) => RunScale::smoke(),
    };
    if let Some(threads) = threads {
        scale = scale.with_threads(threads);
    }
    scale
}
