//! `dspatch-lab`: run any paper figure, a custom campaign spec file, or an
//! external trace file.
//!
//! Usage:
//!
//! ```text
//! dspatch-lab --figure fig12 [--scale smoke|quick|full] [--format table|json|csv]
//! dspatch-lab --spec my_campaign.json [--scale ...] [--format ...] [--threads N]
//! dspatch-lab --spec my_campaign.json --journal run.journal   # crash-safe record
//! dspatch-lab --spec my_campaign.json --resume run.journal    # skip completed cells
//! dspatch-lab --trace-file foo.champsim.txt [--prefetchers spp,dspatch_plus_spp]
//! dspatch-lab --list        # figures, workloads and scale presets
//! dspatch-lab --template    # print an example spec file
//! ```
//!
//! Figures render their paper-shaped table; spec files render the raw
//! campaign rows. `--trace-file` replays an external trace (native `DSPT`
//! binary or ChampSim-style text, auto-detected from the magic bytes)
//! through the single-thread configuration under the baseline plus every
//! requested prefetcher — the file streams through the simulator with O(1)
//! memory, so multi-gigabyte traces are fine. `--out PATH` writes the
//! report to a file instead of stdout. `--scale` beats a spec file's
//! embedded `"scale"`; the default is `smoke`. `--threads` overrides the
//! worker count (presets default to the machine's available parallelism).
//! `--parallel-cores N` runs every multi-core simulation on the parallel
//! epoch engine with N worker threads each (results are bit-identical to
//! the serial engine); the campaign executor divides `--threads` by N so
//! the two levels share one thread budget.
//!
//! `--sample warmup=N,interval=N,n=K[,seed=S]` switches `--figure`/`--spec`
//! runs to sampled simulation: each workload fast-forwards through a
//! functional warm-up (caches and predictor tables updated, timing
//! skipped), then measures only `n` seed-placed intervals of `interval`
//! accesses each, reporting mean ± 95% CI per row. Values take `k`/`m`/`g`
//! suffixes. One neutral warm-up checkpoint per (workload, config) is
//! shared across all prefetcher columns; `--checkpoint-dir DIR` caches
//! those checkpoints on disk across runs. Sampled scales are
//! single-core-only (mixes are rejected as a spec error).
//!
//! `--journal FILE` appends every completed cell to a crash-safe journal;
//! `--resume FILE` replays completed cells from it and re-executes only the
//! missing ones, producing bit-identical output to an uninterrupted run.
//! `--retries N` retries a transiently failing cell up to N extra times
//! before quarantining it. `--store DIR` opens the content-addressed result
//! store `dspatch-serve` uses (`DIR/results.jsonl`): cells already present
//! are served from it and fresh results are appended, so identical cells
//! never simulate twice across CLI runs or service restarts. Exit codes
//! follow the `HarnessError` classes:
//! 0 success, 1 internal failure, 2 usage error, 3 invalid spec, 4 I/O
//! failure, 5 corrupt journal, 6 journal/campaign mismatch, 7 campaign
//! completed with quarantined cells.

// Failures on harness paths carry typed context; panicking helpers are
// forbidden outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dspatch_harness::analytics::{self, ColumnarView, Query, QueryFormat};
use dspatch_harness::campaign::{run_campaign_with, ExecOptions};
use dspatch_harness::figures::FigureId;
use dspatch_harness::runner::{PrefetcherKind, RunScale};
use dspatch_harness::{CampaignSpec, HarnessError, ResultStore, Table};
use dspatch_sim::{SimulationBuilder, SystemConfig};
use dspatch_trace::io::open_trace_source;
use dspatch_trace::suite;

enum Format {
    Table,
    Json,
    Csv,
}

fn usage() -> ! {
    eprintln!(
        "usage: dspatch-lab (--figure NAME | --spec FILE.json | --trace-file FILE | --list | --template)\n\
         \x20                [--scale smoke|quick|full] [--format table|json|csv]\n\
         \x20                [--threads N] [--parallel-cores N] [--prefetchers KIND[,KIND...]] [--out PATH]\n\
         \x20                [--journal FILE | --resume FILE] [--retries N] [--store DIR]\n\
         \x20                [--sample warmup=N,interval=N,n=K[,seed=S]] [--checkpoint-dir DIR]\n\
         \x20      dspatch-lab query --store DIR [--where FIELD<OP>VALUE]... [--FIELD VALUE]...\n\
         \x20                [--group-by FIELDS] [--agg FN:METRIC | --trend METRIC] [--all-versions]\n\
         \x20                [--format table|json|csv] [--out PATH]\n\
         \x20      dspatch-lab store gc --store DIR [--keep-versions N]"
    );
    std::process::exit(2);
}

/// Usage-class failure (bad flag, unknown name, invalid combination):
/// exit 2, like `usage()`.
fn fail(message: &str) -> ! {
    eprintln!("dspatch-lab: {message}");
    std::process::exit(2);
}

/// Exits with the error's class-specific code (3 spec, 4 io, 5 corrupt,
/// 6 mismatch, 7 cell) so scripts can branch on the failure mode.
fn fail_typed(error: &HarnessError) -> ! {
    eprintln!("dspatch-lab: {error}");
    std::process::exit(error.class().exit_code());
}

fn main() {
    // Leading positional word = subcommand; everything else is the classic
    // flag-driven run interface.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("query") => return run_query(&argv[1..]),
        Some("store") => return run_store(&argv[1..]),
        _ => {}
    }
    let mut figure: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut trace_file: Option<String> = None;
    let mut prefetchers: Option<String> = None;
    let mut scale_name: Option<String> = None;
    let mut format = Format::Table;
    let mut format_set = false;
    let mut threads: Option<usize> = None;
    let mut sim_workers: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut retries: Option<u32> = None;
    let mut store: Option<String> = None;
    let mut sample: Option<String> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut list = false;
    let mut template = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--figure" => figure = Some(value("--figure")),
            "--spec" => spec_path = Some(value("--spec")),
            "--trace-file" => trace_file = Some(value("--trace-file")),
            "--prefetchers" => prefetchers = Some(value("--prefetchers")),
            "--scale" => scale_name = Some(value("--scale")),
            "--format" => {
                format_set = true;
                format = match value("--format").as_str() {
                    "table" => Format::Table,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => fail(&format!("unknown format '{other}' (table/json/csv)")),
                }
            }
            "--threads" => {
                threads = Some(
                    value("--threads")
                        .parse()
                        .unwrap_or_else(|_| fail("--threads must be an integer")),
                )
            }
            "--parallel-cores" => {
                sim_workers = Some(
                    value("--parallel-cores")
                        .parse()
                        .unwrap_or_else(|_| fail("--parallel-cores must be an integer")),
                )
            }
            "--out" => out = Some(value("--out")),
            "--journal" => journal = Some(value("--journal")),
            "--resume" => resume = Some(value("--resume")),
            "--retries" => {
                retries = Some(
                    value("--retries")
                        .parse()
                        .unwrap_or_else(|_| fail("--retries must be an integer")),
                )
            }
            "--store" => store = Some(value("--store")),
            "--sample" => sample = Some(value("--sample")),
            "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")),
            "--list" => list = true,
            "--template" => template = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let run_modes = usize::from(figure.is_some())
        + usize::from(spec_path.is_some())
        + usize::from(trace_file.is_some());
    // --list and --template produce their document through the same `out`
    // sink as the run modes, so `--template --out spec.json` works.
    if (list || template) && run_modes > 0 {
        fail("--list/--template cannot be combined with --figure/--spec/--trace-file");
    }
    if list && template {
        fail("--list and --template are mutually exclusive");
    }
    if run_modes > 1 {
        fail("--figure, --spec and --trace-file are mutually exclusive");
    }
    if prefetchers.is_some() && trace_file.is_none() {
        fail("--prefetchers only applies to --trace-file");
    }
    // Replay always runs the whole file once per prefetcher on one thread,
    // so silently accepting these flags would mislead.
    if trace_file.is_some() && (scale_name.is_some() || threads.is_some() || sim_workers.is_some())
    {
        fail("--scale/--threads/--parallel-cores do not apply to --trace-file (the whole trace replays once per prefetcher, single-core)");
    }
    if journal.is_some() && resume.is_some() {
        fail("--journal and --resume are mutually exclusive (--resume appends to the same file)");
    }
    if sample.is_some() && figure.is_none() && spec_path.is_none() {
        // A sampling plan without a run to sample would be silently
        // dropped; refuse (exit 2) like every other misplaced flag.
        fail("--sample only applies to --figure and --spec runs");
    }
    if checkpoint_dir.is_some() && sample.is_none() {
        fail("--checkpoint-dir needs --sample (checkpoints exist only for sampled runs)");
    }
    if checkpoint_dir.is_some() && spec_path.is_none() {
        fail("--checkpoint-dir only applies to --spec campaigns");
    }
    if (journal.is_some() || resume.is_some() || retries.is_some() || store.is_some())
        && spec_path.is_none()
    {
        // Without a campaign these flags would be silently ignored; refuse
        // instead (exit 2) so a typo'd invocation can't masquerade as a
        // journaled or store-backed run.
        fail("--journal/--resume/--retries/--store only apply to --spec campaigns");
    }
    // --list/--template ignore the report-shaping flags entirely; reject the
    // combination rather than silently dropping them (--out is meaningful:
    // `--template --out spec.json`).
    if (list || template)
        && (scale_name.is_some()
            || threads.is_some()
            || sim_workers.is_some()
            || format_set
            || sample.is_some()
            || checkpoint_dir.is_some())
    {
        fail(
            "--scale/--threads/--parallel-cores/--format/--sample/--checkpoint-dir do not \
             apply to --list/--template",
        );
    }
    // Exit code 7 when the campaign completed but quarantined cells; set in
    // the --spec branch, applied after the report is written so partial
    // results still land.
    let sampling = sample.as_deref().map(|spec| {
        dspatch_harness::SamplingPlan::parse(spec)
            .unwrap_or_else(|e| fail(&format!("--sample: {e}")))
    });
    let mut exit_code = 0;
    let report = if list {
        inventory()
    } else if template {
        CampaignSpec::template().to_json().render()
    } else if let Some(path) = &trace_file {
        let table = replay_trace_file(path, prefetchers.as_deref());
        match format {
            Format::Table => table.render(),
            Format::Json => table.to_json().render(),
            Format::Csv => table.to_csv(),
        }
    } else {
        match (&figure, &spec_path) {
            (None, None) => usage(),
            (Some(name), None) => {
                let id = FigureId::parse(name)
                    .unwrap_or_else(|| fail(&format!("unknown figure '{name}' (see --list)")));
                let scale = resolve_scale(scale_name.as_deref(), None, threads, sim_workers)
                    .with_sampling(sampling);
                let table = id.run(&scale);
                match format {
                    Format::Table => table.render(),
                    Format::Json => table.to_json().render(),
                    Format::Csv => table.to_csv(),
                }
            }
            (None, Some(path)) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail_typed(&HarnessError::io(path, "read", &e)));
                let spec = CampaignSpec::parse(&text).unwrap_or_else(|e| {
                    fail_typed(&HarnessError::spec(format!("invalid spec {path}: {e}")))
                });
                let scale = resolve_scale(
                    scale_name.as_deref(),
                    spec.scale.as_ref(),
                    threads,
                    sim_workers,
                )
                .with_sampling(sampling.or_else(|| {
                    // A spec file's embedded custom scale may carry its own
                    // sampling block; the flag wins when both are present.
                    spec.scale
                        .as_ref()
                        .and_then(|s| s.resolve().ok())
                        .and_then(|s| s.sampling)
                }));
                let mut opts = ExecOptions::default();
                if let Some(dir) = &checkpoint_dir {
                    opts.checkpoint_dir = Some(dir.into());
                }
                if let Some(extra) = retries {
                    opts.retry.attempts = extra.saturating_add(1);
                }
                match (&journal, &resume) {
                    (Some(path), _) => opts.journal = Some(path.into()),
                    (None, Some(path)) => {
                        opts.journal = Some(path.into());
                        opts.resume = true;
                    }
                    (None, None) => {}
                }
                if let Some(dir) = &store {
                    let result_store =
                        dspatch_harness::ResultStore::open(std::path::Path::new(dir))
                            .unwrap_or_else(|error| fail_typed(&error));
                    opts.store = Some(std::sync::Arc::new(std::sync::Mutex::new(result_store)));
                }
                let result = run_campaign_with(&spec, &scale, &opts)
                    .unwrap_or_else(|error| fail_typed(&error));
                eprintln!(
                    "campaign '{}': {} rows from {} simulations ({} baselines, {} memo hits, {} replayed from journal, {} from store), {} threads",
                    result.name,
                    result.rows.len(),
                    result.stats.sims_run,
                    result.stats.baseline_sims,
                    result.stats.memo_hits,
                    result.stats.journal_hits,
                    result.stats.store_hits,
                    result.stats.threads,
                );
                if scale.sampling.is_some() {
                    // The warm-up counter is the shared-checkpoint proof CI
                    // asserts on: N (workload, config) groups -> N warm-ups,
                    // however many prefetcher columns fork from each.
                    eprintln!(
                        "campaign '{}': sampled run, {} warm-up checkpoint(s) computed",
                        result.name, result.stats.warmups_run,
                    );
                }
                if !result.failures.is_empty() {
                    for failure in &result.failures {
                        eprintln!(
                            "dspatch-lab: quarantined cell ({} / {} / {}): {}",
                            failure.target, failure.prefetcher, failure.config, failure.error
                        );
                    }
                    eprintln!(
                        "dspatch-lab: campaign completed with {} quarantined cell(s)",
                        result.failures.len()
                    );
                    exit_code = 7;
                }
                match format {
                    Format::Table => result.to_table().render(),
                    Format::Json => result.to_json().render(),
                    Format::Csv => result.to_csv(),
                }
            }
            (Some(_), Some(_)) => unreachable!("mutual exclusion checked above"),
        }
    };

    match out {
        None => print!("{report}"),
        Some(path) => {
            std::fs::write(&path, report)
                .unwrap_or_else(|e| fail_typed(&HarnessError::io(path.as_str(), "write", &e)));
            eprintln!("wrote {path}");
        }
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}

/// The `--list` inventory: figures, workloads and scale presets, so a typo
/// in `--figure fig12` or a spec file's workload name has somewhere to look.
fn inventory() -> String {
    let mut listing = String::from("Figures:\n");
    for id in FigureId::ALL {
        listing.push_str(&format!("  {:8} {}\n", id.name(), id.description()));
    }
    listing.push_str("\nWorkloads (by category; * = memory-intensive subset):\n");
    let workloads = suite();
    for category in dspatch_trace::WorkloadCategory::ALL {
        let names: Vec<String> = workloads
            .iter()
            .filter(|w| w.category == category)
            .map(|w| {
                if w.memory_intensive {
                    format!("{}*", w.name)
                } else {
                    w.name.clone()
                }
            })
            .collect();
        listing.push_str(&format!("  {:8} {}\n", category.label(), names.join(", ")));
    }
    listing.push_str("\nScale presets:\n");
    for name in ["smoke", "quick", "full"] {
        let scale = RunScale::preset(name)
            .unwrap_or_else(|| unreachable!("preset name '{name}' is fixed above"));
        let per_category = match scale.workloads_per_category {
            0 => "all workloads/category".to_owned(),
            n => format!("{n} workload(s)/category"),
        };
        let mixes = match scale.mixes {
            0 => "all mixes".to_owned(),
            n => format!("{n} mixes"),
        };
        listing.push_str(&format!(
            "  {:8} {} accesses/workload, {per_category}, {mixes}\n",
            name, scale.accesses_per_workload
        ));
    }
    listing.push_str("\nSampling (--sample warmup=N,interval=N,n=K[,seed=S]; k/m/g suffixes):\n");
    listing.push_str("  smoke    e.g. --sample warmup=400,interval=100,n=4\n");
    listing.push_str("  quick    e.g. --sample warmup=1k,interval=250,n=8\n");
    listing.push_str("  full     e.g. --sample warmup=8k,interval=1k,n=16\n");
    listing.push_str(
        "  checkpoints: one neutral warm-up per (workload, config), shared across \
         prefetcher columns; cache with --checkpoint-dir DIR\n",
    );
    listing.push_str("\nPrefetchers (for --prefetchers and spec files):\n  ");
    let kinds: Vec<&str> = PrefetcherKind::ALL.iter().map(|k| k.spec_name()).collect();
    listing.push_str(&kinds.join(", "));
    listing.push('\n');
    listing
}

/// Replays an external trace file under the baseline and every requested
/// prefetcher, streaming the file once per run via `TraceSource::fork`.
fn replay_trace_file(path: &str, prefetchers: Option<&str>) -> Table {
    let source = open_trace_source(std::path::Path::new(path))
        .unwrap_or_else(|e| fail_typed(&HarnessError::from(e)));
    let meta = source.meta();
    let kinds: Vec<PrefetcherKind> = prefetchers
        .unwrap_or("dspatch_plus_spp")
        .split(',')
        .map(str::trim)
        .filter(|name| !name.is_empty())
        .map(|name| {
            PrefetcherKind::parse(name)
                .unwrap_or_else(|| fail(&format!("unknown prefetcher '{name}' (see --list)")))
        })
        .collect();
    if kinds.is_empty() {
        fail("--prefetchers needs at least one prefetcher name");
    }
    let config = SystemConfig::single_thread();
    let run = |kind: PrefetcherKind| {
        SimulationBuilder::new(config.clone())
            .with_core(source.fork(), kind.build_any())
            .run()
    };
    eprintln!(
        "replaying '{}' ({} accesses{}) under {} prefetcher(s) + baseline",
        meta.name,
        meta.accesses.value(),
        if meta.accesses.is_exact() {
            ""
        } else {
            ", estimated"
        },
        kinds.len(),
    );
    let baseline = run(PrefetcherKind::Baseline);
    let mut table = Table::new(
        format!(
            "External trace replay: {} ({} accesses)",
            meta.name,
            meta.accesses.value()
        ),
        vec![
            "Prefetcher".into(),
            "IPC".into(),
            "Speedup".into(),
            "Coverage".into(),
            "Accuracy".into(),
        ],
    );
    let mut add_row = |label: &str, result: &dspatch_sim::SimResult| {
        let accounting = result.total_accounting();
        table.add_row(vec![
            label.to_owned(),
            format!("{:.3}", result.cores[0].ipc()),
            format!("{:.4}x", result.speedup_over(&baseline)),
            format!("{:.1}%", accounting.coverage() * 100.0),
            format!("{:.1}%", accounting.accuracy() * 100.0),
        ]);
    };
    add_row(PrefetcherKind::Baseline.label(), &baseline);
    for kind in kinds {
        if kind == PrefetcherKind::Baseline {
            continue; // already the reference row
        }
        add_row(kind.label(), &run(kind));
    }
    table
}

/// `dspatch-lab query`: a typed analytics query against a result store.
///
/// Every shaping flag funnels into the same `(key, value)` parameter
/// grammar `GET /query` decodes, so the CLI and the service render
/// **byte-identical** documents for the same query. Misuse (unknown
/// field/metric/operator, missing `--store`) exits 2 like every other
/// usage error.
fn run_query(args: &[String]) {
    let mut store_dir: Option<String> = None;
    let mut format = QueryFormat::Table;
    let mut out: Option<String> = None;
    let mut params: Vec<(String, String)> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--store" => store_dir = Some(value("--store")),
            "--out" => out = Some(value("--out")),
            "--format" => {
                let name = value("--format");
                format = QueryFormat::parse(&name)
                    .unwrap_or_else(|| fail(&format!("unknown format '{name}' (table/json/csv)")));
            }
            "--where" => params.push(("where".to_owned(), value("--where"))),
            "--group-by" => params.push(("group_by".to_owned(), value("--group-by"))),
            "--agg" => params.push(("agg".to_owned(), value("--agg"))),
            "--trend" => params.push(("trend".to_owned(), value("--trend"))),
            "--all-versions" => params.push(("all_versions".to_owned(), "1".to_owned())),
            "--figure" | "--workload" | "--prefetcher" | "--config" | "--scale" | "--sampling"
            | "--code-version" | "--fingerprint" => {
                let key = arg.trim_start_matches("--").replace('-', "_");
                let filter = value(arg.as_str());
                params.push((key, filter));
            }
            other => fail(&format!("query: unknown argument '{other}'")),
        }
    }
    let dir = store_dir.unwrap_or_else(|| fail("query needs --store DIR"));
    // Grammar errors are usage errors: exit 2, not the spec-class 3.
    let query = Query::from_params(&params).unwrap_or_else(|error| fail(&error.to_string()));
    let store = ResultStore::open(std::path::Path::new(&dir)).unwrap_or_else(|e| fail_typed(&e));
    let output = ColumnarView::from_store(&store)
        .run(&query)
        .unwrap_or_else(|error| fail(&error.to_string()));
    let report = analytics::render(&output, format);
    match out {
        None => print!("{report}"),
        Some(path) => {
            std::fs::write(&path, report)
                .unwrap_or_else(|e| fail_typed(&HarnessError::io(path.as_str(), "write", &e)));
            eprintln!("wrote {path}");
        }
    }
}

/// `dspatch-lab store gc`: compacts a result store, keeping the newest
/// `--keep-versions` distinct code versions per cell identity. The rewrite
/// is crash-safe (temp file + rename) and byte-deterministic.
fn run_store(args: &[String]) {
    let rest = match args.split_first() {
        Some((word, rest)) if word == "gc" => rest,
        _ => fail("store: unknown subcommand (want: store gc --store DIR [--keep-versions N])"),
    };
    let mut store_dir: Option<String> = None;
    let mut keep_versions: usize = 1;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--store" => store_dir = Some(value("--store")),
            "--keep-versions" => {
                keep_versions = value("--keep-versions")
                    .parse()
                    .unwrap_or_else(|_| fail("--keep-versions must be an integer"));
                if keep_versions == 0 {
                    fail("--keep-versions must be at least 1 (gc never drops every version)");
                }
            }
            other => fail(&format!("store gc: unknown argument '{other}'")),
        }
    }
    let dir = store_dir.unwrap_or_else(|| fail("store gc needs --store DIR"));
    let mut store =
        ResultStore::open(std::path::Path::new(&dir)).unwrap_or_else(|e| fail_typed(&e));
    let stats = store.gc(keep_versions).unwrap_or_else(|e| fail_typed(&e));
    eprintln!(
        "store gc: kept {} row(s), dropped {} superseded row(s) (keep-versions {keep_versions})",
        stats.kept, stats.dropped
    );
}

/// `--scale` wins, then a spec file's embedded scale, then smoke.
/// `--threads` and `--parallel-cores` override whichever was chosen.
fn resolve_scale(
    flag: Option<&str>,
    embedded: Option<&dspatch_harness::campaign::ScaleSpec>,
    threads: Option<usize>,
    sim_workers: Option<usize>,
) -> RunScale {
    let mut scale = match (flag, embedded) {
        (Some(name), _) => RunScale::preset(name)
            .unwrap_or_else(|| fail(&format!("unknown scale '{name}' (smoke/quick/full)"))),
        (None, Some(spec)) => spec
            .resolve()
            .unwrap_or_else(|e| fail(&format!("spec scale: {e}"))),
        (None, None) => RunScale::smoke(),
    };
    if let Some(threads) = threads {
        scale = scale.with_threads(threads);
    }
    if let Some(workers) = sim_workers {
        scale = scale.with_sim_workers(workers);
    }
    scale
}
