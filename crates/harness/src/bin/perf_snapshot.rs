//! Measures simulator throughput on the fixed snapshot scenarios and writes
//! `BENCH_sim_throughput.json`.
//!
//! Usage:
//!
//! ```text
//! perf_snapshot [--smoke] [--accesses N] [--repeats N] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the scenarios so CI can exercise the emitter in
//! milliseconds (the numbers are meaningless at that scale); `--accesses`
//! overrides the single-thread access count (the 4-core scenario uses a
//! quarter of it per core); `--repeats` sets the best-of repeat count
//! (higher damps scheduler noise on busy machines); `--out` overrides the
//! JSON path.

use dspatch_harness::perf::run_snapshot;

const DEFAULT_ACCESSES: usize = 240_000;
const DEFAULT_REPEATS: usize = 3;

fn main() {
    let mut accesses = DEFAULT_ACCESSES;
    let mut repeats = DEFAULT_REPEATS;
    let mut out = String::from("BENCH_sim_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                accesses = 2_000;
                repeats = 1;
            }
            "--accesses" => {
                let value = args.next().expect("--accesses needs a value");
                accesses = value.parse().expect("--accesses must be an integer");
            }
            "--repeats" => {
                let value = args.next().expect("--repeats needs a value");
                repeats = value.parse().expect("--repeats must be an integer");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_snapshot [--smoke] [--accesses N] [--repeats N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let report = run_snapshot(accesses, accesses / 4, repeats);
    println!("{}", report.summary());
    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("wrote {out}");
}
