//! Measures simulator throughput on the fixed snapshot scenarios and writes
//! `BENCH_sim_throughput.json`.
//!
//! Usage:
//!
//! ```text
//! perf_snapshot [--smoke] [--accesses N] [--repeats N] [--out PATH]
//!               [--compare PATH] [--tolerance F]
//! ```
//!
//! `--smoke` shrinks the scenarios so CI can exercise the emitter in
//! milliseconds (the numbers are meaningless at that scale); `--accesses`
//! overrides the single-thread access count (the 4-core scenario uses a
//! quarter of it per core); `--repeats` sets the best-of repeat count
//! (higher damps scheduler noise on busy machines); `--out` overrides the
//! JSON path.
//!
//! `--compare PATH` gates on a committed snapshot: every row present in
//! both documents is compared on **baseline-normalized** throughput
//! (`row.accesses_per_sec / baseline_single_thread.accesses_per_sec`), so
//! the check is meaningful across machines of different absolute speed —
//! it asks "did the prefetcher path get more expensive relative to the
//! machine model", which is exactly the regression this repository's
//! trajectory tracks. Any row whose normalized throughput drops more than
//! `--tolerance` (default 0.30) below the committed document fails the run
//! with exit code 1. The verdict itself is computed by
//! [`dspatch_harness::perf::regression_gate`], which evaluates the two
//! documents as a committed→measured trend through the analytics engine.
//! A `host_cpus` difference between the documents **warns** but never
//! fails — it flags that the absolute numbers come from different hosts.

// Failures on harness paths carry typed context; panicking helpers are
// forbidden outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dspatch_harness::json::Json;
use dspatch_harness::perf::{regression_gate, run_snapshot};

const DEFAULT_ACCESSES: usize = 240_000;
const DEFAULT_REPEATS: usize = 3;

/// Usage error: print and exit 2 (matching `dspatch-lab`'s convention).
fn die(message: &str) -> ! {
    eprintln!("perf_snapshot: {message}");
    std::process::exit(2);
}

fn main() {
    let mut accesses = DEFAULT_ACCESSES;
    let mut repeats = DEFAULT_REPEATS;
    let mut out = String::from("BENCH_sim_throughput.json");
    let mut compare: Option<String> = None;
    let mut tolerance = 0.30;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                accesses = 2_000;
                repeats = 1;
            }
            "--accesses" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--accesses needs a value"));
                accesses = value
                    .parse()
                    .unwrap_or_else(|_| die("--accesses must be an integer"));
            }
            "--repeats" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--repeats needs a value"));
                repeats = value
                    .parse()
                    .unwrap_or_else(|_| die("--repeats must be an integer"));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--compare" => {
                compare = Some(args.next().unwrap_or_else(|| die("--compare needs a path")));
            }
            "--tolerance" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--tolerance needs a value"));
                tolerance = value
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance must be a number"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_snapshot [--smoke] [--accesses N] [--repeats N] [--out PATH] \
                     [--compare PATH] [--tolerance F]"
                );
                std::process::exit(2);
            }
        }
    }
    let report = run_snapshot(accesses, accesses / 4, repeats);
    println!("{}", report.summary());
    let json = report.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("perf_snapshot: failed to write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");

    if let Some(path) = compare {
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf_snapshot: failed to read {path}: {e}");
            std::process::exit(1);
        });
        let committed = Json::parse(&committed).unwrap_or_else(|e| {
            eprintln!("perf_snapshot: committed snapshot {path} is not valid JSON: {e}");
            std::process::exit(1);
        });
        let measured = Json::parse(&json)
            .unwrap_or_else(|e| unreachable!("the emitter renders valid JSON: {e}"));
        // Different host shape = numbers from different machines: say so
        // loudly, but normalization keeps the verdict meaningful, so this
        // warns rather than fails.
        let cpus_of = |doc: &Json| doc.get("host_cpus").and_then(Json::as_u64);
        match (cpus_of(&measured), cpus_of(&committed)) {
            (Some(here), Some(there)) if here != there => eprintln!(
                "perf gate WARN: host_cpus differ ({here} measuring vs {there} committed); \
                 absolute rows are cross-host, only normalized ratios gate"
            ),
            (_, None) => {
                eprintln!("perf gate WARN: committed snapshot {path} predates host_cpus recording")
            }
            _ => {}
        }
        match regression_gate(&measured, &committed, tolerance) {
            None => eprintln!("--compare: missing baseline_single_thread row; skipping gate"),
            Some(failures) if failures.is_empty() => println!(
                "perf gate: no row regressed more than {:.0}% (baseline-normalized) vs {path}",
                tolerance * 100.0
            ),
            Some(failures) => {
                for failure in &failures {
                    eprintln!(
                        "perf gate FAIL: {}: {:.4}x baseline, committed {:.4}x baseline \
                         ({:.1}% regression)",
                        failure.row,
                        failure.measured,
                        failure.committed,
                        (1.0 - failure.measured / failure.committed) * 100.0
                    );
                }
                std::process::exit(1);
            }
        }
    }
}
