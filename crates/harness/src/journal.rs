//! The crash-safe, append-only campaign journal.
//!
//! A journal is a JSON-lines file (one compact [`Json`] document per line,
//! rendered by the existing `harness::json` layer): a meta line binding the
//! file to one `(campaign, spec, scale)` fingerprint, then one line per
//! completed cell — `{"sim": {...}}` with the full, exactly-serialized
//! [`SimResult`], or `{"failure": {...}}` recording a quarantined cell.
//! Every record is written and flushed as one line *after* its multi-second
//! simulation finishes, so journaling never touches the per-access hot loop
//! and a `kill -9` can lose at most the in-flight line.
//!
//! On resume, [`read_journal`] verifies the meta line (campaign name, spec
//! fingerprint, journal version — a mismatch is a typed
//! [`HarnessError::Mismatch`], not silent garbage), loads every completed
//! sim, tolerates exactly one torn final line (the crash case, truncated
//! away before appending resumes), and reports any *mid-file* corruption as
//! [`HarnessError::Corrupt`] with its line number. Failure records are
//! ignored on load so quarantined cells re-execute.
//!
//! The result round-trip is exact: `u64` counters encode as JSON numbers
//! below 2^53 and as decimal strings above (the same convention spec seeds
//! use), and `f64` fields rely on the emitter's shortest-round-trip
//! rendering — a resumed campaign's merged output is bit-identical to an
//! uninterrupted run (`tests/fault_tolerance.rs` asserts it).
//!
//! Since format version 2 a sim record carries a full canonical
//! [`ResultRow`] (`{"sim": {"key", "row"}}`) instead of a bare result, so
//! the journal shares one schema with the store and the analytics layer.
//! Version-1 records (`{"sim": {"key", "result"}}`) still parse — the
//! upgrade path is exercised by the committed fixtures in
//! `tests/fixtures/`.

use crate::error::HarnessError;
use crate::json::Json;
use crate::results::{json_u64, ResultRow};
use crate::runner::RunScale;
use dspatch_sim::SimResult;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

// The exact `SimResult` serializers historically lived here; they are now
// the schema module's, re-exported so existing callers keep compiling.
pub use crate::results::{sim_result_from_json, sim_result_to_json};

/// Magic value of the meta line's `journal` field.
const JOURNAL_MAGIC: &str = "dspatch-campaign-journal";
/// Journal format version (sim records carry [`ResultRow`]s).
const JOURNAL_VERSION: u64 = 2;
/// Oldest journal version still readable (bare-result sim records).
const JOURNAL_MIN_VERSION: u64 = 1;

/// FNV-1a 64-bit over a byte stream — stable, dependency-free fingerprint.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint binding a journal to one `(spec, scale)` identity, rendered
/// as 16 hex digits. `threads` is excluded: it is a machine knob that never
/// changes results (the executor is deterministic for any worker count), so
/// a journal written on an 8-thread box resumes on a 2-thread one.
pub fn campaign_fingerprint(spec_json: &Json, scale: &RunScale) -> String {
    let mut identity = format!(
        "{}|a{}|w{}|m{}|s{}",
        spec_json.render_compact(),
        scale.accesses_per_workload,
        scale.workloads_per_category,
        scale.mixes,
        scale.sim_workers,
    );
    // Sampled and exact runs of the same spec must never alias: the plan
    // joins the identity, but only when present so existing exact journals
    // keep their fingerprints.
    if let Some(plan) = &scale.sampling {
        identity.push_str(&plan.fingerprint_suffix());
    }
    format!("{:016x}", fnv1a(identity.as_bytes()))
}

/// The identity a journal is bound to, checked on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Campaign name.
    pub campaign: String,
    /// [`campaign_fingerprint`] of the spec + scale.
    pub fingerprint: String,
}

impl JournalMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("journal", Json::str(JOURNAL_MAGIC)),
            ("version", json_u64(JOURNAL_VERSION)),
            ("campaign", Json::str(&self.campaign)),
            ("fingerprint", Json::str(&self.fingerprint)),
        ])
    }
}

/// Everything [`read_journal`] recovered from a journal file.
#[derive(Debug, Default)]
pub struct JournalContents {
    /// Completed simulations by job key.
    pub sims: HashMap<String, SimResult>,
    /// Failure records seen (job key per record); informational — failed
    /// cells re-execute on resume.
    pub failures: Vec<String>,
    /// Byte length of the clean prefix: everything after it (at most one
    /// torn final line) is truncated away before appending resumes.
    pub clean_len: u64,
}

/// Reads and verifies a journal for resumption.
///
/// # Errors
///
/// * [`HarnessError::Io`] — the file cannot be opened or read.
/// * [`HarnessError::Mismatch`] — the meta line names a different campaign
///   or fingerprint (or an unsupported journal version).
/// * [`HarnessError::Corrupt`] — a record other than the final line is
///   unparsable or structurally invalid (a torn *final* line is the normal
///   crash case and is silently dropped; mid-file damage is not).
pub fn read_journal(path: &Path, expected: &JournalMeta) -> Result<JournalContents, HarnessError> {
    let display = path.display().to_string();
    let file =
        std::fs::File::open(path).map_err(|e| HarnessError::io(display.clone(), "open", &e))?;
    let mut reader = BufReader::new(file);
    let mut contents = JournalContents::default();
    let mut line = String::new();
    let mut line_no = 0u64;
    let mut offset = 0u64;
    loop {
        line.clear();
        let bytes = reader
            .read_line(&mut line)
            .map_err(|e| HarnessError::io(display.clone(), "read", &e))?;
        if bytes == 0 {
            break;
        }
        line_no += 1;
        let complete = line.ends_with('\n');
        let parsed = if complete {
            parse_journal_line(line.trim_end(), line_no, &display, expected)
        } else {
            Err(HarnessError::Corrupt {
                path: display.clone(),
                line: line_no,
                message: "record has no trailing newline".to_owned(),
            })
        };
        match parsed {
            Ok(record) => {
                if line_no == 1 {
                    // Line 1 is the meta line, verified inside the parser.
                } else {
                    match record {
                        JournalRecord::Meta => {}
                        JournalRecord::Sim { key, result } => {
                            contents.sims.insert(key, *result);
                        }
                        JournalRecord::Failure { key } => contents.failures.push(key),
                    }
                }
                offset += bytes as u64;
            }
            Err(error) => {
                // A bad FINAL line is the torn-write crash signature: drop
                // it and resume from the clean prefix. Anything earlier is
                // real corruption. Mismatch errors always propagate — a
                // foreign journal must never be silently overwritten.
                let at_eof = {
                    let probe = reader
                        .fill_buf()
                        .map_err(|e| HarnessError::io(display.clone(), "read", &e))?;
                    probe.is_empty()
                };
                if at_eof && line_no > 1 && matches!(error, HarnessError::Corrupt { .. }) {
                    break;
                }
                return Err(error);
            }
        }
    }
    contents.clean_len = offset;
    Ok(contents)
}

enum JournalRecord {
    Meta,
    Sim { key: String, result: Box<SimResult> },
    Failure { key: String },
}

fn parse_journal_line(
    text: &str,
    line_no: u64,
    display: &str,
    expected: &JournalMeta,
) -> Result<JournalRecord, HarnessError> {
    let corrupt = |message: String| HarnessError::Corrupt {
        path: display.to_owned(),
        line: line_no,
        message,
    };
    let json = Json::parse(text).map_err(|e| corrupt(e.to_string()))?;
    if line_no == 1 {
        let magic = json.get("journal").and_then(Json::as_str).unwrap_or("");
        if magic != JOURNAL_MAGIC {
            return Err(corrupt(format!(
                "not a campaign journal (magic '{magic}', want '{JOURNAL_MAGIC}')"
            )));
        }
        let version = json.get("version").and_then(Json::as_u64).unwrap_or(0);
        if !(JOURNAL_MIN_VERSION..=JOURNAL_VERSION).contains(&version) {
            return Err(HarnessError::Mismatch {
                path: display.to_owned(),
                field: "version",
                expected: JOURNAL_VERSION.to_string(),
                found: version.to_string(),
            });
        }
        let campaign = json.get("campaign").and_then(Json::as_str).unwrap_or("");
        if campaign != expected.campaign {
            return Err(HarnessError::Mismatch {
                path: display.to_owned(),
                field: "campaign",
                expected: expected.campaign.clone(),
                found: campaign.to_owned(),
            });
        }
        let fingerprint = json.get("fingerprint").and_then(Json::as_str).unwrap_or("");
        if fingerprint != expected.fingerprint {
            return Err(HarnessError::Mismatch {
                path: display.to_owned(),
                field: "fingerprint",
                expected: expected.fingerprint.clone(),
                found: fingerprint.to_owned(),
            });
        }
        return Ok(JournalRecord::Meta);
    }
    if let Some(sim) = json.get("sim") {
        let key = sim
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("sim record missing string 'key'".to_owned()))?
            .to_owned();
        // Version 2 records carry a full canonical row; version 1 records a
        // bare result. Both shapes are accepted regardless of the meta
        // line's version so mixed files (a v1 journal resumed by v2 code)
        // stay readable.
        let result = if let Some(row) = sim.get("row") {
            ResultRow::from_json(row).map_err(corrupt)?.result
        } else {
            sim.get("result")
                .ok_or_else(|| corrupt("sim record missing 'row' or 'result'".to_owned()))
                .and_then(|result| sim_result_from_json(result).map_err(corrupt))?
        };
        return Ok(JournalRecord::Sim {
            key,
            result: Box::new(result),
        });
    }
    if let Some(failure) = json.get("failure") {
        let key = failure
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("failure record missing string 'key'".to_owned()))?
            .to_owned();
        return Ok(JournalRecord::Failure { key });
    }
    Err(corrupt(format!("unknown record shape: {text}")))
}

/// The append side: owns the file handle, writes one flushed line per
/// completed cell. Constructed once per campaign (fresh or resumed) and
/// shared behind a mutex by the executor's workers — the lock is taken once
/// per finished simulation, never on the simulation hot path.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: std::fs::File,
}

impl JournalWriter {
    /// Creates (or truncates) a journal and writes the meta line.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the file cannot be created or
    /// written.
    pub fn create(path: &Path, meta: &JournalMeta) -> Result<Self, HarnessError> {
        let display = path.display().to_string();
        let file = std::fs::File::create(path)
            .map_err(|e| HarnessError::io(display.clone(), "create", &e))?;
        let mut writer = Self {
            path: path.to_path_buf(),
            file,
        };
        writer.write_line(&meta.to_json().render_compact())?;
        Ok(writer)
    }

    /// Opens an existing journal for appending after [`read_journal`],
    /// truncating the torn tail (if any) at `clean_len` first.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the file cannot be opened, truncated
    /// or positioned.
    pub fn resume(path: &Path, clean_len: u64) -> Result<Self, HarnessError> {
        let display = path.display().to_string();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| HarnessError::io(display.clone(), "open", &e))?;
        file.set_len(clean_len)
            .map_err(|e| HarnessError::io(display.clone(), "truncate", &e))?;
        let mut file = file;
        file.seek(SeekFrom::Start(clean_len))
            .map_err(|e| HarnessError::io(display.clone(), "seek", &e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one completed simulation as a canonical [`ResultRow`].
    /// `corrupt` mangles the record (the
    /// [`crate::faults::Fault::CorruptJournal`] injection) so recovery tests
    /// can produce mid-file damage deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure.
    pub fn append_sim(
        &mut self,
        key: &str,
        row: &ResultRow,
        corrupt: bool,
    ) -> Result<(), HarnessError> {
        let record = Json::obj([(
            "sim",
            Json::obj([("key", Json::str(key)), ("row", row.to_json())]),
        )]);
        let mut line = record.render_compact();
        if corrupt {
            // Deterministic mangling: chop the record in half mid-JSON.
            line.truncate(line.len() / 2);
        }
        self.write_line(&line)
    }

    /// Appends one quarantined-cell failure record.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure.
    pub fn append_failure(
        &mut self,
        key: &str,
        error: &HarnessError,
        attempts: u32,
    ) -> Result<(), HarnessError> {
        let record = Json::obj([(
            "failure",
            Json::obj([
                ("key", Json::str(key)),
                ("attempts", json_u64(u64::from(attempts))),
                ("error", error.to_json()),
            ]),
        )]);
        self.write_line(&record.render_compact())
    }

    /// One line = one record, flushed immediately: a crash loses at most
    /// the in-flight line, which resume recognizes as the torn tail.
    fn write_line(&mut self, line: &str) -> Result<(), HarnessError> {
        let display = self.path.display().to_string();
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.flush())
            .map_err(|e| HarnessError::io(display, "write", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_sim::stats::{IntervalEstimate, SamplingStats};
    use dspatch_sim::{
        CacheGeometry, CacheStats, CoreResult, DramStats, PollutionBreakdown, PrefetchAccounting,
    };

    fn row(sim: &SimResult) -> ResultRow {
        ResultRow::new(
            "0000000000000000".to_owned(),
            "test".to_owned(),
            "stream_1".to_owned(),
            "SPP".to_owned(),
            "1T".to_owned(),
            1000,
            String::new(),
            sim.clone(),
        )
    }

    fn temp_path(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dspatch_journal_{label}_{}.jsonl",
            std::process::id()
        ))
    }

    fn sample_sim() -> SimResult {
        SimResult {
            cores: vec![CoreResult {
                workload: "stream_1".to_owned(),
                prefetcher: "SPP".to_owned(),
                instructions: 123_456,
                finish_cycle: 654_321,
                l1: CacheStats {
                    demand_hits: 1,
                    demand_misses: 2,
                    demand_fills: 3,
                    prefetch_fills: 4,
                    prefetch_first_uses: 5,
                    prefetch_unused_evictions: 6,
                },
                l2: CacheStats::default(),
                accounting: PrefetchAccounting {
                    l2_demand_accesses: 7,
                    covered: 8,
                    uncovered: 9,
                    prefetches_issued: 10,
                    prefetches_used: 11,
                    prefetches_unused: 12,
                },
            }],
            llc: CacheStats {
                demand_hits: 99,
                ..CacheStats::default()
            },
            dram: DramStats {
                cas_commands: 1 << 54, // above 2^53: exercises the string form
                row_hits: 14,
                row_misses: 15,
                prefetch_accesses: 16,
                utilization_sum: 0.1 + 0.2, // a value with no short decimal form
                windows: 17,
            },
            pollution: PollutionBreakdown {
                no_reuse: 18,
                prefetched_before_use: 19,
                bad_pollution: 20,
            },
            cycles: 987_654_321,
            cache_geometry: vec![CacheGeometry {
                name: "LLC".to_owned(),
                requested_bytes: 2 << 20,
                ways: 16,
                sets: 2048,
                effective_bytes: 2 << 20,
                rounded: false,
            }],
            sampling: None,
        }
    }

    fn sampled_sim() -> SimResult {
        SimResult {
            sampling: Some(SamplingStats {
                warmup_accesses: 2_000_000,
                interval_accesses: 200_000,
                intervals: 10,
                seed: 3,
                ipc: IntervalEstimate {
                    mean: 1.25,
                    ci95: 0.04,
                },
                coverage: IntervalEstimate {
                    mean: 0.5,
                    ci95: 0.01,
                },
                accuracy: IntervalEstimate {
                    mean: 0.75,
                    ci95: 0.02,
                },
            }),
            ..sample_sim()
        }
    }

    fn meta() -> JournalMeta {
        JournalMeta {
            campaign: "test".to_owned(),
            fingerprint: "00ff00ff00ff00ff".to_owned(),
        }
    }

    #[test]
    fn sim_results_round_trip_exactly() {
        let sim = sample_sim();
        let json = sim_result_to_json(&sim);
        // Through a full render/parse cycle, like a real journal line.
        let reparsed = Json::parse(&json.render_compact()).expect("renders valid JSON");
        let back = sim_result_from_json(&reparsed).expect("parses back");
        assert_eq!(back, sim);
        assert_eq!(
            back.dram.utilization_sum.to_bits(),
            sim.dram.utilization_sum.to_bits()
        );
        assert_eq!(back.dram.cas_commands, 1 << 54);
        // Byte parity for exact runs: the optional sampling key must be
        // absent, not null, so pre-sampling journals stay byte-identical.
        assert!(!json.render_compact().contains("sampling"));
    }

    #[test]
    fn sampled_sim_results_round_trip_with_cis() {
        let sim = sampled_sim();
        let json = sim_result_to_json(&sim);
        let reparsed = Json::parse(&json.render_compact()).expect("renders valid JSON");
        let back = sim_result_from_json(&reparsed).expect("parses back");
        assert_eq!(back, sim);
        let stats = back.sampling.expect("sampling survives the round trip");
        assert_eq!(stats.intervals, 10);
        assert!((stats.ipc.ci95 - 0.04).abs() < 1e-12);
    }

    #[test]
    fn sampling_plans_change_the_campaign_fingerprint() {
        let spec = Json::obj([("name", Json::str("fp"))]);
        let exact = RunScale::smoke();
        let sampled = RunScale {
            sampling: Some(crate::sampling::SamplingPlan {
                warmup_accesses: 100,
                interval_accesses: 10,
                intervals: 2,
                seed: 0,
            }),
            ..RunScale::smoke()
        };
        assert_ne!(
            campaign_fingerprint(&spec, &exact),
            campaign_fingerprint(&spec, &sampled)
        );
        let reseeded = RunScale {
            sampling: sampled
                .sampling
                .map(|p| crate::sampling::SamplingPlan { seed: 9, ..p }),
            ..sampled
        };
        assert_ne!(
            campaign_fingerprint(&spec, &sampled),
            campaign_fingerprint(&spec, &reseeded)
        );
    }

    #[test]
    fn journal_write_read_cycle() {
        let path = temp_path("cycle");
        let mut writer = JournalWriter::create(&path, &meta()).expect("create");
        let sim = sample_sim();
        writer
            .append_sim("job-a", &row(&sim), false)
            .expect("append");
        writer
            .append_failure(
                "job-b",
                &HarnessError::CellPanic {
                    job: "job-b".to_owned(),
                    message: "boom".to_owned(),
                },
                2,
            )
            .expect("append failure");
        drop(writer);
        let contents = read_journal(&path, &meta()).expect("read back");
        assert_eq!(contents.sims.len(), 1);
        assert_eq!(contents.sims["job-a"], sim);
        assert_eq!(contents.failures, vec!["job-b".to_owned()]);
        assert_eq!(
            contents.clean_len,
            std::fs::metadata(&path).expect("stat").len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated_on_resume() {
        let path = temp_path("torn");
        let mut writer = JournalWriter::create(&path, &meta()).expect("create");
        let sim = sample_sim();
        writer
            .append_sim("job-a", &row(&sim), false)
            .expect("append");
        writer
            .append_sim("job-b", &row(&sim), false)
            .expect("append");
        drop(writer);
        // Tear the final line mid-record, like a kill -9 mid-write.
        let bytes = std::fs::read(&path).expect("read");
        let torn_len = bytes.len() - 40;
        std::fs::write(&path, &bytes[..torn_len]).expect("tear");
        let contents = read_journal(&path, &meta()).expect("torn tail is tolerated");
        assert_eq!(contents.sims.len(), 1, "only the intact record survives");
        assert!(contents.sims.contains_key("job-a"));
        assert!((contents.clean_len as usize) < torn_len);
        // Resuming truncates the tail so appends start on a clean boundary.
        let mut writer = JournalWriter::resume(&path, contents.clean_len).expect("resume");
        writer
            .append_sim("job-b", &row(&sim), false)
            .expect("re-append");
        drop(writer);
        let contents = read_journal(&path, &meta()).expect("read again");
        assert_eq!(contents.sims.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_a_typed_error_with_line_number() {
        let path = temp_path("midfile");
        let mut writer = JournalWriter::create(&path, &meta()).expect("create");
        let sim = sample_sim();
        writer
            .append_sim("job-a", &row(&sim), true)
            .expect("corrupt record");
        writer
            .append_sim("job-b", &row(&sim), false)
            .expect("good record");
        drop(writer);
        let err = read_journal(&path, &meta()).expect_err("must reject");
        match &err {
            HarnessError::Corrupt { line, .. } => assert_eq!(*line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_journals_are_a_mismatch_not_garbage() {
        let path = temp_path("foreign");
        let writer = JournalWriter::create(&path, &meta()).expect("create");
        drop(writer);
        let other = JournalMeta {
            campaign: "test".to_owned(),
            fingerprint: "1111111111111111".to_owned(),
        };
        let err = read_journal(&path, &other).expect_err("must reject");
        match &err {
            HarnessError::Mismatch { field, .. } => assert_eq!(*field, "fingerprint"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        let renamed = JournalMeta {
            campaign: "different".to_owned(),
            fingerprint: meta().fingerprint,
        };
        let err = read_journal(&path, &renamed).expect_err("must reject");
        assert!(matches!(
            err,
            HarnessError::Mismatch {
                field: "campaign",
                ..
            }
        ));
        // A non-journal file is corrupt even on line 1.
        std::fs::write(&path, "{\"not\": \"a journal\"}\n").expect("write");
        let err = read_journal(&path, &meta()).expect_err("must reject");
        assert!(matches!(err, HarnessError::Corrupt { line: 1, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprints_ignore_threads_but_track_everything_else() {
        let spec = Json::obj([("name", Json::str("c"))]);
        let scale = RunScale {
            accesses_per_workload: 1000,
            workloads_per_category: 1,
            mixes: 1,
            threads: 8,
            sim_workers: 0,
            sampling: None,
        };
        let mut rethreaded = scale;
        rethreaded.threads = 2;
        assert_eq!(
            campaign_fingerprint(&spec, &scale),
            campaign_fingerprint(&spec, &rethreaded),
            "threads are a machine knob, not an identity"
        );
        let mut rescaled = scale;
        rescaled.accesses_per_workload = 2000;
        assert_ne!(
            campaign_fingerprint(&spec, &scale),
            campaign_fingerprint(&spec, &rescaled)
        );
        let other_spec = Json::obj([("name", Json::str("d"))]);
        assert_ne!(
            campaign_fingerprint(&spec, &scale),
            campaign_fingerprint(&other_spec, &scale)
        );
    }
}
