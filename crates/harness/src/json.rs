//! The workspace's single JSON emitter and parser.
//!
//! The vendored `serde` is a no-op facade (see `vendor/serde`), so this
//! module is the real serialization layer: a small ordered JSON document
//! model with a pretty emitter and a strict parser. Everything in the
//! repository that produces or consumes JSON — [`crate::report::Table`],
//! [`crate::campaign::CampaignSpec`] files, [`crate::campaign::CampaignResult`]
//! reports and the `perf_snapshot` throughput document — goes through
//! [`Json`], so there is exactly one emitter to keep correct.

use std::fmt;

/// What went wrong while parsing a JSON document. The parser sits on a
/// socket boundary (`dspatch-serve` feeds it raw network bytes), so hostile
/// shapes get their own kinds: callers can distinguish a resource-exhaustion
/// attempt ([`JsonErrorKind::DepthExceeded`]) from a merely malformed
/// document without string-matching the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JsonErrorKind {
    /// Malformed syntax (bad literal, missing delimiter, bad number, ...).
    Syntax,
    /// An object repeats a key. `get()` returns the first occurrence, so a
    /// duplicate would silently shadow the later value — classic
    /// request-smuggling material on a network boundary.
    DuplicateKey,
    /// A `\uD800`–`\uDBFF` escape without its low surrogate (or a bare low
    /// surrogate): such strings have no UTF-8 meaning.
    UnpairedSurrogate,
    /// The document nests deeper than [`MAX_DEPTH`] levels — a stack-
    /// overflow bomb, rejected before it can recurse.
    DepthExceeded,
    /// Non-whitespace bytes follow the first complete document.
    TrailingData,
}

impl JsonErrorKind {
    /// Stable lower-case label for logs and error documents.
    pub fn label(self) -> &'static str {
        match self {
            JsonErrorKind::Syntax => "syntax",
            JsonErrorKind::DuplicateKey => "duplicate_key",
            JsonErrorKind::UnpairedSurrogate => "unpaired_surrogate",
            JsonErrorKind::DepthExceeded => "depth_exceeded",
            JsonErrorKind::TrailingData => "trailing_data",
        }
    }
}

/// A typed JSON parse failure: the kind, the byte offset of the problem,
/// and a human-readable message (which already includes the offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Coarse classification of the failure.
    pub kind: JsonErrorKind,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// Rendered description (includes the offset).
    pub message: String,
}

impl JsonError {
    fn new(kind: JsonErrorKind, offset: usize, message: String) -> Self {
        Self {
            kind,
            offset,
            message,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// Most existing callers propagate parse failures as `String`; the typed
/// error converts losslessly (the message embeds kind-specific context).
impl From<JsonError> for String {
    fn from(error: JsonError) -> String {
        error.message
    }
}

/// An ordered JSON value. Objects preserve insertion order so emitted
/// documents are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Non-finite values emit as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from an entry list.
    pub fn obj(entries: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from a value list.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(value: impl AsRef<str>) -> Json {
        Json::Str(value.as_ref().to_owned())
    }

    /// Builds a number from anything convertible to `f64`.
    pub fn num(value: impl Into<f64>) -> Json {
        Json::Num(value.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number
    /// below 2^53. Doubles cannot distinguish adjacent integers from 2^53
    /// up, so larger values are rejected rather than silently rounded —
    /// fields that need the full u64 range (mix seeds) use decimal strings.
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT_LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < EXACT_LIMIT => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(values) => Some(values),
            _ => None,
        }
    }

    /// The value as an object entry slice, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline, the format every emitted file in the repository uses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    /// Renders the document on one line (used inside log lines and tests).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(values) => {
                if values.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    value.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    write_string(out, key);
                    out.push(':');
                    out.push(' ');
                    value.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a typed [`JsonError`] carrying the failure kind and the byte
    /// offset of the first problem (syntax error, duplicate object key,
    /// unpaired surrogate, nesting past [`MAX_DEPTH`], or trailing
    /// non-whitespace after the document).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(
                JsonErrorKind::TrailingData,
                parser.pos,
                format!(
                    "trailing characters after JSON document at byte {}",
                    parser.pos
                ),
            ));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

/// Rounds `value` to the decimal precision given by `scale` (e.g. `1e6` for
/// six decimal places). Emitted JSON numbers go through this one helper so
/// every document rounds identically.
pub fn rounded(value: f64, scale: f64) -> f64 {
    (value * scale).round() / scale
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        // Integral values print without a fractional part or exponent.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parser recursion limit: nesting past this depth is a parse error rather
/// than a stack overflow (serde_json uses the same bound).
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    /// A [`JsonErrorKind::Syntax`] error at the current position.
    fn syntax(&self, message: String) -> JsonError {
        JsonError::new(JsonErrorKind::Syntax, self.pos, message)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.syntax(format!("expected '{}' at byte {}", byte as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::new(
                JsonErrorKind::DepthExceeded,
                self.pos,
                format!(
                    "document nested deeper than {MAX_DEPTH} levels at byte {}",
                    self.pos
                ),
            ));
        }
        let value = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.syntax(format!("unexpected character at byte {}", self.pos))),
        };
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            let key = self.string()?;
            // get() returns the first occurrence, so a duplicate would
            // silently shadow the later value; reject it instead.
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(JsonError::new(
                    JsonErrorKind::DuplicateKey,
                    key_pos,
                    format!("duplicate object key '{key}' at byte {key_pos}"),
                ));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.syntax(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(values));
        }
        loop {
            values.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(values));
                }
                _ => return Err(self.syntax(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                // RFC 8259: control characters must be escaped.
                if c < 0x20 {
                    return Err(self.syntax(format!(
                        "unescaped control character in string at byte {}",
                        self.pos
                    )));
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.syntax(format!("invalid UTF-8 in string at byte {start}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| {
                        self.syntax(format!("unterminated escape at byte {}", self.pos))
                    })?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Decode surrogate pairs; a lone half has no
                            // UTF-8 meaning and gets the typed kind.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(JsonError::new(
                                        JsonErrorKind::UnpairedSurrogate,
                                        self.pos,
                                        format!("unpaired surrogate at byte {}", self.pos),
                                    ));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::new(
                                        JsonErrorKind::UnpairedSurrogate,
                                        self.pos,
                                        format!(
                                            "high surrogate not followed by a low surrogate \
                                             at byte {}",
                                            self.pos
                                        ),
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(JsonError::new(
                                    JsonErrorKind::UnpairedSurrogate,
                                    self.pos,
                                    format!("lone low surrogate at byte {}", self.pos),
                                ));
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| {
                                self.syntax(format!(
                                    "invalid \\u escape ending at byte {}",
                                    self.pos
                                ))
                            })?);
                        }
                        other => {
                            return Err(self.syntax(format!(
                                "invalid escape '\\{}' at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
                _ => return Err(self.syntax(format!("unterminated string at byte {}", self.pos))),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.syntax(format!("truncated \\u escape at byte {}", self.pos)));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.syntax(format!("invalid \\u escape at byte {}", self.pos)))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| self.syntax(format!("invalid \\u escape at byte {}", self.pos)))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: at least one digit, no leading zeros (RFC 8259).
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let int_len = self.pos - int_start;
        if int_len == 0 {
            return Err(self.syntax(format!("number needs a digit at byte {}", self.pos)));
        }
        if int_len > 1 && self.bytes[int_start] == b'0' {
            return Err(self.syntax(format!("number has a leading zero at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.syntax(format!(
                    "number needs a digit after '.' at byte {}",
                    self.pos
                )));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.syntax(format!(
                    "number needs a digit in its exponent at byte {}",
                    self.pos
                )));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.syntax(format!("invalid number at byte {start}")))?;
        let value: f64 = text
            .parse()
            .map_err(|_| self.syntax(format!("invalid number '{text}' at byte {start}")))?;
        // Rust parses overflowing literals to infinity; rendering would then
        // turn them into null, so reject them up front.
        if !value.is_finite() {
            return Err(self.syntax(format!(
                "number '{text}' overflows a double at byte {start}"
            )));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render_compact(), "null");
        assert_eq!(Json::Bool(true).render_compact(), "true");
        assert_eq!(Json::num(3u32).render_compact(), "3");
        assert_eq!(Json::num(3.25).render_compact(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::str("a\"b\n").render_compact(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("demo")),
            ("values", Json::arr([Json::num(1u32), Json::num(2u32)])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let pretty = doc.render();
        assert!(pretty.starts_with("{\n  \"name\": \"demo\""));
        assert!(pretty.ends_with("}\n"));
        assert_eq!(
            doc.render_compact(),
            "{\"name\": \"demo\",\"values\": [1,2],\"empty\": {}}"
        );
    }

    #[test]
    fn parses_what_it_renders() {
        let doc = Json::obj([
            ("s", Json::str("αβ ≥ \"x\"\t")),
            ("n", Json::num(-12.5)),
            ("i", Json::num(9_007_199_254_740_000.0_f64)),
            ("b", Json::Bool(false)),
            ("z", Json::Null),
            (
                "a",
                Json::arr([Json::str("one"), Json::obj([("k", Json::num(2u32))])]),
            ),
        ]);
        for text in [doc.render(), doc.render_compact()] {
            assert_eq!(Json::parse(&text).expect("round trip"), doc);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = Json::parse(r#""aéA😀\/""#).unwrap();
        assert_eq!(parsed, Json::str("aéA😀/"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "nul",
            "{\"a\" 1}",
            r#""\ud800A""#,
            r#""\ud800""#,
            "\"\\ud800\\u0041\"",
            "01",
            "1.",
            "-.5",
            "1e",
            "1e400",
            "\"raw\ncontrol\"",
            "\"tab\there\"",
            r#"{"a": 1, "a": 2}"#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        let bomb = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::DepthExceeded);
        assert!(err.message.contains("nested deeper"), "got: {err}");
        // Nesting below the limit still parses.
        let fine = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn hostile_input_errors_are_typed() {
        use JsonErrorKind::*;
        for (bad, kind) in [
            (r#"{"a": 1, "a": 2}"#.to_string(), DuplicateKey),
            (r#""\ud800A""#.to_string(), UnpairedSurrogate),
            (r#""\ud800""#.to_string(), UnpairedSurrogate),
            ("\"\\ud800\\u0041\"".to_string(), UnpairedSurrogate),
            (r#""\udc00""#.to_string(), UnpairedSurrogate),
            (
                "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1),
                DepthExceeded,
            ),
            ("1 2".to_string(), TrailingData),
            ("{\"a\":}".to_string(), Syntax),
        ] {
            let err = Json::parse(&bad).unwrap_err();
            assert_eq!(err.kind, kind, "for {bad:?}: {err}");
            assert!(!err.kind.label().is_empty());
            assert!(err.offset <= bad.len(), "offset past end for {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, true, "x"]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), 3);
        assert_eq!(arr.as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(arr.as_arr().unwrap()[1].as_bool(), Some(true));
        assert_eq!(arr.as_arr().unwrap()[2].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::num(1.5).as_u64(), None);
        // Integers from 2^53 up are ambiguous as doubles and are rejected.
        assert_eq!(
            Json::num(9_007_199_254_740_991.0_f64).as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(Json::num(9_007_199_254_740_992.0_f64).as_u64(), None);
    }
}
