//! Shared infrastructure for running experiments: the prefetcher line-up,
//! run scales, and the baseline-normalized performance metric.

use dspatch::{DsPatch, DsPatchConfig};
use dspatch_prefetchers::{
    lineup, AdjunctPrefetcher, BopConfig, BopPrefetcher, SmsConfig, SmsPrefetcher, SppConfig,
    SppPrefetcher, StreamConfig, StreamPrefetcher,
};
use dspatch_sim::{SimResult, SimulationBuilder, SystemConfig};
use dspatch_trace::{WorkloadMix, WorkloadSpec};
use dspatch_types::Prefetcher;
use serde::{Deserialize, Serialize};

/// The prefetchers the paper's figures compare. Each variant builds a fresh
/// prefetcher instance for one simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No L2 prefetcher (the baseline keeps only the L1 PC-stride prefetcher).
    Baseline,
    /// Best Offset Prefetcher.
    Bop,
    /// Bandwidth-enhanced BOP (Section 2.2).
    Ebop,
    /// Spatial Memory Streaming with a 16 K-entry PHT.
    Sms,
    /// SMS limited to 256 PHT entries (iso-storage with DSPatch).
    SmsIso,
    /// Signature Pattern Prefetcher.
    Spp,
    /// Bandwidth-enhanced SPP (Section 2.1).
    Espp,
    /// Standalone DSPatch.
    Dspatch,
    /// DSPatch as an adjunct to SPP — the paper's headline configuration.
    DspatchPlusSpp,
    /// BOP as an adjunct to SPP.
    BopPlusSpp,
    /// eBOP as an adjunct to SPP.
    EbopPlusSpp,
    /// 256-entry SMS as an adjunct to SPP.
    SmsIsoPlusSpp,
    /// Figure 19 ablation: DSPatch that always predicts with `CovP`.
    AlwaysCovpPlusSpp,
    /// Figure 19 ablation: DSPatch that only throttles `CovP`.
    ModCovpPlusSpp,
    /// Aggressive streaming prefetcher (appendix pollution study).
    Streamer,
}

impl PrefetcherKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::Baseline => "Baseline",
            PrefetcherKind::Bop => "BOP",
            PrefetcherKind::Ebop => "eBOP",
            PrefetcherKind::Sms => "SMS",
            PrefetcherKind::SmsIso => "SMS(iso)",
            PrefetcherKind::Spp => "SPP",
            PrefetcherKind::Espp => "eSPP",
            PrefetcherKind::Dspatch => "DSPatch",
            PrefetcherKind::DspatchPlusSpp => "DSPatch+SPP",
            PrefetcherKind::BopPlusSpp => "BOP+SPP",
            PrefetcherKind::EbopPlusSpp => "eBOP+SPP",
            PrefetcherKind::SmsIsoPlusSpp => "SMS(iso)+SPP",
            PrefetcherKind::AlwaysCovpPlusSpp => "AlwaysCovP+SPP",
            PrefetcherKind::ModCovpPlusSpp => "ModCovP+SPP",
            PrefetcherKind::Streamer => "Streamer",
        }
    }

    /// Builds a fresh prefetcher instance of this kind.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::Baseline => Box::new(dspatch_types::NullPrefetcher::new()),
            PrefetcherKind::Bop => Box::new(BopPrefetcher::new(BopConfig::default())),
            PrefetcherKind::Ebop => Box::new(BopPrefetcher::new(BopConfig::enhanced())),
            PrefetcherKind::Sms => Box::new(SmsPrefetcher::new(SmsConfig::default())),
            PrefetcherKind::SmsIso => {
                Box::new(SmsPrefetcher::new(SmsConfig::with_pht_entries(256)))
            }
            PrefetcherKind::Spp => Box::new(SppPrefetcher::new(SppConfig::default())),
            PrefetcherKind::Espp => Box::new(SppPrefetcher::new(SppConfig::enhanced())),
            PrefetcherKind::Dspatch => Box::new(DsPatch::new(DsPatchConfig::default())),
            PrefetcherKind::DspatchPlusSpp => lineup::dspatch_plus_spp(),
            PrefetcherKind::BopPlusSpp => lineup::bop_plus_spp(),
            PrefetcherKind::EbopPlusSpp => lineup::ebop_plus_spp(),
            PrefetcherKind::SmsIsoPlusSpp => lineup::sms_iso_plus_spp(),
            PrefetcherKind::AlwaysCovpPlusSpp => Box::new(AdjunctPrefetcher::new(
                SppPrefetcher::new(SppConfig::default()),
                DsPatch::new(DsPatchConfig::default().always_covp()),
            )),
            PrefetcherKind::ModCovpPlusSpp => Box::new(AdjunctPrefetcher::new(
                SppPrefetcher::new(SppConfig::default()),
                DsPatch::new(DsPatchConfig::default().mod_covp()),
            )),
            PrefetcherKind::Streamer => Box::new(StreamPrefetcher::new(StreamConfig::default())),
        }
    }

    /// The standalone line-up of Figure 12.
    pub fn standalone_lineup() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
            PrefetcherKind::Dspatch,
            PrefetcherKind::DspatchPlusSpp,
        ]
    }

    /// The adjunct line-up of Figure 14.
    pub fn adjunct_lineup() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::Spp,
            PrefetcherKind::BopPlusSpp,
            PrefetcherKind::SmsIsoPlusSpp,
            PrefetcherKind::DspatchPlusSpp,
        ]
    }
}

/// How much work an experiment does. Every figure function takes a scale so
/// the same code serves smoke tests, `cargo bench` and full reproductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunScale {
    /// Memory accesses simulated per workload.
    pub accesses_per_workload: usize,
    /// Maximum workloads taken from each category (0 = all).
    pub workloads_per_category: usize,
    /// Number of multi-programmed mixes simulated (0 = all defined mixes).
    pub mixes: usize,
    /// Number of worker threads used to run workloads in parallel.
    pub threads: usize,
}

impl RunScale {
    /// Tiny scale for unit tests and doctests (seconds).
    pub fn smoke() -> Self {
        Self {
            accesses_per_workload: 1_200,
            workloads_per_category: 1,
            mixes: 2,
            threads: 4,
        }
    }

    /// The scale used by `cargo bench`: small enough to run every figure in
    /// minutes, large enough for stable trends.
    pub fn quick() -> Self {
        Self {
            accesses_per_workload: 6_000,
            workloads_per_category: 2,
            mixes: 4,
            threads: 8,
        }
    }

    /// Laptop-scale full reproduction: every workload, longer traces.
    pub fn full() -> Self {
        Self {
            accesses_per_workload: 40_000,
            workloads_per_category: 0,
            mixes: 0,
            threads: 8,
        }
    }

    /// Applies the per-category workload cap to a workload list.
    pub fn select_workloads(&self, all: Vec<WorkloadSpec>) -> Vec<WorkloadSpec> {
        if self.workloads_per_category == 0 {
            return all;
        }
        let mut taken: std::collections::BTreeMap<_, usize> = std::collections::BTreeMap::new();
        all.into_iter()
            .filter(|w| {
                let count = taken.entry(w.category).or_insert(0);
                *count += 1;
                *count <= self.workloads_per_category
            })
            .collect()
    }

    /// Applies the mix cap to a mix list.
    pub fn select_mixes(&self, all: Vec<WorkloadMix>) -> Vec<WorkloadMix> {
        if self.mixes == 0 {
            return all;
        }
        all.into_iter().take(self.mixes).collect()
    }
}

/// Runs one single-thread workload with the given prefetcher kind.
pub fn run_workload(
    workload: &WorkloadSpec,
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> SimResult {
    let trace = workload.generate(scale.accesses_per_workload);
    SimulationBuilder::new(config.clone())
        .with_core(trace, kind.build())
        .run()
}

/// Runs one 4-core multi-programmed mix with the same prefetcher kind on
/// every core.
pub fn run_mix(
    mix: &WorkloadMix,
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> SimResult {
    let mut builder = SimulationBuilder::new(config.clone());
    for workload in &mix.workloads {
        builder = builder.with_core(workload.generate(scale.accesses_per_workload), kind.build());
    }
    builder.run()
}

/// Per-workload speedups of `kind` over the no-L2-prefetcher baseline, in
/// workload order. Workloads are distributed across `scale.threads` threads.
pub fn speedups_over_baseline(
    workloads: &[WorkloadSpec],
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> Vec<f64> {
    let threads = scale.threads.max(1);
    let chunk_size = workloads.len().div_ceil(threads).max(1);
    let results: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_index, chunk) in workloads.chunks(chunk_size).enumerate() {
            let config = config.clone();
            let scale = *scale;
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, workload)| {
                        let baseline =
                            run_workload(workload, PrefetcherKind::Baseline, &config, &scale);
                        let candidate = run_workload(workload, kind, &config, &scale);
                        (
                            chunk_index * chunk_size + i,
                            candidate.speedup_over(&baseline),
                        )
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("worker thread panicked"));
        }
        all
    });
    let mut ordered = results;
    ordered.sort_by_key(|(i, _)| *i);
    ordered.into_iter().map(|(_, s)| s).collect()
}

/// Geometric mean of a slice of speedups.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Geometric-mean performance delta of `kind` over the baseline across
/// `workloads`, as a fraction (0.06 = +6 %).
pub fn perf_delta(
    workloads: &[WorkloadSpec],
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> f64 {
    geomean(&speedups_over_baseline(workloads, kind, config, scale)) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_trace::workloads::suite;

    #[test]
    fn every_kind_builds_a_prefetcher() {
        for kind in [
            PrefetcherKind::Baseline,
            PrefetcherKind::Bop,
            PrefetcherKind::Ebop,
            PrefetcherKind::Sms,
            PrefetcherKind::SmsIso,
            PrefetcherKind::Spp,
            PrefetcherKind::Espp,
            PrefetcherKind::Dspatch,
            PrefetcherKind::DspatchPlusSpp,
            PrefetcherKind::BopPlusSpp,
            PrefetcherKind::EbopPlusSpp,
            PrefetcherKind::SmsIsoPlusSpp,
            PrefetcherKind::AlwaysCovpPlusSpp,
            PrefetcherKind::ModCovpPlusSpp,
            PrefetcherKind::Streamer,
        ] {
            let prefetcher = kind.build();
            assert!(!kind.label().is_empty());
            assert!(!prefetcher.name().is_empty());
        }
    }

    #[test]
    fn scale_caps_workloads_per_category() {
        let scale = RunScale::smoke();
        let selected = scale.select_workloads(suite());
        assert_eq!(
            selected.len(),
            9,
            "one workload per category at smoke scale"
        );
        let full = RunScale::full().select_workloads(suite());
        assert_eq!(full.len(), 75);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn run_workload_produces_a_result() {
        let scale = RunScale::smoke();
        let workloads = scale.select_workloads(suite());
        let config = SystemConfig::single_thread();
        let result = run_workload(&workloads[0], PrefetcherKind::Baseline, &config, &scale);
        assert_eq!(result.cores.len(), 1);
        assert!(result.cores[0].instructions > 0);
    }

    #[test]
    fn speedups_align_with_workload_order() {
        let scale = RunScale::smoke();
        let workloads: Vec<_> = scale
            .select_workloads(suite())
            .into_iter()
            .take(3)
            .collect();
        let config = SystemConfig::single_thread();
        let speedups = speedups_over_baseline(&workloads, PrefetcherKind::Spp, &config, &scale);
        assert_eq!(speedups.len(), workloads.len());
        assert!(speedups.iter().all(|s| *s > 0.0));
    }
}
