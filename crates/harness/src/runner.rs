//! Shared infrastructure for running experiments: the prefetcher line-up,
//! run scales, and the baseline-normalized performance metric.

use dspatch::{DsPatch, DsPatchConfig};
use dspatch_prefetchers::any::composites;
use dspatch_prefetchers::{
    AnyPrefetcher, BopConfig, BopPrefetcher, SmsConfig, SmsPrefetcher, SppConfig, SppPrefetcher,
    StreamConfig, StreamPrefetcher,
};
use dspatch_sim::{SimResult, SimulationBuilder, SystemConfig};
use dspatch_trace::{WorkloadMix, WorkloadSpec};
use dspatch_types::Prefetcher;
use serde::{Deserialize, Serialize};

/// The prefetchers the paper's figures compare. Each variant builds a fresh
/// prefetcher instance for one simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No L2 prefetcher (the baseline keeps only the L1 PC-stride prefetcher).
    Baseline,
    /// Best Offset Prefetcher.
    Bop,
    /// Bandwidth-enhanced BOP (Section 2.2).
    Ebop,
    /// Spatial Memory Streaming with a 16 K-entry PHT.
    Sms,
    /// SMS limited to 256 PHT entries (iso-storage with DSPatch).
    SmsIso,
    /// Signature Pattern Prefetcher.
    Spp,
    /// Bandwidth-enhanced SPP (Section 2.1).
    Espp,
    /// Standalone DSPatch.
    Dspatch,
    /// DSPatch as an adjunct to SPP — the paper's headline configuration.
    DspatchPlusSpp,
    /// BOP as an adjunct to SPP.
    BopPlusSpp,
    /// eBOP as an adjunct to SPP.
    EbopPlusSpp,
    /// 256-entry SMS as an adjunct to SPP.
    SmsIsoPlusSpp,
    /// Figure 19 ablation: DSPatch that always predicts with `CovP`.
    AlwaysCovpPlusSpp,
    /// Figure 19 ablation: DSPatch that only throttles `CovP`.
    ModCovpPlusSpp,
    /// Aggressive streaming prefetcher (appendix pollution study).
    Streamer,
}

impl PrefetcherKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::Baseline => "Baseline",
            PrefetcherKind::Bop => "BOP",
            PrefetcherKind::Ebop => "eBOP",
            PrefetcherKind::Sms => "SMS",
            PrefetcherKind::SmsIso => "SMS(iso)",
            PrefetcherKind::Spp => "SPP",
            PrefetcherKind::Espp => "eSPP",
            PrefetcherKind::Dspatch => "DSPatch",
            PrefetcherKind::DspatchPlusSpp => "DSPatch+SPP",
            PrefetcherKind::BopPlusSpp => "BOP+SPP",
            PrefetcherKind::EbopPlusSpp => "eBOP+SPP",
            PrefetcherKind::SmsIsoPlusSpp => "SMS(iso)+SPP",
            PrefetcherKind::AlwaysCovpPlusSpp => "AlwaysCovP+SPP",
            PrefetcherKind::ModCovpPlusSpp => "ModCovP+SPP",
            PrefetcherKind::Streamer => "Streamer",
        }
    }

    /// Builds a fresh prefetcher instance of this kind behind the dynamic
    /// `dyn Prefetcher` interface (the escape-hatch form; simulations built
    /// from the registry use [`PrefetcherKind::build_any`] instead).
    ///
    /// Delegates to [`PrefetcherKind::build_any`] so the registry has
    /// exactly one construction table — the two forms cannot drift apart.
    pub fn build(self) -> Box<dyn Prefetcher> {
        Box::new(self.build_any())
    }

    /// Builds a fresh prefetcher instance of this kind as a statically
    /// dispatched [`AnyPrefetcher`] — the form every registry-driven
    /// simulation uses, so the per-access hot path never crosses a vtable.
    pub fn build_any(self) -> AnyPrefetcher {
        match self {
            PrefetcherKind::Baseline => dspatch_types::NullPrefetcher::new().into(),
            PrefetcherKind::Bop => BopPrefetcher::new(BopConfig::default()).into(),
            PrefetcherKind::Ebop => BopPrefetcher::new(BopConfig::enhanced()).into(),
            PrefetcherKind::Sms => SmsPrefetcher::new(SmsConfig::default()).into(),
            PrefetcherKind::SmsIso => SmsPrefetcher::new(SmsConfig::with_pht_entries(256)).into(),
            PrefetcherKind::Spp => SppPrefetcher::new(SppConfig::default()).into(),
            PrefetcherKind::Espp => SppPrefetcher::new(SppConfig::enhanced()).into(),
            PrefetcherKind::Dspatch => DsPatch::new(DsPatchConfig::default()).into(),
            PrefetcherKind::DspatchPlusSpp => composites::dspatch_plus_spp().into(),
            PrefetcherKind::BopPlusSpp => composites::bop_plus_spp().into(),
            PrefetcherKind::EbopPlusSpp => composites::ebop_plus_spp().into(),
            PrefetcherKind::SmsIsoPlusSpp => composites::sms_iso_plus_spp().into(),
            PrefetcherKind::AlwaysCovpPlusSpp => composites::dspatch_always_covp_plus_spp().into(),
            PrefetcherKind::ModCovpPlusSpp => composites::dspatch_mod_covp_plus_spp().into(),
            PrefetcherKind::Streamer => StreamPrefetcher::new(StreamConfig::default()).into(),
        }
    }

    /// Stable lower-case spec-file name, accepted by [`PrefetcherKind::parse`]
    /// and emitted when a campaign spec is serialized.
    pub fn spec_name(self) -> &'static str {
        match self {
            PrefetcherKind::Baseline => "baseline",
            PrefetcherKind::Bop => "bop",
            PrefetcherKind::Ebop => "ebop",
            PrefetcherKind::Sms => "sms",
            PrefetcherKind::SmsIso => "sms_iso",
            PrefetcherKind::Spp => "spp",
            PrefetcherKind::Espp => "espp",
            PrefetcherKind::Dspatch => "dspatch",
            PrefetcherKind::DspatchPlusSpp => "dspatch_plus_spp",
            PrefetcherKind::BopPlusSpp => "bop_plus_spp",
            PrefetcherKind::EbopPlusSpp => "ebop_plus_spp",
            PrefetcherKind::SmsIsoPlusSpp => "sms_iso_plus_spp",
            PrefetcherKind::AlwaysCovpPlusSpp => "always_covp_plus_spp",
            PrefetcherKind::ModCovpPlusSpp => "mod_covp_plus_spp",
            PrefetcherKind::Streamer => "streamer",
        }
    }

    /// Parses a kind from its spec name or display label (ASCII
    /// case-insensitive), e.g. `"dspatch_plus_spp"` or `"DSPatch+SPP"`.
    pub fn parse(name: &str) -> Option<PrefetcherKind> {
        PrefetcherKind::ALL.into_iter().find(|kind| {
            kind.spec_name().eq_ignore_ascii_case(name) || kind.label().eq_ignore_ascii_case(name)
        })
    }

    /// Every kind, in the order they are documented above.
    pub const ALL: [PrefetcherKind; 15] = [
        PrefetcherKind::Baseline,
        PrefetcherKind::Bop,
        PrefetcherKind::Ebop,
        PrefetcherKind::Sms,
        PrefetcherKind::SmsIso,
        PrefetcherKind::Spp,
        PrefetcherKind::Espp,
        PrefetcherKind::Dspatch,
        PrefetcherKind::DspatchPlusSpp,
        PrefetcherKind::BopPlusSpp,
        PrefetcherKind::EbopPlusSpp,
        PrefetcherKind::SmsIsoPlusSpp,
        PrefetcherKind::AlwaysCovpPlusSpp,
        PrefetcherKind::ModCovpPlusSpp,
        PrefetcherKind::Streamer,
    ];

    /// The standalone line-up of Figure 12.
    pub fn standalone_lineup() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
            PrefetcherKind::Spp,
            PrefetcherKind::Dspatch,
            PrefetcherKind::DspatchPlusSpp,
        ]
    }

    /// The adjunct line-up of Figure 14.
    pub fn adjunct_lineup() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::Spp,
            PrefetcherKind::BopPlusSpp,
            PrefetcherKind::SmsIsoPlusSpp,
            PrefetcherKind::DspatchPlusSpp,
        ]
    }
}

/// How much work an experiment does. Every figure function takes a scale so
/// the same code serves smoke tests, `cargo bench` and full reproductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunScale {
    /// Memory accesses simulated per workload.
    pub accesses_per_workload: usize,
    /// Maximum workloads taken from each category (0 = all).
    pub workloads_per_category: usize,
    /// Number of multi-programmed mixes simulated (0 = all defined mixes).
    pub mixes: usize,
    /// Number of worker threads used to run workloads in parallel.
    pub threads: usize,
    /// Epoch-worker threads **inside** each multi-core simulation
    /// (`SystemConfig::parallel_cores`): 0 leaves multi-core cells on the
    /// single-threaded engine, N > 0 runs them with N epoch workers. The
    /// result is bit-identical either way; the campaign executor divides
    /// [`RunScale::threads`] by this so the two levels share one budget.
    pub sim_workers: usize,
    /// Interval-sampling plan: `None` runs every access in detail (exact),
    /// `Some` fast-forwards through functional warm-up and measures only
    /// the plan's intervals (see [`crate::sampling`]). Sampled scales are
    /// single-core-only and report mean ± 95% CI on each result.
    pub sampling: Option<crate::sampling::SamplingPlan>,
}

impl RunScale {
    /// Tiny scale for unit tests and doctests (seconds).
    pub fn smoke() -> Self {
        Self {
            accesses_per_workload: 1_200,
            workloads_per_category: 1,
            mixes: 2,
            threads: default_threads(),
            sim_workers: 0,
            sampling: None,
        }
    }

    /// The scale used by `cargo bench`: small enough to run every figure in
    /// minutes, large enough for stable trends.
    pub fn quick() -> Self {
        Self {
            accesses_per_workload: 6_000,
            workloads_per_category: 2,
            mixes: 4,
            threads: default_threads(),
            sim_workers: 0,
            sampling: None,
        }
    }

    /// Laptop-scale full reproduction: every workload, longer traces.
    pub fn full() -> Self {
        Self {
            accesses_per_workload: 40_000,
            workloads_per_category: 0,
            mixes: 0,
            threads: default_threads(),
            sim_workers: 0,
            sampling: None,
        }
    }

    /// Looks up a preset by name ("smoke", "quick" or "full").
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "quick" => Some(Self::quick()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// Overrides the worker-thread count (presets default to
    /// [`default_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables the parallel multi-core engine with `workers` epoch workers
    /// per multi-core simulation (0 disables it again).
    pub fn with_sim_workers(mut self, workers: usize) -> Self {
        self.sim_workers = workers;
        self
    }

    /// Attaches (or clears) an interval-sampling plan.
    pub fn with_sampling(mut self, plan: Option<crate::sampling::SamplingPlan>) -> Self {
        self.sampling = plan;
        self
    }

    /// Applies [`RunScale::sim_workers`] to a concrete system
    /// configuration: multi-core configs get `parallel_cores` switched on
    /// with the requested worker count, single-core configs (and
    /// `sim_workers == 0`) pass through untouched.
    pub fn apply_sim_workers(&self, mut config: SystemConfig) -> SystemConfig {
        if self.sim_workers > 0 && config.cores > 1 {
            config.parallel_cores = true;
            config.parallel_workers = self.sim_workers;
            // Pin the epoch length explicitly so the applied config passes
            // `SystemConfig::validate` (which rejects 0 = auto on parallel
            // configs). Same value the engine would pick for 0.
            if config.parallel_epoch_cycles == 0 {
                config.parallel_epoch_cycles = config.default_epoch_cycles();
            }
        }
        config
    }

    /// Applies the per-category workload cap to a workload list.
    pub fn select_workloads(&self, all: Vec<WorkloadSpec>) -> Vec<WorkloadSpec> {
        if self.workloads_per_category == 0 {
            return all;
        }
        let mut taken: std::collections::BTreeMap<_, usize> = std::collections::BTreeMap::new();
        all.into_iter()
            .filter(|w| {
                let count = taken.entry(w.category).or_insert(0);
                *count += 1;
                *count <= self.workloads_per_category
            })
            .collect()
    }

    /// Applies the mix cap to a mix list.
    pub fn select_mixes(&self, all: Vec<WorkloadMix>) -> Vec<WorkloadMix> {
        if self.mixes == 0 {
            return all;
        }
        all.into_iter().take(self.mixes).collect()
    }
}

/// Runs one single-thread workload with the given prefetcher kind. The
/// workload streams into the simulator as a lazy [`dspatch_trace::SynthSource`]
/// — no trace is materialized, so memory stays O(1) in
/// `scale.accesses_per_workload`.
pub fn run_workload(
    workload: &WorkloadSpec,
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> SimResult {
    if scale.sampling.is_some() {
        // Sampled scales measure seed-placed intervals instead of the whole
        // trace; the scale was validated upstream, so a plan that does not
        // fit here is a caller bug worth the panic.
        return crate::sampling::run_sampled_workload(
            workload,
            kind.build_any(),
            config,
            scale,
            None,
        )
        .unwrap_or_else(|error| panic!("sampled workload '{}': {error}", workload.name));
    }
    SimulationBuilder::new(config.clone())
        .with_core(
            workload.source(scale.accesses_per_workload),
            kind.build_any(),
        )
        .run()
}

/// Runs one 4-core multi-programmed mix with the same prefetcher kind on
/// every core. Each core streams its workload lazily (O(1) memory per core).
pub fn run_mix(
    mix: &WorkloadMix,
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> SimResult {
    // Checkpoints and interval placement are single-core-only; campaign
    // specs get this as a clean spec error, so reaching it here means the
    // caller skipped validation.
    assert!(
        scale.sampling.is_none(),
        "sampled scales cannot run multi-programmed mixes (mix '{}')",
        mix.name
    );
    let mut builder = SimulationBuilder::new(config.clone());
    for workload in &mix.workloads {
        builder = builder.with_core(
            workload.source(scale.accesses_per_workload),
            kind.build_any(),
        );
    }
    builder.run()
}

/// The default worker-thread count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Per-workload speedups of `kind` over the no-L2-prefetcher baseline, in
/// workload order.
///
/// This is a thin wrapper over the campaign executor
/// ([`crate::campaign::run_cells`]): the (workload, baseline) and
/// (workload, kind) simulations are deduplicated, memoized and drained by a
/// self-scheduling pool of `scale.threads` workers.
pub fn speedups_over_baseline(
    workloads: &[WorkloadSpec],
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> Vec<f64> {
    use crate::campaign::{run_cells, PrefetcherSel, ResolvedCell, Target};
    let cell = ResolvedCell {
        label: "all".to_owned(),
        targets: workloads.iter().cloned().map(Target::Workload).collect(),
        prefetchers: vec![PrefetcherSel::Kind(kind)],
        config: config.clone(),
        config_label: String::new(),
        baseline: true,
    };
    let result = run_cells("speedups_over_baseline", &[cell], scale);
    // Baseline cells always carry speedups; a quarantined baseline would
    // drop its row rather than poison the aggregate with a placeholder.
    result
        .rows
        .iter()
        .filter_map(|row| result.speedup(row))
        .collect()
}

/// Geometric mean of a slice of speedups.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Geometric-mean performance delta of `kind` over the baseline across
/// `workloads`, as a fraction (0.06 = +6 %).
pub fn perf_delta(
    workloads: &[WorkloadSpec],
    kind: PrefetcherKind,
    config: &SystemConfig,
    scale: &RunScale,
) -> f64 {
    geomean(&speedups_over_baseline(workloads, kind, config, scale)) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_trace::workloads::suite;

    #[test]
    fn every_kind_builds_a_prefetcher_and_parses_back() {
        for kind in PrefetcherKind::ALL {
            let prefetcher = kind.build();
            assert!(!kind.label().is_empty());
            assert!(!prefetcher.name().is_empty());
            assert_eq!(
                kind.build_any().name(),
                prefetcher.name(),
                "static and boxed forms must agree on identity"
            );
            assert_eq!(PrefetcherKind::parse(kind.spec_name()), Some(kind));
            assert_eq!(PrefetcherKind::parse(kind.label()), Some(kind));
        }
    }

    #[test]
    fn scale_caps_workloads_per_category() {
        let scale = RunScale::smoke();
        let selected = scale.select_workloads(suite());
        assert_eq!(
            selected.len(),
            9,
            "one workload per category at smoke scale"
        );
        let full = RunScale::full().select_workloads(suite());
        assert_eq!(full.len(), 75);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn run_workload_produces_a_result() {
        let scale = RunScale::smoke();
        let workloads = scale.select_workloads(suite());
        let config = SystemConfig::single_thread();
        let result = run_workload(&workloads[0], PrefetcherKind::Baseline, &config, &scale);
        assert_eq!(result.cores.len(), 1);
        assert!(result.cores[0].instructions > 0);
    }

    #[test]
    fn speedups_align_with_workload_order() {
        let scale = RunScale::smoke();
        let workloads: Vec<_> = scale
            .select_workloads(suite())
            .into_iter()
            .take(3)
            .collect();
        let config = SystemConfig::single_thread();
        let speedups = speedups_over_baseline(&workloads, PrefetcherKind::Spp, &config, &scale);
        assert_eq!(speedups.len(), workloads.len());
        assert!(speedups.iter().all(|s| *s > 0.0));
    }
}
