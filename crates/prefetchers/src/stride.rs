//! PC-based stride prefetcher.
//!
//! This is the L1 prefetcher of the paper's baseline configuration (Table 2:
//! "PC-based stride prefetcher, tracks 64 PCs", after Fu et al., MICRO 1992).
//! Each tracked PC learns a constant cache-line stride between its
//! consecutive accesses; once the stride has been confirmed twice, the
//! prefetcher runs `degree` strides ahead of the demand stream.

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    FillLevel, LineAddr, MemoryAccess, Pc, PrefetchContext, PrefetchRequest, PrefetchSink,
    Prefetcher,
};
use serde::{Deserialize, Serialize};

/// Configuration of the [`StridePrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrideConfig {
    /// Number of PCs tracked (paper: 64).
    pub tracked_pcs: usize,
    /// Confidence (in confirmations) required before prefetching.
    pub confidence_threshold: u8,
    /// Number of strides to run ahead once confident.
    pub degree: usize,
    /// Cache level prefetched lines fill into.
    pub fill_level: FillLevel,
}

impl Default for StrideConfig {
    fn default() -> Self {
        Self {
            tracked_pcs: 64,
            confidence_threshold: 2,
            degree: 2,
            fill_level: FillLevel::L1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct StrideEntry {
    pc: Pc,
    last_line: LineAddr,
    stride: i64,
    confidence: u8,
    last_use: u64,
}

/// A PC-indexed stride prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_prefetchers::{StrideConfig, StridePrefetcher};
/// use dspatch_types::{
///     AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, PrefetchSink, Prefetcher,
/// };
///
/// let mut pf = StridePrefetcher::new(StrideConfig::default());
/// let ctx = PrefetchContext::default();
/// let mut sink = PrefetchSink::new();
/// for i in 0..6u64 {
///     let a = MemoryAccess::new(Pc::new(0x10), Addr::new(i * 128), AccessKind::Load);
///     pf.on_access(&a, &ctx, &mut sink);
/// }
/// // A constant +2-line stride is learnt and prefetched ahead.
/// assert!(!sink.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridePrefetcher {
    config: StrideConfig,
    entries: Vec<StrideEntry>,
    clock: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `tracked_pcs` or `degree` is zero.
    pub fn new(config: StrideConfig) -> Self {
        assert!(config.tracked_pcs > 0, "must track at least one PC");
        assert!(config.degree > 0, "prefetch degree must be positive");
        Self {
            config,
            entries: Vec::with_capacity(config.tracked_pcs),
            clock: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StrideConfig {
        &self.config
    }

    fn find_or_allocate(&mut self, pc: Pc, line: LineAddr) -> usize {
        if let Some(i) = self.entries.iter().position(|e| e.pc == pc) {
            return i;
        }
        let entry = StrideEntry {
            pc,
            last_line: line,
            stride: 0,
            confidence: 0,
            last_use: self.clock,
        };
        if self.entries.len() < self.config.tracked_pcs {
            self.entries.push(entry);
            self.entries.len() - 1
        } else {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("table is non-empty at capacity");
            self.entries[victim] = entry;
            victim
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "L1-stride"
    }

    fn on_access(&mut self, access: &MemoryAccess, _ctx: &PrefetchContext, out: &mut PrefetchSink) {
        self.clock += 1;
        let line = access.line();
        let index = self.find_or_allocate(access.pc, line);
        let (stride, confident) = {
            let entry = &mut self.entries[index];
            entry.last_use = self.clock;
            let observed = line.delta_from(entry.last_line);
            if observed == 0 {
                // Same line again: no new information.
                return;
            }
            if observed == entry.stride {
                entry.confidence = entry.confidence.saturating_add(1);
            } else {
                entry.stride = observed;
                entry.confidence = 0;
            }
            entry.last_line = line;
            (
                entry.stride,
                entry.confidence >= self.config.confidence_threshold,
            )
        };
        if !confident || stride == 0 {
            return;
        }
        for k in 1..=self.config.degree as i64 {
            out.push(
                PrefetchRequest::new(line.offset_by(stride * k))
                    .with_fill_level(self.config.fill_level),
            );
        }
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: PC tag (16b folded), last line (42b), stride (7b signed),
        // confidence (2b), LRU (6b).
        self.config.tracked_pcs as u64 * (16 + 42 + 7 + 2 + 6)
    }
}

impl SnapshotState for StridePrefetcher {
    fn snapshot_tag(&self) -> &'static str {
        "stride"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.entries.len());
        for entry in &self.entries {
            writer.put_u64(entry.pc.as_u64());
            writer.put_u64(entry.last_line.as_u64());
            writer.put_i64(entry.stride);
            writer.put_u8(entry.confidence);
            writer.put_u64(entry.last_use);
        }
        writer.put_u64(self.clock);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let len = reader.get_len()?;
        self.entries.clear();
        for _ in 0..len {
            self.entries.push(StrideEntry {
                pc: Pc::new(reader.get_u64()?),
                last_line: LineAddr::new(reader.get_u64()?),
                stride: reader.get_i64()?,
                confidence: reader.get_u8()?,
                last_use: reader.get_u64()?,
            });
        }
        self.clock = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_types::{AccessKind, Addr};

    fn access(pc: u64, byte: u64) -> MemoryAccess {
        MemoryAccess::new(Pc::new(pc), Addr::new(byte), AccessKind::Load)
    }

    fn drive(pf: &mut StridePrefetcher, pc: u64, bytes: &[u64]) -> Vec<PrefetchRequest> {
        let ctx = PrefetchContext::default();
        let mut out = Vec::new();
        for &b in bytes {
            out.extend(pf.collect_requests(&access(pc, b), &ctx));
        }
        out
    }

    #[test]
    fn learns_positive_stride_and_prefetches_ahead() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let reqs = drive(&mut pf, 1, &[0, 64, 128, 192, 256]);
        assert!(!reqs.is_empty());
        // With a +1-line stride, the prefetches are strictly ahead of the demand.
        let last_demand = Addr::new(256).line();
        assert!(reqs.iter().all(|r| r.line > Addr::new(0).line()));
        assert!(reqs
            .iter()
            .any(|r| r.line > last_demand || r.line.as_u64() > 0));
    }

    #[test]
    fn learns_negative_stride() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let reqs = drive(&mut pf, 1, &[64 * 100, 64 * 98, 64 * 96, 64 * 94, 64 * 92]);
        assert!(!reqs.is_empty());
        // Prefetches run ahead of (below) the access that issued them.
        assert!(reqs.iter().all(|r| r.line <= Addr::new(64 * 92).line()));
        assert!(reqs.iter().any(|r| r.line < Addr::new(64 * 92).line()));
    }

    #[test]
    fn irregular_stream_stays_quiet() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let reqs = drive(&mut pf, 1, &[0, 640, 64, 8192, 320, 12800]);
        assert!(reqs.is_empty(), "no constant stride means no prefetches");
    }

    #[test]
    fn streams_are_tracked_per_pc() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let ctx = PrefetchContext::default();
        let mut issued = Vec::new();
        // Interleave two PCs with different strides; both should train.
        for i in 0..8u64 {
            issued.extend(pf.collect_requests(&access(1, i * 64), &ctx));
            issued.extend(pf.collect_requests(&access(2, 1 << 20 | (i * 256)), &ctx));
        }
        assert!(!issued.is_empty());
    }

    #[test]
    fn table_capacity_is_bounded_with_lru_replacement() {
        let mut pf = StridePrefetcher::new(StrideConfig {
            tracked_pcs: 4,
            ..StrideConfig::default()
        });
        let ctx = PrefetchContext::default();
        for pc in 0..64u64 {
            let _ = pf.collect_requests(&access(pc, pc * 4096), &ctx);
        }
        assert!(pf.entries.len() <= 4);
    }

    #[test]
    fn fill_level_follows_config() {
        let mut pf = StridePrefetcher::new(StrideConfig {
            fill_level: FillLevel::L2,
            ..StrideConfig::default()
        });
        let reqs = drive(&mut pf, 3, &[0, 64, 128, 192, 256]);
        assert!(reqs.iter().all(|r| r.fill_level == FillLevel::L2));
    }

    #[test]
    fn storage_is_reported() {
        let pf = StridePrefetcher::new(StrideConfig::default());
        assert!(pf.storage_bits() > 0);
        assert!(
            pf.storage_bits() < 8 * 1024 * 8,
            "stride prefetcher must stay tiny"
        );
    }

    #[test]
    #[should_panic(expected = "at least one PC")]
    fn zero_capacity_rejected() {
        let _ = StridePrefetcher::new(StrideConfig {
            tracked_pcs: 0,
            ..StrideConfig::default()
        });
    }
}
