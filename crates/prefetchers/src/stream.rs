//! A simple sequential streaming prefetcher.
//!
//! The paper's appendix uses "an aggressive but fairly inaccurate streaming
//! prefetcher" (after Chen & Baer, IEEE TC 1995) to study how much cache
//! pollution inaccurate prefetches actually cause (Figure 20). This module
//! provides that prefetcher: on every access it prefetches the next
//! `degree` sequential cache lines, optionally detecting descending streams.

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    FillLevel, MemoryAccess, PageAddr, PrefetchContext, PrefetchRequest, PrefetchSink, Prefetcher,
};
use serde::{Deserialize, Serialize};

/// Configuration of the [`StreamPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of sequential lines prefetched per access.
    pub degree: usize,
    /// Whether prefetches are confined to the triggering 4 KB page.
    pub stop_at_page_boundary: bool,
    /// Whether descending access streams are detected and followed.
    pub bidirectional: bool,
    /// Cache level prefetched lines fill into.
    pub fill_level: FillLevel,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            degree: 4,
            stop_at_page_boundary: true,
            bidirectional: true,
            fill_level: FillLevel::L2,
        }
    }
}

/// An aggressive next-line streaming prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_prefetchers::{StreamConfig, StreamPrefetcher};
/// use dspatch_types::{AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, Prefetcher};
///
/// let mut pf = StreamPrefetcher::new(StreamConfig::default());
/// let a = MemoryAccess::new(Pc::new(1), Addr::new(0x1000), AccessKind::Load);
/// let reqs = pf.collect_requests(&a, &PrefetchContext::default());
/// assert_eq!(reqs.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamPrefetcher {
    config: StreamConfig,
    /// Last observed line per recently seen page, to pick a direction.
    recent: Vec<(PageAddr, usize)>,
}

impl StreamPrefetcher {
    /// Creates a streaming prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.degree > 0, "stream degree must be positive");
        Self {
            config,
            recent: Vec::with_capacity(16),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    fn direction_for(&mut self, page: PageAddr, offset: usize) -> i64 {
        let slot = self.recent.iter_mut().find(|(p, _)| *p == page);
        match slot {
            Some((_, last)) => {
                let dir = if self.config.bidirectional && offset < *last {
                    -1
                } else {
                    1
                };
                *last = offset;
                dir
            }
            None => {
                if self.recent.len() >= 16 {
                    self.recent.remove(0);
                }
                self.recent.push((page, offset));
                1
            }
        }
    }
}

impl Prefetcher for StreamPrefetcher {
    fn name(&self) -> &str {
        "streamer"
    }

    fn on_access(&mut self, access: &MemoryAccess, _ctx: &PrefetchContext, out: &mut PrefetchSink) {
        let line = access.line();
        let page = access.page();
        let offset = access.page_line_offset();
        let direction = self.direction_for(page, offset);
        for k in 1..=self.config.degree as i64 {
            let target = line.offset_by(direction * k);
            if self.config.stop_at_page_boundary && target.page() != page {
                break;
            }
            out.push(PrefetchRequest::new(target).with_fill_level(self.config.fill_level));
        }
    }

    fn storage_bits(&self) -> u64 {
        // 16 recent-page slots x (page tag 36b + offset 6b + direction 1b).
        16 * (36 + 6 + 1)
    }
}

impl SnapshotState for StreamPrefetcher {
    fn snapshot_tag(&self) -> &'static str {
        "stream"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.recent.len());
        for (page, offset) in &self.recent {
            writer.put_u64(page.as_u64());
            writer.put_usize(*offset);
        }
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let len = reader.get_len()?;
        self.recent.clear();
        for _ in 0..len {
            let page = PageAddr::new(reader.get_u64()?);
            let offset = reader.get_usize()?;
            self.recent.push((page, offset));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_types::{AccessKind, Addr, Pc};

    fn access(byte: u64) -> MemoryAccess {
        MemoryAccess::new(Pc::new(7), Addr::new(byte), AccessKind::Load)
    }

    #[test]
    fn prefetches_degree_sequential_lines() {
        let mut pf = StreamPrefetcher::new(StreamConfig::default());
        let reqs = pf.collect_requests(&access(0x2000), &PrefetchContext::default());
        assert_eq!(reqs.len(), 4);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.line, Addr::new(0x2000).line().offset_by(i as i64 + 1));
        }
    }

    #[test]
    fn stops_at_page_boundary_when_configured() {
        let mut pf = StreamPrefetcher::new(StreamConfig::default());
        // Last line of a page: nothing to prefetch without crossing the page.
        let reqs = pf.collect_requests(&access(0x1000 - 64), &PrefetchContext::default());
        assert!(reqs.is_empty());
    }

    #[test]
    fn crosses_page_boundary_when_allowed() {
        let mut pf = StreamPrefetcher::new(StreamConfig {
            stop_at_page_boundary: false,
            ..StreamConfig::default()
        });
        let reqs = pf.collect_requests(&access(0x1000 - 64), &PrefetchContext::default());
        assert_eq!(reqs.len(), 4);
    }

    #[test]
    fn follows_descending_streams() {
        let mut pf = StreamPrefetcher::new(StreamConfig::default());
        let ctx = PrefetchContext::default();
        let _ = pf.collect_requests(&access(0x1000 + 30 * 64), &ctx);
        let reqs = pf.collect_requests(&access(0x1000 + 20 * 64), &ctx);
        assert!(!reqs.is_empty());
        assert!(reqs
            .iter()
            .all(|r| r.line < Addr::new(0x1000 + 20 * 64).line()));
    }

    #[test]
    fn unidirectional_config_ignores_descending_hint() {
        let mut pf = StreamPrefetcher::new(StreamConfig {
            bidirectional: false,
            ..StreamConfig::default()
        });
        let ctx = PrefetchContext::default();
        let _ = pf.collect_requests(&access(0x1000 + 30 * 64), &ctx);
        let reqs = pf.collect_requests(&access(0x1000 + 20 * 64), &ctx);
        assert!(reqs
            .iter()
            .all(|r| r.line > Addr::new(0x1000 + 20 * 64).line()));
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_rejected() {
        let _ = StreamPrefetcher::new(StreamConfig {
            degree: 0,
            ..StreamConfig::default()
        });
    }
}
