//! Static dispatch over the whole prefetcher line-up.
//!
//! The simulator calls `on_access` once per L1 miss (plus once per L1
//! prefetch miss), hundreds of millions of times per campaign. Behind a
//! `Box<dyn Prefetcher>` every one of those calls is an indirect call the
//! compiler can neither inline nor specialize; behind [`AnyPrefetcher`] the
//! concrete prefetcher type is known at the match arm, so the per-access
//! train-predict-issue path inlines into the machine's demand loop.
//!
//! The enum covers every configuration the experiment registry constructs —
//! the seven baseline prefetchers, DSPatch, and the adjunct composites the
//! paper evaluates — and keeps [`AnyPrefetcher::Boxed`] as an escape hatch so
//! user-supplied `Box<dyn Prefetcher>` implementations (and every existing
//! call site) keep working unchanged.

use crate::composite::AdjunctPrefetcher;
use crate::{
    AmpmPrefetcher, BopPrefetcher, SmsPrefetcher, SppPrefetcher, StreamPrefetcher, StridePrefetcher,
};
use dspatch::DsPatch;
use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    LineAddr, MemoryAccess, NullPrefetcher, PrefetchContext, PrefetchSink, Prefetcher,
};

/// SPP with DSPatch as a lightweight adjunct (the paper's headline
/// configuration, including the Figure 19 ablation variants).
pub type DspatchPlusSpp = AdjunctPrefetcher<SppPrefetcher, DsPatch>;
/// SPP with BOP (or eBOP) as an adjunct (Figures 14 and 15).
pub type BopPlusSpp = AdjunctPrefetcher<SppPrefetcher, BopPrefetcher>;
/// SPP with iso-storage SMS as an adjunct (Figure 14).
pub type SmsPlusSpp = AdjunctPrefetcher<SppPrefetcher, SmsPrefetcher>;

/// Concrete constructors for the adjunct composites the paper evaluates.
/// These are the **single** construction table: [`crate::lineup`] boxes
/// them and the experiment registry's `build_any` wraps them in enum
/// variants, so the two forms cannot drift apart.
pub mod composites {
    use super::*;
    use crate::{BopConfig, SmsConfig, SppConfig};
    use dspatch::DsPatchConfig;

    /// DSPatch as a lightweight adjunct to SPP (the headline configuration).
    pub fn dspatch_plus_spp() -> DspatchPlusSpp {
        AdjunctPrefetcher::new(
            SppPrefetcher::new(SppConfig::default()),
            DsPatch::new(DsPatchConfig::default()),
        )
    }

    /// BOP as an adjunct to SPP (Figure 14).
    pub fn bop_plus_spp() -> BopPlusSpp {
        AdjunctPrefetcher::new(
            SppPrefetcher::new(SppConfig::default()),
            BopPrefetcher::new(BopConfig::default()),
        )
    }

    /// eBOP as an adjunct to SPP (Figure 15).
    pub fn ebop_plus_spp() -> BopPlusSpp {
        AdjunctPrefetcher::new(
            SppPrefetcher::new(SppConfig::default()),
            BopPrefetcher::new(BopConfig::enhanced()),
        )
    }

    /// 256-entry (iso-storage) SMS as an adjunct to SPP (Figure 14).
    pub fn sms_iso_plus_spp() -> SmsPlusSpp {
        AdjunctPrefetcher::new(
            SppPrefetcher::new(SppConfig::default()),
            SmsPrefetcher::new(SmsConfig::with_pht_entries(256)),
        )
    }

    /// The AlwaysCovP ablation of Figure 19, as an adjunct to SPP.
    pub fn dspatch_always_covp_plus_spp() -> DspatchPlusSpp {
        AdjunctPrefetcher::new(
            SppPrefetcher::new(SppConfig::default()),
            DsPatch::new(DsPatchConfig::default().always_covp()),
        )
    }

    /// The ModCovP ablation of Figure 19, as an adjunct to SPP.
    pub fn dspatch_mod_covp_plus_spp() -> DspatchPlusSpp {
        AdjunctPrefetcher::new(
            SppPrefetcher::new(SppConfig::default()),
            DsPatch::new(DsPatchConfig::default().mod_covp()),
        )
    }
}

/// Every prefetcher the registry can construct, as one statically-dispatched
/// value. See the [module docs](self) for why this exists.
pub enum AnyPrefetcher {
    /// The no-prefetching baseline.
    Null(NullPrefetcher),
    /// PC-based stride prefetcher.
    Stride(StridePrefetcher),
    /// Aggressive next-line streamer.
    Stream(StreamPrefetcher),
    /// Access Map Pattern Matching.
    Ampm(AmpmPrefetcher),
    /// Best Offset Prefetcher (BOP / eBOP).
    Bop(BopPrefetcher),
    /// Spatial Memory Streaming.
    Sms(SmsPrefetcher),
    /// Signature Pattern Prefetcher (SPP / eSPP).
    Spp(SppPrefetcher),
    /// Standalone DSPatch.
    Dspatch(Box<DsPatch>),
    /// DSPatch (or an ablation variant) as an adjunct to SPP.
    DspatchPlusSpp(Box<DspatchPlusSpp>),
    /// BOP/eBOP as an adjunct to SPP.
    BopPlusSpp(Box<BopPlusSpp>),
    /// Iso-storage SMS as an adjunct to SPP.
    SmsPlusSpp(Box<SmsPlusSpp>),
    /// Escape hatch for prefetchers outside the registry: dynamic dispatch,
    /// exactly as before the enum existed.
    Boxed(Box<dyn Prefetcher>),
}

/// Dispatches a method call to the concrete variant.
macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPrefetcher::Null($p) => $body,
            AnyPrefetcher::Stride($p) => $body,
            AnyPrefetcher::Stream($p) => $body,
            AnyPrefetcher::Ampm($p) => $body,
            AnyPrefetcher::Bop($p) => $body,
            AnyPrefetcher::Sms($p) => $body,
            AnyPrefetcher::Spp($p) => $body,
            AnyPrefetcher::Dspatch($p) => $body,
            AnyPrefetcher::DspatchPlusSpp($p) => $body,
            AnyPrefetcher::BopPlusSpp($p) => $body,
            AnyPrefetcher::SmsPlusSpp($p) => $body,
            AnyPrefetcher::Boxed($p) => $body,
        }
    };
}

impl Prefetcher for AnyPrefetcher {
    fn name(&self) -> &str {
        dispatch!(self, p => p.name())
    }

    #[inline]
    fn on_access(&mut self, access: &MemoryAccess, ctx: &PrefetchContext, out: &mut PrefetchSink) {
        dispatch!(self, p => p.on_access(access, ctx, out));
    }

    fn on_fill(&mut self, line: LineAddr, was_prefetch: bool) {
        dispatch!(self, p => p.on_fill(line, was_prefetch));
    }

    fn storage_bits(&self) -> u64 {
        dispatch!(self, p => p.storage_bits())
    }
}

impl SnapshotState for AnyPrefetcher {
    /// The variant's own tag — adjunct composites get a distinct tag per
    /// pairing so a checkpoint taken under one line-up never restores into
    /// another.
    fn snapshot_tag(&self) -> &'static str {
        match self {
            AnyPrefetcher::Null(_) => "null",
            AnyPrefetcher::Stride(_) => "stride",
            AnyPrefetcher::Stream(_) => "stream",
            AnyPrefetcher::Ampm(_) => "ampm",
            AnyPrefetcher::Bop(_) => "bop",
            AnyPrefetcher::Sms(_) => "sms",
            AnyPrefetcher::Spp(_) => "spp",
            AnyPrefetcher::Dspatch(_) => "dspatch",
            AnyPrefetcher::DspatchPlusSpp(_) => "dspatch+spp",
            AnyPrefetcher::BopPlusSpp(_) => "bop+spp",
            AnyPrefetcher::SmsPlusSpp(_) => "sms+spp",
            AnyPrefetcher::Boxed(_) => "boxed",
        }
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        // The `dispatch!` macro cannot serve here: the `Boxed` variant holds
        // a type-erased prefetcher with no snapshot support.
        match self {
            AnyPrefetcher::Null(p) => p.save_state(writer),
            AnyPrefetcher::Stride(p) => p.save_state(writer),
            AnyPrefetcher::Stream(p) => p.save_state(writer),
            AnyPrefetcher::Ampm(p) => p.save_state(writer),
            AnyPrefetcher::Bop(p) => p.save_state(writer),
            AnyPrefetcher::Sms(p) => p.save_state(writer),
            AnyPrefetcher::Spp(p) => p.save_state(writer),
            AnyPrefetcher::Dspatch(p) => p.save_state(writer),
            AnyPrefetcher::DspatchPlusSpp(p) => p.save_state(writer),
            AnyPrefetcher::BopPlusSpp(p) => p.save_state(writer),
            AnyPrefetcher::SmsPlusSpp(p) => p.save_state(writer),
            AnyPrefetcher::Boxed(_) => Err(SnapshotError::Unsupported(
                "type-erased Boxed prefetchers cannot be checkpointed".to_owned(),
            )),
        }
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        match self {
            AnyPrefetcher::Null(p) => p.load_state(reader),
            AnyPrefetcher::Stride(p) => p.load_state(reader),
            AnyPrefetcher::Stream(p) => p.load_state(reader),
            AnyPrefetcher::Ampm(p) => p.load_state(reader),
            AnyPrefetcher::Bop(p) => p.load_state(reader),
            AnyPrefetcher::Sms(p) => p.load_state(reader),
            AnyPrefetcher::Spp(p) => p.load_state(reader),
            AnyPrefetcher::Dspatch(p) => p.load_state(reader),
            AnyPrefetcher::DspatchPlusSpp(p) => p.load_state(reader),
            AnyPrefetcher::BopPlusSpp(p) => p.load_state(reader),
            AnyPrefetcher::SmsPlusSpp(p) => p.load_state(reader),
            AnyPrefetcher::Boxed(_) => Err(SnapshotError::Unsupported(
                "type-erased Boxed prefetchers cannot be checkpointed".to_owned(),
            )),
        }
    }
}

impl From<NullPrefetcher> for AnyPrefetcher {
    fn from(p: NullPrefetcher) -> Self {
        AnyPrefetcher::Null(p)
    }
}

impl From<StridePrefetcher> for AnyPrefetcher {
    fn from(p: StridePrefetcher) -> Self {
        AnyPrefetcher::Stride(p)
    }
}

impl From<StreamPrefetcher> for AnyPrefetcher {
    fn from(p: StreamPrefetcher) -> Self {
        AnyPrefetcher::Stream(p)
    }
}

impl From<AmpmPrefetcher> for AnyPrefetcher {
    fn from(p: AmpmPrefetcher) -> Self {
        AnyPrefetcher::Ampm(p)
    }
}

impl From<BopPrefetcher> for AnyPrefetcher {
    fn from(p: BopPrefetcher) -> Self {
        AnyPrefetcher::Bop(p)
    }
}

impl From<SmsPrefetcher> for AnyPrefetcher {
    fn from(p: SmsPrefetcher) -> Self {
        AnyPrefetcher::Sms(p)
    }
}

impl From<SppPrefetcher> for AnyPrefetcher {
    fn from(p: SppPrefetcher) -> Self {
        AnyPrefetcher::Spp(p)
    }
}

impl From<DsPatch> for AnyPrefetcher {
    fn from(p: DsPatch) -> Self {
        AnyPrefetcher::Dspatch(Box::new(p))
    }
}

impl From<DspatchPlusSpp> for AnyPrefetcher {
    fn from(p: DspatchPlusSpp) -> Self {
        AnyPrefetcher::DspatchPlusSpp(Box::new(p))
    }
}

impl From<BopPlusSpp> for AnyPrefetcher {
    fn from(p: BopPlusSpp) -> Self {
        AnyPrefetcher::BopPlusSpp(Box::new(p))
    }
}

impl From<SmsPlusSpp> for AnyPrefetcher {
    fn from(p: SmsPlusSpp) -> Self {
        AnyPrefetcher::SmsPlusSpp(Box::new(p))
    }
}

impl From<Box<dyn Prefetcher>> for AnyPrefetcher {
    fn from(p: Box<dyn Prefetcher>) -> Self {
        AnyPrefetcher::Boxed(p)
    }
}

impl std::fmt::Debug for AnyPrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AnyPrefetcher").field(&self.name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AmpmConfig, BopConfig, SmsConfig, SppConfig, StreamConfig, StrideConfig};
    use dspatch::DsPatchConfig;
    use dspatch_types::{AccessKind, Addr, Pc};

    fn every_static_variant() -> Vec<AnyPrefetcher> {
        vec![
            NullPrefetcher::new().into(),
            StridePrefetcher::new(StrideConfig::default()).into(),
            StreamPrefetcher::new(StreamConfig::default()).into(),
            AmpmPrefetcher::new(AmpmConfig::default()).into(),
            BopPrefetcher::new(BopConfig::default()).into(),
            SmsPrefetcher::new(SmsConfig::default()).into(),
            SppPrefetcher::new(SppConfig::default()).into(),
            DsPatch::new(DsPatchConfig::default()).into(),
            AdjunctPrefetcher::new(
                SppPrefetcher::new(SppConfig::default()),
                DsPatch::new(DsPatchConfig::default()),
            )
            .into(),
            AdjunctPrefetcher::new(
                SppPrefetcher::new(SppConfig::default()),
                BopPrefetcher::new(BopConfig::default()),
            )
            .into(),
            AdjunctPrefetcher::new(
                SppPrefetcher::new(SppConfig::default()),
                SmsPrefetcher::new(SmsConfig::with_pht_entries(256)),
            )
            .into(),
        ]
    }

    #[test]
    fn static_variants_report_names_and_storage() {
        for p in every_static_variant() {
            assert!(!p.name().is_empty());
            if !matches!(p, AnyPrefetcher::Null(_)) {
                assert!(p.storage_bits() > 0, "{} reports no storage", p.name());
            }
        }
    }

    #[test]
    fn enum_and_boxed_forms_issue_identical_requests() {
        // Drive a strided stream through the streamer both ways; the enum is
        // a transparent wrapper, so the request sequences must be identical.
        let mut direct = StreamPrefetcher::new(StreamConfig::default());
        let mut wrapped: AnyPrefetcher = StreamPrefetcher::new(StreamConfig::default()).into();
        let mut boxed: AnyPrefetcher = AnyPrefetcher::from(Box::new(StreamPrefetcher::new(
            StreamConfig::default(),
        )) as Box<dyn Prefetcher>);
        let ctx = PrefetchContext::default();
        for i in 0..256u64 {
            let access = MemoryAccess::new(Pc::new(7), Addr::new(i * 64), AccessKind::Load);
            let want = direct.collect_requests(&access, &ctx);
            assert_eq!(wrapped.collect_requests(&access, &ctx), want);
            assert_eq!(boxed.collect_requests(&access, &ctx), want);
        }
        assert!(matches!(boxed, AnyPrefetcher::Boxed(_)));
    }

    #[test]
    fn box_dyn_converts_to_the_escape_hatch() {
        let p: AnyPrefetcher = crate::lineup::dspatch_plus_spp().into();
        assert!(matches!(p, AnyPrefetcher::Boxed(_)));
        assert_eq!(p.name(), "DSPatch+SPP");
    }
}
