//! Spatial Memory Streaming (SMS).
//!
//! SMS (Somogyi et al., ISCA 2006) records, per spatial region (2 KB by
//! default), which cache lines a *spatial generation* touches, and stores the
//! resulting bit-pattern in a Pattern History Table (PHT) indexed by a
//! signature of the trigger access (PC + offset within the region). When the
//! same signature triggers a new region, the stored pattern is replayed as
//! prefetches.
//!
//! The paper stresses two SMS properties DSPatch improves on: the large PHT
//! needed for coverage (16 K entries ≈ 88 KB, Figure 5 shows performance
//! halving at 256 entries / 3.5 KB) and the absence of any accuracy or
//! bandwidth feedback.

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    FillLevel, MemoryAccess, Pc, PrefetchContext, PrefetchRequest, PrefetchSink, Prefetcher,
    CACHE_LINE_BYTES,
};
use serde::{Deserialize, Serialize};

/// Configuration of the [`SmsPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmsConfig {
    /// Spatial region size in bytes (paper Table 3: 2 KB).
    pub region_bytes: usize,
    /// Active-generation (accumulation) table entries (paper Table 3: 64).
    pub accumulation_entries: usize,
    /// Filter-table entries (paper Table 3: 32).
    pub filter_entries: usize,
    /// Pattern-history-table entries (paper Table 3: 16 K; Figure 5 sweeps
    /// 16 K / 4 K / 1 K / 256).
    pub pht_entries: usize,
    /// PHT associativity (paper: 16-way).
    pub pht_ways: usize,
}

impl Default for SmsConfig {
    fn default() -> Self {
        Self {
            region_bytes: 2048,
            accumulation_entries: 64,
            filter_entries: 32,
            pht_entries: 16 * 1024,
            pht_ways: 16,
        }
    }
}

impl SmsConfig {
    /// A configuration identical to the default except for the PHT size.
    /// Used by the Figure 5 storage sweep and the iso-storage comparison of
    /// Figure 14 (256 entries ≈ 3.5 KB).
    pub fn with_pht_entries(pht_entries: usize) -> Self {
        Self {
            pht_entries,
            pht_ways: 16.min(pht_entries.max(1)),
            ..Self::default()
        }
    }

    fn lines_per_region(&self) -> usize {
        self.region_bytes / CACHE_LINE_BYTES
    }
}

/// A region being observed (in the filter table or accumulation table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Generation {
    region: u64,
    trigger_pc: Pc,
    trigger_offset: usize,
    pattern: u64,
    accesses: u32,
    last_use: u64,
}

/// One PHT way: a stored signature → pattern correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PhtEntry {
    tag: u64,
    pattern: u64,
    last_use: u64,
}

/// Per-run statistics (observability only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmsStats {
    /// Accesses observed.
    pub accesses: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Generations written back to the PHT.
    pub trained_generations: u64,
    /// Trigger accesses that found a PHT entry.
    pub pht_hits: u64,
}

/// The Spatial Memory Streaming prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_prefetchers::{SmsConfig, SmsPrefetcher};
/// use dspatch_types::{AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, Prefetcher};
///
/// let mut sms = SmsPrefetcher::new(SmsConfig::default());
/// let ctx = PrefetchContext::default();
/// let mut issued = Vec::new();
/// // The same PC touches the same offsets in many regions.
/// for region in 0..128u64 {
///     for off in [0u64, 3, 6, 9] {
///         let a = MemoryAccess::new(Pc::new(0x77), Addr::new(region * 2048 + off * 64), AccessKind::Load);
///         issued.extend(sms.collect_requests(&a, &ctx));
///     }
/// }
/// assert!(!issued.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmsPrefetcher {
    config: SmsConfig,
    filter: Vec<Generation>,
    accumulation: Vec<Generation>,
    pht: Vec<Vec<PhtEntry>>,
    clock: u64,
    stats: SmsStats,
}

impl SmsPrefetcher {
    /// Creates an SMS instance.
    ///
    /// # Panics
    ///
    /// Panics if the region does not hold between 1 and 64 cache lines or if
    /// any table size is zero.
    pub fn new(config: SmsConfig) -> Self {
        let lines = config.region_bytes / CACHE_LINE_BYTES;
        assert!(
            (1..=64).contains(&lines),
            "region must hold 1..=64 cache lines, got {lines}"
        );
        assert!(
            config.accumulation_entries > 0,
            "accumulation table must be non-empty"
        );
        assert!(config.filter_entries > 0, "filter table must be non-empty");
        assert!(config.pht_entries > 0, "PHT must be non-empty");
        assert!(config.pht_ways > 0, "PHT associativity must be positive");
        let sets = (config.pht_entries / config.pht_ways).max(1);
        Self {
            filter: Vec::with_capacity(config.filter_entries),
            accumulation: Vec::with_capacity(config.accumulation_entries),
            // Build each bucket individually: cloning a Vec does not clone its
            // capacity, and the buckets must never reallocate on the access
            // hot path once built.
            pht: (0..sets)
                .map(|_| Vec::with_capacity(config.pht_ways))
                .collect(),
            clock: 0,
            stats: SmsStats::default(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SmsConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SmsStats {
        &self.stats
    }

    fn region_of(&self, access: &MemoryAccess) -> (u64, usize) {
        // Region sizes are powers of two (2 KB in every paper
        // configuration); shift-and-mask avoids two hardware divides on the
        // per-access path.
        let addr = access.addr.as_u64();
        let bytes = self.config.region_bytes as u64;
        if bytes.is_power_of_two() {
            let shift = bytes.trailing_zeros();
            let region = addr >> shift;
            let offset = ((addr & (bytes - 1)) as usize) / CACHE_LINE_BYTES;
            (region, offset)
        } else {
            let region = addr / bytes;
            let offset = ((addr % bytes) as usize) / CACHE_LINE_BYTES;
            (region, offset)
        }
    }

    fn signature(&self, pc: Pc, offset: usize) -> u64 {
        pc.folded_xor(32) << 6 | offset as u64
    }

    fn pht_set(&self, signature: u64) -> usize {
        // Multiply-shift hash: take the high half of the product so that
        // aligned signatures (which share trailing zero bits) still spread
        // across all sets.
        let mixed = signature.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.pht.len()
    }

    fn pht_lookup(&mut self, signature: u64) -> Option<u64> {
        let set = self.pht_set(signature);
        let clock = self.clock;
        let entry = self.pht[set].iter_mut().find(|e| e.tag == signature)?;
        entry.last_use = clock;
        Some(entry.pattern)
    }

    fn pht_store(&mut self, signature: u64, pattern: u64) {
        if pattern == 0 {
            return;
        }
        let set = self.pht_set(signature);
        let ways = self.config.pht_ways;
        let clock = self.clock;
        let bucket = &mut self.pht[set];
        if let Some(entry) = bucket.iter_mut().find(|e| e.tag == signature) {
            entry.pattern = pattern;
            entry.last_use = clock;
            return;
        }
        let entry = PhtEntry {
            tag: signature,
            pattern,
            last_use: clock,
        };
        if bucket.len() < ways {
            bucket.push(entry);
        } else {
            let victim = bucket
                .iter_mut()
                .min_by_key(|e| e.last_use)
                .expect("bucket is non-empty at capacity");
            *victim = entry;
        }
        self.stats.trained_generations += 1;
    }

    fn end_generation(&mut self, generation: Generation) {
        let signature = self.signature(generation.trigger_pc, generation.trigger_offset);
        self.pht_store(signature, generation.pattern);
    }

    fn find_generation(&mut self, region: u64) -> Option<&mut Generation> {
        if let Some(i) = self.accumulation.iter().position(|g| g.region == region) {
            return self.accumulation.get_mut(i);
        }
        if let Some(i) = self.filter.iter().position(|g| g.region == region) {
            // Second access to the region: promote from the filter table to
            // the accumulation table.
            let generation = self.filter.swap_remove(i);
            if self.accumulation.len() >= self.config.accumulation_entries {
                let victim = self
                    .accumulation
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, g)| g.last_use)
                    .map(|(i, _)| i)
                    .expect("accumulation table is non-empty at capacity");
                let evicted = self.accumulation.swap_remove(victim);
                self.end_generation(evicted);
            }
            self.accumulation.push(generation);
            let last = self.accumulation.len() - 1;
            return self.accumulation.get_mut(last);
        }
        None
    }

    fn start_generation(&mut self, region: u64, pc: Pc, offset: usize) {
        if self.filter.len() >= self.config.filter_entries {
            // Single-access regions age out of the filter table silently.
            let victim = self
                .filter
                .iter()
                .enumerate()
                .min_by_key(|(_, g)| g.last_use)
                .map(|(i, _)| i)
                .expect("filter table is non-empty at capacity");
            self.filter.swap_remove(victim);
        }
        self.filter.push(Generation {
            region,
            trigger_pc: pc,
            trigger_offset: offset,
            pattern: 1u64 << offset,
            accesses: 1,
            last_use: self.clock,
        });
    }

    fn lines_per_region(&self) -> usize {
        self.config.lines_per_region()
    }
}

impl Prefetcher for SmsPrefetcher {
    fn name(&self) -> &str {
        "SMS"
    }

    fn on_access(&mut self, access: &MemoryAccess, _ctx: &PrefetchContext, out: &mut PrefetchSink) {
        self.stats.accesses += 1;
        self.clock += 1;
        let (region, offset) = self.region_of(access);
        let clock = self.clock;

        if let Some(generation) = self.find_generation(region) {
            generation.pattern |= 1u64 << offset;
            generation.accesses += 1;
            generation.last_use = clock;
            return;
        }

        // Trigger access: start a new generation and replay any stored
        // pattern for this (PC, offset) signature.
        self.start_generation(region, access.pc, offset);
        let signature = self.signature(access.pc, offset);
        let Some(pattern) = self.pht_lookup(signature) else {
            return;
        };
        self.stats.pht_hits += 1;
        let region_base_line = region * self.lines_per_region() as u64;
        let issued_before = out.len();
        for i in (0..self.lines_per_region()).filter(|&i| i != offset && (pattern >> i) & 1 == 1) {
            out.push(
                PrefetchRequest::new(dspatch_types::LineAddr::new(region_base_line + i as u64))
                    .with_fill_level(FillLevel::L2),
            );
        }
        self.stats.prefetches += (out.len() - issued_before) as u64;
    }

    fn storage_bits(&self) -> u64 {
        let lines = self.lines_per_region() as u64;
        // PHT entry: tag (~38 b signature tag) + pattern + LRU (4 b).
        let pht_entry = 38 + lines + 4;
        // Generation entry: region tag (36 b) + PC (32 b) + offset (6 b) + pattern.
        let gen_entry = 36 + 32 + 6 + lines;
        self.config.pht_entries as u64 * pht_entry
            + (self.config.accumulation_entries + self.config.filter_entries) as u64 * gen_entry
    }
}

fn save_generations(generations: &[Generation], writer: &mut StateWriter) {
    writer.put_len(generations.len());
    for generation in generations {
        writer.put_u64(generation.region);
        writer.put_u64(generation.trigger_pc.as_u64());
        writer.put_usize(generation.trigger_offset);
        writer.put_u64(generation.pattern);
        writer.put_u32(generation.accesses);
        writer.put_u64(generation.last_use);
    }
}

fn load_generations(
    generations: &mut Vec<Generation>,
    reader: &mut StateReader<'_>,
) -> Result<(), SnapshotError> {
    let len = reader.get_len()?;
    generations.clear();
    for _ in 0..len {
        generations.push(Generation {
            region: reader.get_u64()?,
            trigger_pc: Pc::new(reader.get_u64()?),
            trigger_offset: reader.get_usize()?,
            pattern: reader.get_u64()?,
            accesses: reader.get_u32()?,
            last_use: reader.get_u64()?,
        });
    }
    Ok(())
}

impl SnapshotState for SmsPrefetcher {
    fn snapshot_tag(&self) -> &'static str {
        "sms"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        save_generations(&self.filter, writer);
        save_generations(&self.accumulation, writer);
        writer.put_len(self.pht.len());
        for bucket in &self.pht {
            writer.put_len(bucket.len());
            for entry in bucket {
                writer.put_u64(entry.tag);
                writer.put_u64(entry.pattern);
                writer.put_u64(entry.last_use);
            }
        }
        writer.put_u64(self.clock);
        writer.put_u64(self.stats.accesses);
        writer.put_u64(self.stats.prefetches);
        writer.put_u64(self.stats.trained_generations);
        writer.put_u64(self.stats.pht_hits);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        load_generations(&mut self.filter, reader)?;
        load_generations(&mut self.accumulation, reader)?;
        let sets = reader.get_len()?;
        if sets != self.pht.len() {
            return Err(SnapshotError::Invalid(format!(
                "PHT set count {} does not match configured {}",
                sets,
                self.pht.len()
            )));
        }
        // Refill the existing buckets in place: each was built with exactly
        // `pht_ways` capacity and must never reallocate on the access path.
        for bucket in &mut self.pht {
            let ways = reader.get_len()?;
            if ways > bucket.capacity() {
                return Err(SnapshotError::Invalid(format!(
                    "PHT bucket holds {} ways but only {} are configured",
                    ways,
                    bucket.capacity()
                )));
            }
            bucket.clear();
            for _ in 0..ways {
                bucket.push(PhtEntry {
                    tag: reader.get_u64()?,
                    pattern: reader.get_u64()?,
                    last_use: reader.get_u64()?,
                });
            }
        }
        self.clock = reader.get_u64()?;
        self.stats.accesses = reader.get_u64()?;
        self.stats.prefetches = reader.get_u64()?;
        self.stats.trained_generations = reader.get_u64()?;
        self.stats.pht_hits = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_types::{AccessKind, Addr};

    fn access(pc: u64, byte: u64) -> MemoryAccess {
        MemoryAccess::new(Pc::new(pc), Addr::new(byte), AccessKind::Load)
    }

    fn train_regions(
        sms: &mut SmsPrefetcher,
        pc: u64,
        regions: std::ops::Range<u64>,
        offsets: &[u64],
    ) -> Vec<PrefetchRequest> {
        let ctx = PrefetchContext::default();
        let mut out = Vec::new();
        for r in regions {
            for &o in offsets {
                out.extend(sms.collect_requests(&access(pc, r * 2048 + o * 64), &ctx));
            }
        }
        out
    }

    #[test]
    fn replays_learnt_pattern_on_matching_trigger() {
        let mut sms = SmsPrefetcher::new(SmsConfig::default());
        let reqs = train_regions(&mut sms, 0x42, 0..256, &[1, 4, 7, 10]);
        assert!(
            !reqs.is_empty(),
            "repeated (PC, offset) signatures must replay patterns"
        );
        assert!(sms.stats().pht_hits > 0);
        // Replayed prefetches must stay inside one 2 KB region (32 lines).
        for r in &reqs {
            let offset_in_region = r.line.as_u64() % 32;
            assert!(offset_in_region < 32);
        }
    }

    #[test]
    fn different_trigger_offset_is_a_different_signature() {
        let mut sms = SmsPrefetcher::new(SmsConfig::default());
        let _ = train_regions(&mut sms, 0x42, 0..128, &[1, 4, 7]);
        // Same PC but triggering at offset 9 (unseen signature): no replay.
        let ctx = PrefetchContext::default();
        let reqs = sms.collect_requests(&access(0x42, 100_000 * 2048 + 9 * 64), &ctx);
        assert!(reqs.is_empty());
    }

    #[test]
    fn pattern_accumulates_before_training() {
        let mut sms = SmsPrefetcher::new(SmsConfig::default());
        let ctx = PrefetchContext::default();
        // Touch a single region twice so it reaches the accumulation table,
        // then flood other regions so it is eventually evicted and trained.
        let _ = sms.collect_requests(&access(7, 0), &ctx);
        let _ = sms.collect_requests(&access(7, 5 * 64), &ctx);
        assert_eq!(sms.stats().trained_generations, 0);
        let _ = train_regions(&mut sms, 9, 10..200, &[0, 1]);
        assert!(sms.stats().trained_generations > 0);
    }

    #[test]
    fn small_pht_loses_signatures() {
        let offsets = [0u64, 3, 6, 9, 12];
        // Train many distinct PCs so a 256-entry PHT thrashes while 16 K holds them.
        let mut big = SmsPrefetcher::new(SmsConfig::default());
        let mut small = SmsPrefetcher::new(SmsConfig::with_pht_entries(64));
        let ctx = PrefetchContext::default();
        let mut big_hits = 0usize;
        let mut small_hits = 0usize;
        for round in 0..4u64 {
            for pc in 0..256u64 {
                let region = round * 100_000 + pc * 131;
                for &o in offsets.iter() {
                    let byte = region * 2048 + o * 64;
                    big_hits += big
                        .collect_requests(&access(0x1000 + pc * 4, byte), &ctx)
                        .len();
                    small_hits += small
                        .collect_requests(&access(0x1000 + pc * 4, byte), &ctx)
                        .len();
                }
            }
        }
        assert!(
            big_hits > small_hits,
            "a larger PHT must retain more signatures (16K: {big_hits}, 64: {small_hits})"
        );
    }

    #[test]
    fn storage_matches_figure5_scale() {
        let big = SmsPrefetcher::new(SmsConfig::default());
        let small = SmsPrefetcher::new(SmsConfig::with_pht_entries(256));
        let big_kb = big.storage_bits() as f64 / 8.0 / 1024.0;
        let small_kb = small.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            big_kb > 80.0 && big_kb < 200.0,
            "16K-entry SMS should be tens of KB, got {big_kb:.1}"
        );
        assert!(
            small_kb < 6.0,
            "256-entry SMS should be a few KB, got {small_kb:.1}"
        );
    }

    #[test]
    fn region_size_is_configurable() {
        let mut sms = SmsPrefetcher::new(SmsConfig {
            region_bytes: 4096,
            ..SmsConfig::default()
        });
        let reqs = train_regions(&mut sms, 0x11, 0..128, &[0, 40]);
        // Offsets up to 63 are representable in a 4 KB region.
        assert!(reqs.iter().all(|r| r.line.as_u64() % 64 < 64));
    }

    #[test]
    #[should_panic(expected = "region must hold")]
    fn oversized_region_is_rejected() {
        let _ = SmsPrefetcher::new(SmsConfig {
            region_bytes: 8192,
            ..SmsConfig::default()
        });
    }
}
