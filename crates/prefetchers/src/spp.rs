//! Signature Pattern Prefetcher (SPP).
//!
//! SPP (Kim et al., "Path confidence based lookahead prefetching", MICRO
//! 2016) is the state-of-the-art delta prefetcher the paper both compares
//! against and pairs DSPatch with. It learns, per 4 KB page, a 12-bit
//! *signature* compressing the last few cache-line deltas, and associates
//! each signature with up to four candidate next deltas and their
//! confidence counters. A recursive look-ahead walk multiplies confidences
//! along the predicted delta path and keeps prefetching while the cascaded
//! confidence stays above a threshold.
//!
//! The bandwidth-enhanced variant **eSPP** (paper, Section 2.1) lowers the
//! confidence threshold from 25 % to 12.5 % whenever less than half of the
//! DRAM bandwidth is being used.

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    BandwidthQuartile, FillLevel, MemoryAccess, PageAddr, PrefetchContext, PrefetchRequest,
    PrefetchSink, Prefetcher, LINES_PER_PAGE,
};
use serde::{Deserialize, Serialize};

/// Number of delta slots tracked per pattern-table entry.
const DELTAS_PER_ENTRY: usize = 4;
/// Width of the compressed delta-history signature, in bits.
const SIGNATURE_BITS: u32 = 12;
/// Maximum value of the 4-bit confidence counters.
const COUNTER_MAX: u8 = 15;

/// Configuration of the [`SppPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SppConfig {
    /// Signature-table entries (paper Table 3: 256).
    pub signature_table_entries: usize,
    /// Pattern-table entries (paper Table 3: 512).
    pub pattern_table_entries: usize,
    /// Global-history-register entries used to bootstrap new pages (paper
    /// Table 3: 8).
    pub ghr_entries: usize,
    /// Cascaded-confidence threshold below which look-ahead stops and no
    /// prefetch is issued (paper: 25 %).
    pub prefetch_threshold: f64,
    /// Threshold below which prefetches are demoted to fill only the LLC.
    pub llc_fill_threshold: f64,
    /// Maximum look-ahead depth (bounds the recursive walk).
    pub max_lookahead: usize,
    /// When set, the confidence threshold drops to
    /// `enhanced_prefetch_threshold` while DRAM bandwidth utilization is
    /// below 50 % — this is the paper's eSPP.
    pub bandwidth_enhanced: bool,
    /// The relaxed threshold used by eSPP (paper: 12.5 %).
    pub enhanced_prefetch_threshold: f64,
}

impl Default for SppConfig {
    fn default() -> Self {
        Self {
            signature_table_entries: 256,
            pattern_table_entries: 512,
            ghr_entries: 8,
            prefetch_threshold: 0.25,
            llc_fill_threshold: 0.50,
            max_lookahead: 8,
            bandwidth_enhanced: false,
            enhanced_prefetch_threshold: 0.125,
        }
    }
}

impl SppConfig {
    /// The eSPP configuration: identical hardware, bandwidth-aware threshold.
    pub fn enhanced() -> Self {
        Self {
            bandwidth_enhanced: true,
            ..Self::default()
        }
    }
}

/// Signature-table entry: per-page delta-history state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct StEntry {
    page: PageAddr,
    last_offset: usize,
    signature: u16,
    valid: bool,
}

impl Default for StEntry {
    fn default() -> Self {
        Self {
            page: PageAddr::new(0),
            last_offset: 0,
            signature: 0,
            valid: false,
        }
    }
}

/// One candidate delta and its confidence counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct DeltaSlot {
    delta: i8,
    counter: u8,
}

/// Pattern-table entry: candidate next deltas for one signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct PtEntry {
    c_sig: u8,
    deltas: [DeltaSlot; DELTAS_PER_ENTRY],
}

impl PtEntry {
    fn train(&mut self, delta: i8) {
        if self.c_sig == COUNTER_MAX {
            // Halve all counters to age out stale deltas, as in the original
            // SPP proposal.
            self.c_sig /= 2;
            for slot in &mut self.deltas {
                slot.counter /= 2;
            }
        }
        self.c_sig += 1;
        if let Some(slot) = self
            .deltas
            .iter_mut()
            .find(|s| s.counter > 0 && s.delta == delta)
        {
            slot.counter = (slot.counter + 1).min(COUNTER_MAX);
            return;
        }
        // Replace the weakest slot.
        let weakest = self
            .deltas
            .iter_mut()
            .min_by_key(|s| s.counter)
            .expect("entry has delta slots");
        *weakest = DeltaSlot { delta, counter: 1 };
    }

    fn candidates(&self) -> impl Iterator<Item = (i8, f64)> + '_ {
        let c_sig = self.c_sig.max(1);
        self.deltas
            .iter()
            .filter(|s| s.counter > 0)
            .map(move |s| (s.delta, f64::from(s.counter) / f64::from(c_sig)))
    }
}

/// Global-history-register entry used to seed signatures across page
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct GhrEntry {
    signature: u16,
    expected_offset: usize,
    delta: i8,
    valid: bool,
}

/// Per-run statistics kept by the prefetcher (observability only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SppStats {
    /// Accesses observed.
    pub accesses: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Look-ahead walks that reached the configured depth limit.
    pub lookahead_limited: u64,
    /// New pages bootstrapped from the GHR.
    pub ghr_hits: u64,
}

/// The Signature Pattern Prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_prefetchers::{SppConfig, SppPrefetcher};
/// use dspatch_types::{AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, Prefetcher};
///
/// let mut spp = SppPrefetcher::new(SppConfig::default());
/// let ctx = PrefetchContext::default();
/// let mut issued = Vec::new();
/// // A regular +1-line stream trains SPP quickly.
/// for page in 0..4u64 {
///     for off in 0..32u64 {
///         let a = MemoryAccess::new(Pc::new(3), Addr::new(page * 4096 + off * 64), AccessKind::Load);
///         issued.extend(spp.collect_requests(&a, &ctx));
///     }
/// }
/// assert!(!issued.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SppPrefetcher {
    config: SppConfig,
    signature_table: Vec<StEntry>,
    pattern_table: Vec<PtEntry>,
    ghr: Vec<GhrEntry>,
    stats: SppStats,
    name: &'static str,
}

impl SppPrefetcher {
    /// Creates an SPP (or eSPP, depending on the configuration) instance.
    ///
    /// # Panics
    ///
    /// Panics if a table size is zero or a threshold is outside `(0, 1]`.
    pub fn new(config: SppConfig) -> Self {
        assert!(
            config.signature_table_entries > 0,
            "signature table must be non-empty"
        );
        assert!(
            config.pattern_table_entries > 0,
            "pattern table must be non-empty"
        );
        assert!(
            config.prefetch_threshold > 0.0 && config.prefetch_threshold <= 1.0,
            "prefetch threshold must be in (0, 1]"
        );
        let name = if config.bandwidth_enhanced {
            "eSPP"
        } else {
            "SPP"
        };
        Self {
            signature_table: vec![StEntry::default(); config.signature_table_entries],
            pattern_table: vec![PtEntry::default(); config.pattern_table_entries],
            ghr: vec![GhrEntry::default(); config.ghr_entries.max(1)],
            stats: SppStats::default(),
            name,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SppConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SppStats {
        &self.stats
    }

    #[inline]
    fn st_index(&self, page: PageAddr) -> usize {
        // The table sizes are powers of two in every paper configuration;
        // masking avoids a hardware divide on the per-access path.
        let len = self.signature_table.len();
        if len.is_power_of_two() {
            (page.as_u64() as usize) & (len - 1)
        } else {
            (page.as_u64() as usize) % len
        }
    }

    #[inline]
    fn pt_index(&self, signature: u16) -> usize {
        let len = self.pattern_table.len();
        if len.is_power_of_two() {
            (signature as usize) & (len - 1)
        } else {
            (signature as usize) % len
        }
    }

    fn update_signature(signature: u16, delta: i8) -> u16 {
        let encoded = (delta as i16 & 0x7f) as u16; // 7-bit sign-magnitude-ish encoding
        ((signature << 3) ^ encoded) & ((1 << SIGNATURE_BITS) - 1)
    }

    fn active_threshold(&self, bandwidth: BandwidthQuartile) -> f64 {
        if self.config.bandwidth_enhanced && !bandwidth.is_above_half() {
            self.config.enhanced_prefetch_threshold
        } else {
            self.config.prefetch_threshold
        }
    }

    fn ghr_lookup(&mut self, offset: usize) -> Option<u16> {
        let hit = self
            .ghr
            .iter()
            .find(|e| e.valid && e.expected_offset == offset)
            .copied();
        hit.map(|entry| {
            self.stats.ghr_hits += 1;
            Self::update_signature(entry.signature, entry.delta)
        })
    }

    fn ghr_insert(&mut self, signature: u16, delta: i8, overflowed_offset: i64) {
        if !(0..LINES_PER_PAGE as i64 * 2).contains(&overflowed_offset) {
            return;
        }
        let expected = (overflowed_offset as usize) % LINES_PER_PAGE;
        // Fill an invalid slot first, otherwise replace hashed by signature.
        let index = self
            .ghr
            .iter()
            .position(|e| !e.valid)
            .unwrap_or((signature as usize) % self.ghr.len());
        self.ghr[index] = GhrEntry {
            signature,
            expected_offset: expected,
            delta,
            valid: true,
        };
    }

    fn lookahead(
        &mut self,
        page: PageAddr,
        start_offset: usize,
        start_signature: u16,
        threshold: f64,
        out: &mut PrefetchSink,
    ) {
        // One bit per page line; bit `start_offset` is pre-set so the
        // trigger line is never re-requested.
        let mut issued: u64 = 1 << start_offset;
        let mut signature = start_signature;
        let mut base = start_offset as i64;
        let mut confidence = 1.0;
        for depth in 0..self.config.max_lookahead {
            let entry = self.pattern_table[self.pt_index(signature)];
            if entry.c_sig == 0 {
                break;
            }
            let mut best: Option<(i8, f64)> = None;
            for (delta, local_conf) in entry.candidates() {
                let path_conf = confidence * local_conf;
                if path_conf >= threshold {
                    let target = base + i64::from(delta);
                    if (0..LINES_PER_PAGE as i64).contains(&target) {
                        let offset = target as usize;
                        if issued & (1 << offset) == 0 {
                            issued |= 1 << offset;
                            let fill = if path_conf >= self.config.llc_fill_threshold {
                                FillLevel::L2
                            } else {
                                FillLevel::Llc
                            };
                            out.push(
                                PrefetchRequest::new(page.line_at(offset)).with_fill_level(fill),
                            );
                        }
                    } else {
                        // The predicted path leaves the page: remember it in
                        // the GHR so the next page can pick the stream up.
                        self.ghr_insert(signature, delta, target);
                    }
                }
                if best.is_none_or(|(_, b)| path_conf > b) {
                    best = Some((delta, path_conf));
                }
            }
            let Some((best_delta, best_conf)) = best else {
                break;
            };
            if best_conf < threshold {
                break;
            }
            confidence = best_conf;
            base += i64::from(best_delta);
            signature = Self::update_signature(signature, best_delta);
            if depth + 1 == self.config.max_lookahead {
                self.stats.lookahead_limited += 1;
            }
        }
    }
}

impl Prefetcher for SppPrefetcher {
    fn name(&self) -> &str {
        self.name
    }

    fn on_access(&mut self, access: &MemoryAccess, ctx: &PrefetchContext, out: &mut PrefetchSink) {
        self.stats.accesses += 1;
        let page = access.page();
        let offset = access.page_line_offset();
        let threshold = self.active_threshold(ctx.bandwidth);
        let index = self.st_index(page);
        let entry = self.signature_table[index];

        let signature = if entry.valid && entry.page == page {
            let delta = offset as i64 - entry.last_offset as i64;
            if delta == 0 {
                return;
            }
            let delta = delta.clamp(i64::from(i8::MIN), i64::from(i8::MAX)) as i8;
            // Train the pattern table with the observed transition.
            let pt_index = self.pt_index(entry.signature);
            self.pattern_table[pt_index].train(delta);
            let new_signature = Self::update_signature(entry.signature, delta);
            self.signature_table[index] = StEntry {
                page,
                last_offset: offset,
                signature: new_signature,
                valid: true,
            };
            new_signature
        } else {
            // New page (or conflict eviction): bootstrap from the GHR when a
            // cross-page stream predicted this offset, otherwise start cold.
            let seeded = self.ghr_lookup(offset).unwrap_or(0);
            self.signature_table[index] = StEntry {
                page,
                last_offset: offset,
                signature: seeded,
                valid: true,
            };
            seeded
        };

        if signature == 0 {
            return;
        }
        let issued_before = out.len();
        self.lookahead(page, offset, signature, threshold, out);
        self.stats.prefetches += (out.len() - issued_before) as u64;
    }

    fn storage_bits(&self) -> u64 {
        let st_entry = 16 + 6 + u64::from(SIGNATURE_BITS) + 1; // tag, offset, signature, valid
        let pt_entry = 4 + DELTAS_PER_ENTRY as u64 * (7 + 4); // c_sig + 4 x (delta, counter)
        let ghr_entry = u64::from(SIGNATURE_BITS) + 6 + 7 + 1;
        self.signature_table.len() as u64 * st_entry
            + self.pattern_table.len() as u64 * pt_entry
            + self.ghr.len() as u64 * ghr_entry
            + 10 // global feedback counters (Table 3: "10b feedback")
    }
}

impl SnapshotState for SppPrefetcher {
    fn snapshot_tag(&self) -> &'static str {
        "spp"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.signature_table.len());
        for entry in &self.signature_table {
            writer.put_u64(entry.page.as_u64());
            writer.put_usize(entry.last_offset);
            writer.put_u16(entry.signature);
            writer.put_bool(entry.valid);
        }
        writer.put_len(self.pattern_table.len());
        for entry in &self.pattern_table {
            writer.put_u8(entry.c_sig);
            for slot in &entry.deltas {
                writer.put_i8(slot.delta);
                writer.put_u8(slot.counter);
            }
        }
        writer.put_len(self.ghr.len());
        for entry in &self.ghr {
            writer.put_u16(entry.signature);
            writer.put_usize(entry.expected_offset);
            writer.put_i8(entry.delta);
            writer.put_bool(entry.valid);
        }
        writer.put_u64(self.stats.accesses);
        writer.put_u64(self.stats.prefetches);
        writer.put_u64(self.stats.lookahead_limited);
        writer.put_u64(self.stats.ghr_hits);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let st_len = reader.get_len()?;
        if st_len != self.signature_table.len() {
            return Err(SnapshotError::Invalid(format!(
                "signature table length {} does not match configured {}",
                st_len,
                self.signature_table.len()
            )));
        }
        for entry in &mut self.signature_table {
            entry.page = PageAddr::new(reader.get_u64()?);
            entry.last_offset = reader.get_usize()?;
            entry.signature = reader.get_u16()?;
            entry.valid = reader.get_bool()?;
        }
        let pt_len = reader.get_len()?;
        if pt_len != self.pattern_table.len() {
            return Err(SnapshotError::Invalid(format!(
                "pattern table length {} does not match configured {}",
                pt_len,
                self.pattern_table.len()
            )));
        }
        for entry in &mut self.pattern_table {
            entry.c_sig = reader.get_u8()?;
            for slot in &mut entry.deltas {
                slot.delta = reader.get_i8()?;
                slot.counter = reader.get_u8()?;
            }
        }
        let ghr_len = reader.get_len()?;
        if ghr_len != self.ghr.len() {
            return Err(SnapshotError::Invalid(format!(
                "GHR length {} does not match configured {}",
                ghr_len,
                self.ghr.len()
            )));
        }
        for entry in &mut self.ghr {
            entry.signature = reader.get_u16()?;
            entry.expected_offset = reader.get_usize()?;
            entry.delta = reader.get_i8()?;
            entry.valid = reader.get_bool()?;
        }
        self.stats.accesses = reader.get_u64()?;
        self.stats.prefetches = reader.get_u64()?;
        self.stats.lookahead_limited = reader.get_u64()?;
        self.stats.ghr_hits = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_types::{AccessKind, Addr, Pc};

    fn access(page: u64, offset: u64) -> MemoryAccess {
        MemoryAccess::new(
            Pc::new(1),
            Addr::new(page * 4096 + offset * 64),
            AccessKind::Load,
        )
    }

    fn drive(spp: &mut SppPrefetcher, accesses: &[(u64, u64)]) -> Vec<PrefetchRequest> {
        let ctx = PrefetchContext::default();
        let mut out = Vec::new();
        for &(p, o) in accesses {
            out.extend(spp.collect_requests(&access(p, o), &ctx));
        }
        out
    }

    #[test]
    fn learns_unit_stride_stream() {
        let mut spp = SppPrefetcher::new(SppConfig::default());
        let stream: Vec<(u64, u64)> = (0..3)
            .flat_map(|p| (0..32u64).map(move |o| (p, o)))
            .collect();
        let reqs = drive(&mut spp, &stream);
        assert!(!reqs.is_empty(), "unit stride must train SPP");
        assert!(spp.stats().prefetches > 0);
    }

    #[test]
    fn learns_alternating_delta_pattern() {
        // Repeating +1,+3 deltas: offsets 0,1,4,5,8,9,... SPP's signature
        // captures the short history so both deltas are predicted.
        let mut spp = SppPrefetcher::new(SppConfig::default());
        let mut stream = Vec::new();
        for p in 0..6u64 {
            let mut off = 0u64;
            stream.push((p, off));
            loop {
                off += 1;
                if off >= 64 {
                    break;
                }
                stream.push((p, off));
                off += 3;
                if off >= 64 {
                    break;
                }
                stream.push((p, off));
            }
        }
        let reqs = drive(&mut spp, &stream);
        assert!(!reqs.is_empty());
    }

    #[test]
    fn prefetches_stay_within_the_page() {
        let mut spp = SppPrefetcher::new(SppConfig::default());
        let stream: Vec<(u64, u64)> = (0..4)
            .flat_map(|p| (0..64u64).step_by(4).map(move |o| (p, o)))
            .collect();
        let reqs = drive(&mut spp, &stream);
        for r in &reqs {
            let page = r.line.page().as_u64();
            assert!(page < 4, "prefetch escaped trained pages: {:?}", r.line);
        }
    }

    #[test]
    fn random_accesses_issue_few_prefetches() {
        let mut spp = SppPrefetcher::new(SppConfig::default());
        // A non-repeating, irregular offset sequence.
        let offsets = [3u64, 47, 12, 60, 1, 33, 20, 55, 9, 41, 27, 14];
        let stream: Vec<(u64, u64)> = (0..8)
            .flat_map(|p| {
                let rotate = (p * 5) as usize % offsets.len();
                offsets
                    .iter()
                    .cycle()
                    .skip(rotate)
                    .take(offsets.len())
                    .map(move |&o| (p, o))
                    .collect::<Vec<_>>()
            })
            .collect();
        let regular: Vec<(u64, u64)> = (100..108)
            .flat_map(|p| (0..12u64).map(move |o| (p, o)))
            .collect();
        let irregular_count = drive(&mut spp, &stream).len();
        let mut spp2 = SppPrefetcher::new(SppConfig::default());
        let regular_count = drive(&mut spp2, &regular).len();
        assert!(
            regular_count > irregular_count,
            "regular streams should out-prefetch irregular ones ({regular_count} vs {irregular_count})"
        );
    }

    #[test]
    fn espp_is_more_aggressive_at_low_bandwidth() {
        let train: Vec<(u64, u64)> = (0..4)
            .flat_map(|p| (0..32u64).step_by(2).map(move |o| (p, o)))
            .collect();
        let mut base = SppPrefetcher::new(SppConfig::default());
        let mut enhanced = SppPrefetcher::new(SppConfig::enhanced());
        let base_reqs = drive(&mut base, &train).len();
        let enhanced_reqs = drive(&mut enhanced, &train).len();
        assert!(
            enhanced_reqs >= base_reqs,
            "eSPP at low bandwidth must be at least as aggressive ({enhanced_reqs} vs {base_reqs})"
        );
    }

    #[test]
    fn espp_reverts_to_base_threshold_at_high_bandwidth() {
        let mut enhanced = SppPrefetcher::new(SppConfig::enhanced());
        assert_eq!(
            enhanced.active_threshold(BandwidthQuartile::Q3),
            enhanced.config.prefetch_threshold
        );
        assert_eq!(
            enhanced.active_threshold(BandwidthQuartile::Q0),
            enhanced.config.enhanced_prefetch_threshold
        );
        // Behavioural check: the threshold actually changes issued volume.
        let train: Vec<(u64, u64)> = (0..4)
            .flat_map(|p| (0..32u64).step_by(2).map(move |o| (p, o)))
            .collect();
        let ctx_high = PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q3);
        let mut high_total = 0;
        for &(p, o) in &train {
            high_total += enhanced.collect_requests(&access(p, o), &ctx_high).len();
        }
        let mut low = SppPrefetcher::new(SppConfig::enhanced());
        let ctx_low = PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q0);
        let mut low_total = 0;
        for &(p, o) in &train {
            low_total += low.collect_requests(&access(p, o), &ctx_low).len();
        }
        assert!(low_total >= high_total);
    }

    #[test]
    fn pattern_table_counters_saturate_and_age() {
        let mut entry = PtEntry::default();
        for _ in 0..100 {
            entry.train(1);
        }
        assert!(entry.c_sig <= COUNTER_MAX);
        assert!(entry.deltas.iter().all(|s| s.counter <= COUNTER_MAX));
        // A competing delta can still be learnt after aging.
        for _ in 0..20 {
            entry.train(-2);
        }
        assert!(entry.deltas.iter().any(|s| s.delta == -2 && s.counter > 0));
    }

    #[test]
    fn signature_update_is_deterministic_and_bounded() {
        let mut sig = 0u16;
        for d in [1i8, 1, -3, 7, 1] {
            sig = SppPrefetcher::update_signature(sig, d);
            assert!(sig < (1 << SIGNATURE_BITS));
        }
        assert_eq!(
            SppPrefetcher::update_signature(0x123, 5),
            SppPrefetcher::update_signature(0x123, 5)
        );
    }

    #[test]
    fn storage_is_in_the_single_digit_kilobyte_range() {
        let spp = SppPrefetcher::new(SppConfig::default());
        let kb = spp.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            kb > 2.0 && kb < 8.0,
            "SPP storage should be a few KB, got {kb:.1}"
        );
    }

    #[test]
    fn name_distinguishes_espp() {
        assert_eq!(SppPrefetcher::new(SppConfig::default()).name(), "SPP");
        assert_eq!(SppPrefetcher::new(SppConfig::enhanced()).name(), "eSPP");
    }
}
