//! Adjunct (composite) prefetching.
//!
//! The paper's headline configuration runs DSPatch as a *lightweight adjunct*
//! to SPP (Section 5.1): both prefetchers observe every L2 training access
//! and their prefetch candidates are merged, de-duplicated and issued
//! together. The same mechanism evaluates BOP+SPP and SMS+SPP (Figure 14).

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{LineAddr, MemoryAccess, PrefetchContext, PrefetchSink, Prefetcher};

/// Runs a primary prefetcher and an adjunct side by side, merging requests.
///
/// Duplicate lines are issued once; the primary prefetcher's request wins on
/// a conflict (e.g. differing fill levels), matching the paper's framing of
/// the adjunct as a coverage supplement to SPP.
///
/// # Example
///
/// ```
/// use dspatch_prefetchers::lineup;
/// use dspatch_types::{AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, Prefetcher};
///
/// let mut combined = lineup::dspatch_plus_spp();
/// let a = MemoryAccess::new(Pc::new(1), Addr::new(0x1000), AccessKind::Load);
/// let _ = combined.collect_requests(&a, &PrefetchContext::default());
/// assert_eq!(combined.name(), "DSPatch+SPP");
/// ```
#[derive(Debug)]
pub struct AdjunctPrefetcher<P, A> {
    primary: P,
    adjunct: A,
    name: String,
    /// Optional cap on merged requests per access (0 = unlimited).
    max_requests_per_access: usize,
}

impl<P: Prefetcher, A: Prefetcher> AdjunctPrefetcher<P, A> {
    /// Combines `primary` with `adjunct`. The display name becomes
    /// `"<adjunct>+<primary>"`, matching the paper's naming (DSPatch+SPP).
    pub fn new(primary: P, adjunct: A) -> Self {
        let name = format!("{}+{}", adjunct.name(), primary.name());
        Self {
            primary,
            adjunct,
            name,
            max_requests_per_access: 0,
        }
    }

    /// Caps the number of merged prefetch requests returned per access.
    pub fn with_request_cap(mut self, cap: usize) -> Self {
        self.max_requests_per_access = cap;
        self
    }

    /// The primary prefetcher.
    pub fn primary(&self) -> &P {
        &self.primary
    }

    /// The adjunct prefetcher.
    pub fn adjunct(&self) -> &A {
        &self.adjunct
    }
}

impl<P: Prefetcher, A: Prefetcher> Prefetcher for AdjunctPrefetcher<P, A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_access(&mut self, access: &MemoryAccess, ctx: &PrefetchContext, out: &mut PrefetchSink) {
        // The sink may already hold earlier requests from the caller; only
        // this access's slice takes part in dedup and capping. Both
        // prefetchers append directly to the caller's sink; the adjunct's
        // range is then deduplicated and compacted in place — no scratch
        // buffer, no second copy of the requests.
        let start = out.len();
        self.primary.on_access(access, ctx, out);
        let mid = out.len();
        self.adjunct.on_access(access, ctx, out);
        if out.len() > mid {
            // The spatial prefetchers this composite pairs (SPP, DSPatch,
            // SMS) only request lines inside the triggering 4 KB page, so
            // the primary's slice is almost always representable as one
            // 64-bit offset mask — turning the quadratic line-by-line dedup
            // into a bit test per candidate. Anything off-page (e.g. a BOP
            // adjunct crossing a page boundary) falls back to a scan over
            // the merged range.
            let trigger_page = access.line().as_u64() >> 6;
            let mut mask = 0u64;
            let mut single_page = true;
            for merged in &out.requests()[start..mid] {
                let line = merged.line.as_u64();
                if line >> 6 == trigger_page {
                    mask |= 1 << (line & 63);
                } else {
                    single_page = false;
                    break;
                }
            }
            let len = out.len();
            let requests = out.requests_mut();
            let mut write = mid;
            for read in mid..len {
                let request = requests[read];
                let line = request.line.as_u64();
                let duplicate = if single_page && line >> 6 == trigger_page {
                    let bit = 1u64 << (line & 63);
                    let seen = mask & bit != 0;
                    mask |= bit;
                    seen
                } else {
                    requests[start..write]
                        .iter()
                        .any(|merged| merged.line == request.line)
                };
                if !duplicate {
                    requests[write] = request;
                    write += 1;
                }
            }
            out.truncate(write);
        }
        if self.max_requests_per_access > 0 {
            out.truncate(start + self.max_requests_per_access);
        }
    }

    fn on_fill(&mut self, line: LineAddr, was_prefetch: bool) {
        self.primary.on_fill(line, was_prefetch);
        self.adjunct.on_fill(line, was_prefetch);
    }

    fn storage_bits(&self) -> u64 {
        self.primary.storage_bits() + self.adjunct.storage_bits()
    }
}

impl<P: SnapshotState, A: SnapshotState> SnapshotState for AdjunctPrefetcher<P, A> {
    fn snapshot_tag(&self) -> &'static str {
        "adjunct"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        // Tag each half so a restore into a differently-composed adjunct
        // fails loudly instead of reinterpreting bytes.
        writer.put_str(self.primary.snapshot_tag());
        self.primary.save_state(writer)?;
        writer.put_str(self.adjunct.snapshot_tag());
        self.adjunct.save_state(writer)?;
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let primary_tag = reader.get_str()?;
        if primary_tag != self.primary.snapshot_tag() {
            return Err(SnapshotError::Invalid(format!(
                "primary prefetcher tag {:?} does not match {:?}",
                primary_tag,
                self.primary.snapshot_tag()
            )));
        }
        self.primary.load_state(reader)?;
        let adjunct_tag = reader.get_str()?;
        if adjunct_tag != self.adjunct.snapshot_tag() {
            return Err(SnapshotError::Invalid(format!(
                "adjunct prefetcher tag {:?} does not match {:?}",
                adjunct_tag,
                self.adjunct.snapshot_tag()
            )));
        }
        self.adjunct.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineup;
    use crate::{SppConfig, SppPrefetcher, StreamConfig, StreamPrefetcher};
    use dspatch_types::{AccessKind, Addr, FillLevel, NullPrefetcher, Pc};

    fn access(byte: u64) -> MemoryAccess {
        MemoryAccess::new(Pc::new(5), Addr::new(byte), AccessKind::Load)
    }

    #[test]
    fn merges_and_deduplicates_requests() {
        // Two identical streamers produce identical requests; the composite
        // must not double-issue them.
        let mut combined = AdjunctPrefetcher::new(
            StreamPrefetcher::new(StreamConfig::default()),
            StreamPrefetcher::new(StreamConfig::default()),
        );
        let reqs = combined.collect_requests(&access(0x4000), &PrefetchContext::default());
        let mut lines: Vec<u64> = reqs.iter().map(|r| r.line.as_u64()).collect();
        let before = lines.len();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(before, lines.len());
        assert_eq!(before, 4, "dedup keeps exactly one copy of each line");
    }

    #[test]
    fn primary_request_wins_on_conflict() {
        let mut primary_only = StreamPrefetcher::new(StreamConfig {
            fill_level: FillLevel::L2,
            ..StreamConfig::default()
        });
        let expected = primary_only.collect_requests(&access(0x8000), &PrefetchContext::default());
        let mut combined = AdjunctPrefetcher::new(
            StreamPrefetcher::new(StreamConfig {
                fill_level: FillLevel::L2,
                ..StreamConfig::default()
            }),
            StreamPrefetcher::new(StreamConfig {
                fill_level: FillLevel::Llc,
                ..StreamConfig::default()
            }),
        );
        let merged = combined.collect_requests(&access(0x8000), &PrefetchContext::default());
        for (m, e) in merged.iter().zip(expected.iter()) {
            assert_eq!(m.fill_level, e.fill_level, "primary's fill level is kept");
        }
    }

    #[test]
    fn adjunct_adds_coverage_beyond_primary() {
        // A null primary contributes nothing; all coverage comes from the adjunct.
        let mut combined = AdjunctPrefetcher::new(
            NullPrefetcher::new(),
            StreamPrefetcher::new(StreamConfig::default()),
        );
        let reqs = combined.collect_requests(&access(0), &PrefetchContext::default());
        assert_eq!(reqs.len(), 4);
    }

    #[test]
    fn request_cap_is_enforced() {
        let mut combined = AdjunctPrefetcher::new(
            StreamPrefetcher::new(StreamConfig::default()),
            StreamPrefetcher::new(StreamConfig {
                degree: 8,
                ..StreamConfig::default()
            }),
        )
        .with_request_cap(3);
        let reqs = combined.collect_requests(&access(0), &PrefetchContext::default());
        assert!(reqs.len() <= 3);
    }

    #[test]
    fn storage_is_the_sum_of_both_parts() {
        let spp = SppPrefetcher::new(SppConfig::default());
        let spp_bits = spp.storage_bits();
        let stream = StreamPrefetcher::new(StreamConfig::default());
        let stream_bits = stream.storage_bits();
        let combined = AdjunctPrefetcher::new(spp, stream);
        assert_eq!(combined.storage_bits(), spp_bits + stream_bits);
    }

    #[test]
    fn lineup_names_match_the_paper() {
        assert_eq!(lineup::spp().name(), "SPP");
        assert_eq!(lineup::espp().name(), "eSPP");
        assert_eq!(lineup::bop().name(), "BOP");
        assert_eq!(lineup::ebop().name(), "eBOP");
        assert_eq!(lineup::sms().name(), "SMS");
        assert_eq!(lineup::dspatch().name(), "DSPatch");
        assert_eq!(lineup::dspatch_plus_spp().name(), "DSPatch+SPP");
        assert_eq!(lineup::bop_plus_spp().name(), "BOP+SPP");
        assert_eq!(lineup::ebop_plus_spp().name(), "eBOP+SPP");
        assert_eq!(lineup::sms_iso_plus_spp().name(), "SMS+SPP");
    }

    #[test]
    fn lineup_storage_ordering_matches_table3() {
        // BOP < DSPatch < SPP < SMS(16K) in storage.
        let bop = lineup::bop().storage_bits();
        let dspatch = lineup::dspatch().storage_bits();
        let spp = lineup::spp().storage_bits();
        let sms = lineup::sms().storage_bits();
        assert!(
            bop < dspatch,
            "BOP ({bop}) should be smaller than DSPatch ({dspatch})"
        );
        assert!(
            dspatch < spp,
            "DSPatch ({dspatch}) should be smaller than SPP ({spp})"
        );
        assert!(spp < sms, "SPP ({spp}) should be smaller than SMS ({sms})");
    }
}
