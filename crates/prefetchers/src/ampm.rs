//! Access Map Pattern Matching (AMPM).
//!
//! AMPM (Ishii et al., ICS 2009) keeps an access map — one state per cache
//! line — for a set of hot memory zones (4 KB pages here). On every access at
//! offset `o`, it tests candidate strides `k`: if `o - k` and `o - 2k` were
//! both accessed, the stream is assumed to continue and `o + k` is
//! prefetched. The paper evaluates AMPM but omits it from the plots because
//! it under-performs the other prefetchers in single-thread runs; it is
//! included here for completeness.

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    FillLevel, MemoryAccess, PageAddr, PrefetchContext, PrefetchRequest, PrefetchSink, Prefetcher,
    LINES_PER_PAGE,
};
use serde::{Deserialize, Serialize};

/// Configuration of the [`AmpmPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmpmConfig {
    /// Number of concurrently tracked zones (pages).
    pub tracked_zones: usize,
    /// Largest stride (in cache lines) tested by the pattern matcher.
    pub max_stride: usize,
    /// Maximum prefetches issued per access.
    pub degree: usize,
}

impl Default for AmpmConfig {
    fn default() -> Self {
        Self {
            tracked_zones: 64,
            max_stride: 16,
            degree: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Zone {
    page: PageAddr,
    accessed: u64,
    prefetched: u64,
    last_use: u64,
}

/// The Access Map Pattern Matching prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_prefetchers::{AmpmConfig, AmpmPrefetcher};
/// use dspatch_types::{AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, Prefetcher};
///
/// let mut ampm = AmpmPrefetcher::new(AmpmConfig::default());
/// let ctx = PrefetchContext::default();
/// let mut issued = Vec::new();
/// for off in 0..16u64 {
///     let a = MemoryAccess::new(Pc::new(1), Addr::new(off * 64), AccessKind::Load);
///     issued.extend(ampm.collect_requests(&a, &ctx));
/// }
/// assert!(!issued.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmpmPrefetcher {
    config: AmpmConfig,
    zones: Vec<Zone>,
    clock: u64,
}

impl AmpmPrefetcher {
    /// Creates an AMPM instance.
    ///
    /// # Panics
    ///
    /// Panics if any configuration parameter is zero or the stride exceeds
    /// the page.
    pub fn new(config: AmpmConfig) -> Self {
        assert!(config.tracked_zones > 0, "must track at least one zone");
        assert!(
            config.max_stride > 0 && config.max_stride < LINES_PER_PAGE,
            "stride must be in 1..64"
        );
        assert!(config.degree > 0, "degree must be positive");
        Self {
            config,
            zones: Vec::with_capacity(config.tracked_zones),
            clock: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AmpmConfig {
        &self.config
    }

    fn zone_index(&mut self, page: PageAddr) -> usize {
        if let Some(i) = self.zones.iter().position(|z| z.page == page) {
            return i;
        }
        let zone = Zone {
            page,
            accessed: 0,
            prefetched: 0,
            last_use: self.clock,
        };
        if self.zones.len() < self.config.tracked_zones {
            self.zones.push(zone);
            self.zones.len() - 1
        } else {
            let victim = self
                .zones
                .iter()
                .enumerate()
                .min_by_key(|(_, z)| z.last_use)
                .map(|(i, _)| i)
                .expect("zone table is non-empty at capacity");
            self.zones[victim] = zone;
            victim
        }
    }
}

impl Prefetcher for AmpmPrefetcher {
    fn name(&self) -> &str {
        "AMPM"
    }

    fn on_access(&mut self, access: &MemoryAccess, _ctx: &PrefetchContext, out: &mut PrefetchSink) {
        self.clock += 1;
        let page = access.page();
        let offset = access.page_line_offset() as i64;
        let index = self.zone_index(page);
        let clock = self.clock;
        let zone = &mut self.zones[index];
        zone.last_use = clock;
        zone.accessed |= 1u64 << offset;
        let accessed = zone.accessed;
        let already_prefetched = zone.prefetched;

        let mut issued = 0usize;
        let covered =
            |map: u64, o: i64| (0..LINES_PER_PAGE as i64).contains(&o) && (map >> o) & 1 == 1;
        for direction in [1i64, -1] {
            for k in 1..=self.config.max_stride as i64 {
                if issued >= self.config.degree {
                    break;
                }
                let stride = k * direction;
                let target = offset + stride;
                if !(0..LINES_PER_PAGE as i64).contains(&target) {
                    continue;
                }
                if covered(accessed, offset - stride)
                    && covered(accessed, offset - 2 * stride)
                    && !covered(accessed | already_prefetched, target)
                {
                    out.push(
                        PrefetchRequest::new(page.line_at(target as usize))
                            .with_fill_level(FillLevel::L2),
                    );
                    issued += 1;
                    self.zones[index].prefetched |= 1u64 << target;
                }
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        // Per zone: page tag (36 b) + 2 x 64-bit maps + LRU (8 b).
        self.config.tracked_zones as u64 * (36 + 128 + 8)
    }
}

impl SnapshotState for AmpmPrefetcher {
    fn snapshot_tag(&self) -> &'static str {
        "ampm"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.zones.len());
        for zone in &self.zones {
            writer.put_u64(zone.page.as_u64());
            writer.put_u64(zone.accessed);
            writer.put_u64(zone.prefetched);
            writer.put_u64(zone.last_use);
        }
        writer.put_u64(self.clock);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let len = reader.get_len()?;
        self.zones.clear();
        for _ in 0..len {
            self.zones.push(Zone {
                page: PageAddr::new(reader.get_u64()?),
                accessed: reader.get_u64()?,
                prefetched: reader.get_u64()?,
                last_use: reader.get_u64()?,
            });
        }
        self.clock = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_types::{AccessKind, Addr, Pc};

    fn access(page: u64, off: u64) -> MemoryAccess {
        MemoryAccess::new(
            Pc::new(1),
            Addr::new(page * 4096 + off * 64),
            AccessKind::Load,
        )
    }

    fn drive(ampm: &mut AmpmPrefetcher, seq: &[(u64, u64)]) -> Vec<PrefetchRequest> {
        let ctx = PrefetchContext::default();
        seq.iter()
            .flat_map(|&(p, o)| ampm.collect_requests(&access(p, o), &ctx))
            .collect()
    }

    #[test]
    fn unit_stride_stream_prefetches_ahead() {
        let mut ampm = AmpmPrefetcher::new(AmpmConfig::default());
        let seq: Vec<(u64, u64)> = (0..12u64).map(|o| (3, o)).collect();
        let reqs = drive(&mut ampm, &seq);
        assert!(!reqs.is_empty());
        assert!(reqs.iter().all(|r| r.line.page() == PageAddr::new(3)));
    }

    #[test]
    fn strided_stream_prefetches_with_matching_stride() {
        let mut ampm = AmpmPrefetcher::new(AmpmConfig::default());
        let seq: Vec<(u64, u64)> = (0..10u64).map(|i| (5, i * 4)).collect();
        let reqs = drive(&mut ampm, &seq);
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert_eq!(
                r.line.page_offset() % 4,
                0,
                "prefetches follow the +4 stride"
            );
        }
    }

    #[test]
    fn descending_stream_is_detected() {
        let mut ampm = AmpmPrefetcher::new(AmpmConfig::default());
        let seq: Vec<(u64, u64)> = (0..10u64).map(|i| (7, 60 - i * 2)).collect();
        let reqs = drive(&mut ampm, &seq);
        assert!(!reqs.is_empty());
        assert!(reqs.iter().any(|r| r.line.page_offset() < 44));
    }

    #[test]
    fn no_duplicate_prefetches_within_a_zone() {
        let mut ampm = AmpmPrefetcher::new(AmpmConfig::default());
        let seq: Vec<(u64, u64)> = (0..20u64).map(|o| (1, o)).collect();
        let reqs = drive(&mut ampm, &seq);
        let mut lines: Vec<u64> = reqs.iter().map(|r| r.line.as_u64()).collect();
        let before = lines.len();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(
            before,
            lines.len(),
            "each line is prefetched at most once per zone"
        );
    }

    #[test]
    fn degree_bounds_prefetches_per_access() {
        let mut ampm = AmpmPrefetcher::new(AmpmConfig {
            degree: 1,
            ..AmpmConfig::default()
        });
        let ctx = PrefetchContext::default();
        for o in 0..30u64 {
            let reqs = ampm.collect_requests(&access(2, o), &ctx);
            assert!(reqs.len() <= 1);
        }
    }

    #[test]
    fn zone_table_is_bounded() {
        let mut ampm = AmpmPrefetcher::new(AmpmConfig {
            tracked_zones: 8,
            ..AmpmConfig::default()
        });
        let seq: Vec<(u64, u64)> = (0..1000u64).map(|i| (i, i % 64)).collect();
        let _ = drive(&mut ampm, &seq);
        assert!(ampm.zones.len() <= 8);
    }
}
