//! Best Offset Prefetcher (BOP).
//!
//! BOP (Michaud, HPCA 2016) searches for the single best *global* cache-line
//! offset `d` such that, for recent accesses to line `X`, line `X - d` was
//! also accessed recently — meaning a prefetch of `X` issued at `X - d` would
//! have been timely. It evaluates candidate offsets round-robin against a
//! small Recent Requests (RR) table, scores them over a bounded learning
//! phase, and then prefetches `X + best_offset` (times the degree) for every
//! access.
//!
//! The bandwidth-enhanced **eBOP** variant (paper, Section 2.2) keeps a
//! default degree of one but raises it to two and four when more than 25 %
//! and 50 % of the DRAM bandwidth is unused.

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{
    BandwidthQuartile, FillLevel, LineAddr, MemoryAccess, PrefetchContext, PrefetchRequest,
    PrefetchSink, Prefetcher,
};
use serde::{Deserialize, Serialize};

/// Configuration of the [`BopPrefetcher`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BopConfig {
    /// Recent-requests table entries (paper Table 3: 256).
    pub rr_entries: usize,
    /// Offsets evaluated during learning. The paper notes 126 possible
    /// offsets (-63..=63) in a 4 KB page; the default candidate list covers
    /// that range.
    pub candidate_offsets: Vec<i64>,
    /// Maximum number of learning rounds per phase (paper Table 3: 100).
    pub max_rounds: u32,
    /// Score at which learning terminates early (paper Table 3: 31).
    pub max_score: u32,
    /// Minimum score for the winning offset to be used at all (paper
    /// Table 3: BadScore = 1).
    pub bad_score: u32,
    /// Base prefetch degree (paper: 2 for single-thread runs, 1 for
    /// multi-programmed runs).
    pub degree: usize,
    /// When set, the degree scales with DRAM bandwidth headroom (eBOP).
    pub bandwidth_enhanced: bool,
}

impl Default for BopConfig {
    fn default() -> Self {
        Self {
            rr_entries: 256,
            candidate_offsets: (1..=63).flat_map(|d| [d, -d]).collect(),
            max_rounds: 100,
            max_score: 31,
            bad_score: 1,
            degree: 2,
            bandwidth_enhanced: false,
        }
    }
}

impl BopConfig {
    /// The eBOP configuration: degree 1 by default, scaled up with
    /// bandwidth headroom.
    pub fn enhanced() -> Self {
        Self {
            degree: 1,
            bandwidth_enhanced: true,
            ..Self::default()
        }
    }

    /// Multi-programmed configuration (degree 1, per Table 3).
    pub fn multi_programmed() -> Self {
        Self {
            degree: 1,
            ..Self::default()
        }
    }
}

/// Per-run statistics (observability only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BopStats {
    /// Accesses observed.
    pub accesses: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Completed learning phases.
    pub phases: u64,
    /// Phases that ended with no offset good enough to prefetch with.
    pub disabled_phases: u64,
}

/// The Best Offset Prefetcher.
///
/// # Example
///
/// ```
/// use dspatch_prefetchers::{BopConfig, BopPrefetcher};
/// use dspatch_types::{AccessKind, Addr, MemoryAccess, Pc, PrefetchContext, Prefetcher};
///
/// let mut bop = BopPrefetcher::new(BopConfig::default());
/// let ctx = PrefetchContext::default();
/// let mut issued = 0;
/// // Alternating +1/+2 deltas: BOP discovers a global offset of 3 (or a
/// // multiple). One candidate offset is scored per access, so give the
/// // learning phase a few thousand accesses to converge.
/// for i in 0..8000u64 {
///     let line = (i / 2) * 3 + (i % 2);
///     let a = MemoryAccess::new(Pc::new(9), Addr::new(line * 64), AccessKind::Load);
///     issued += bop.collect_requests(&a, &ctx).len();
/// }
/// assert!(issued > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BopPrefetcher {
    config: BopConfig,
    rr_table: Vec<Option<LineAddr>>,
    scores: Vec<u32>,
    round: u32,
    candidate_index: usize,
    best_offset: Option<i64>,
    stats: BopStats,
    name: &'static str,
}

impl BopPrefetcher {
    /// Creates a BOP (or eBOP) instance.
    ///
    /// # Panics
    ///
    /// Panics if the RR table, candidate list or degree is empty/zero.
    pub fn new(config: BopConfig) -> Self {
        assert!(config.rr_entries > 0, "RR table must be non-empty");
        assert!(
            !config.candidate_offsets.is_empty(),
            "candidate offset list must be non-empty"
        );
        assert!(config.degree > 0, "prefetch degree must be positive");
        let name = if config.bandwidth_enhanced {
            "eBOP"
        } else {
            "BOP"
        };
        Self {
            rr_table: vec![None; config.rr_entries],
            scores: vec![0; config.candidate_offsets.len()],
            round: 0,
            candidate_index: 0,
            best_offset: None,
            stats: BopStats::default(),
            name,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BopConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &BopStats {
        &self.stats
    }

    /// The currently selected best offset, if learning has converged on one.
    pub fn best_offset(&self) -> Option<i64> {
        self.best_offset
    }

    fn rr_index(&self, line: LineAddr) -> usize {
        // Multiply-shift hash (high half) so that strided line addresses do
        // not collapse onto a few RR slots.
        let mixed = line.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.rr_table.len()
    }

    fn rr_contains(&self, line: LineAddr) -> bool {
        self.rr_table[self.rr_index(line)] == Some(line)
    }

    fn rr_insert(&mut self, line: LineAddr) {
        let index = self.rr_index(line);
        self.rr_table[index] = Some(line);
    }

    fn finish_phase(&mut self) {
        self.stats.phases += 1;
        let (best_index, best_score) = self
            .scores
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .expect("candidate list is non-empty");
        self.best_offset = if best_score > self.config.bad_score {
            Some(self.config.candidate_offsets[best_index])
        } else {
            self.stats.disabled_phases += 1;
            None
        };
        self.scores.iter_mut().for_each(|s| *s = 0);
        self.round = 0;
        self.candidate_index = 0;
    }

    fn learn(&mut self, line: LineAddr) {
        let offset = self.config.candidate_offsets[self.candidate_index];
        let test = line.offset_by(-offset);
        if self.rr_contains(test) {
            self.scores[self.candidate_index] += 1;
            if self.scores[self.candidate_index] >= self.config.max_score {
                self.finish_phase();
                return;
            }
        }
        self.candidate_index += 1;
        if self.candidate_index == self.config.candidate_offsets.len() {
            self.candidate_index = 0;
            self.round += 1;
            if self.round >= self.config.max_rounds {
                self.finish_phase();
            }
        }
    }

    fn effective_degree(&self, bandwidth: BandwidthQuartile) -> usize {
        if !self.config.bandwidth_enhanced {
            return self.config.degree;
        }
        // Headroom > 50 % (utilization below 50 %): degree 4.
        // Headroom > 25 % (utilization below 75 %): degree 2. Otherwise 1.
        match bandwidth {
            BandwidthQuartile::Q0 | BandwidthQuartile::Q1 => 4,
            BandwidthQuartile::Q2 => 2,
            BandwidthQuartile::Q3 => self.config.degree,
        }
    }
}

impl Prefetcher for BopPrefetcher {
    fn name(&self) -> &str {
        self.name
    }

    fn on_access(&mut self, access: &MemoryAccess, ctx: &PrefetchContext, out: &mut PrefetchSink) {
        self.stats.accesses += 1;
        let line = access.line();
        self.learn(line);
        self.rr_insert(line);
        let Some(offset) = self.best_offset else {
            return;
        };
        let degree = self.effective_degree(ctx.bandwidth);
        for k in 1..=degree as i64 {
            out.push(
                PrefetchRequest::new(line.offset_by(offset * k)).with_fill_level(FillLevel::L2),
            );
        }
        self.stats.prefetches += degree as u64;
    }

    fn storage_bits(&self) -> u64 {
        // RR table stores truncated line tags (12 b in the original
        // proposal); scores are 5-bit, plus round/candidate bookkeeping.
        let rr = self.config.rr_entries as u64 * 12;
        let scores = self.config.candidate_offsets.len() as u64 * 5;
        rr + scores + 32
    }
}

impl SnapshotState for BopPrefetcher {
    fn snapshot_tag(&self) -> &'static str {
        "bop"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.rr_table.len());
        for slot in &self.rr_table {
            writer.put_opt_u64(slot.map(LineAddr::as_u64));
        }
        writer.put_len(self.scores.len());
        for score in &self.scores {
            writer.put_u32(*score);
        }
        writer.put_u32(self.round);
        writer.put_usize(self.candidate_index);
        match self.best_offset {
            Some(offset) => {
                writer.put_bool(true);
                writer.put_i64(offset);
            }
            None => writer.put_bool(false),
        }
        writer.put_u64(self.stats.accesses);
        writer.put_u64(self.stats.prefetches);
        writer.put_u64(self.stats.phases);
        writer.put_u64(self.stats.disabled_phases);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let rr_len = reader.get_len()?;
        if rr_len != self.rr_table.len() {
            return Err(SnapshotError::Invalid(format!(
                "RR table length {} does not match configured {}",
                rr_len,
                self.rr_table.len()
            )));
        }
        for slot in &mut self.rr_table {
            *slot = reader.get_opt_u64()?.map(LineAddr::new);
        }
        let score_len = reader.get_len()?;
        if score_len != self.scores.len() {
            return Err(SnapshotError::Invalid(format!(
                "score table length {} does not match configured {}",
                score_len,
                self.scores.len()
            )));
        }
        for score in &mut self.scores {
            *score = reader.get_u32()?;
        }
        self.round = reader.get_u32()?;
        self.candidate_index = reader.get_usize()?;
        self.best_offset = if reader.get_bool()? {
            Some(reader.get_i64()?)
        } else {
            None
        };
        self.stats.accesses = reader.get_u64()?;
        self.stats.prefetches = reader.get_u64()?;
        self.stats.phases = reader.get_u64()?;
        self.stats.disabled_phases = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspatch_types::{AccessKind, Addr, Pc};

    fn access(line: u64) -> MemoryAccess {
        MemoryAccess::new(Pc::new(1), Addr::new(line * 64), AccessKind::Load)
    }

    fn drive(
        bop: &mut BopPrefetcher,
        lines: impl IntoIterator<Item = u64>,
    ) -> Vec<PrefetchRequest> {
        let ctx = PrefetchContext::default();
        let mut out = Vec::new();
        for l in lines {
            out.extend(bop.collect_requests(&access(l), &ctx));
        }
        out
    }

    #[test]
    fn discovers_the_global_offset_of_a_composite_stream() {
        // Positive-only candidate list (odd length) avoids phase-locking the
        // round-robin candidate pointer against the period-2 delta stream.
        let mut bop = BopPrefetcher::new(BopConfig {
            candidate_offsets: (1..=63).collect(),
            ..BopConfig::default()
        });
        // Local deltas alternate 1,2,1,2,... => the best global offset is 3.
        let lines = (0..4000u64).map(|i| (i / 2) * 3 + (i % 2));
        let reqs = drive(&mut bop, lines);
        assert!(!reqs.is_empty());
        assert_eq!(
            bop.best_offset(),
            Some(3),
            "BOP should converge on offset 3"
        );
    }

    #[test]
    fn discovers_negative_offsets() {
        let mut bop = BopPrefetcher::new(BopConfig::default());
        let lines = (0..4000u64).map(|i| 1_000_000 - i * 2);
        let _ = drive(&mut bop, lines);
        assert_eq!(bop.best_offset(), Some(-2));
    }

    #[test]
    fn stays_disabled_on_random_traffic() {
        let mut bop = BopPrefetcher::new(BopConfig::default());
        // A pseudo-random walk with no repeating offset relationship.
        let mut x = 12345u64;
        let lines = (0..20_000u64).map(move |_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 20
        });
        let reqs = drive(&mut bop, lines);
        // Learning phases complete but never converge on a strong offset;
        // only sporadic weak phases may fire.
        assert!(bop.stats().phases > 0);
        assert!(
            reqs.len() < 2_000,
            "random traffic should issue few prefetches, got {}",
            reqs.len()
        );
    }

    #[test]
    fn prefetch_degree_matches_configuration() {
        let mut bop = BopPrefetcher::new(BopConfig {
            degree: 3,
            ..BopConfig::default()
        });
        let _ = drive(&mut bop, 0..4000u64);
        let reqs = drive(&mut bop, [10_000, 10_001]);
        assert!(!reqs.is_empty());
        assert_eq!(reqs.len() % 3, 0, "each access issues `degree` prefetches");
    }

    #[test]
    fn ebop_scales_degree_with_bandwidth_headroom() {
        let mut bop = BopPrefetcher::new(BopConfig::enhanced());
        let _ = drive(&mut bop, 0..4000u64);
        assert!(bop.best_offset().is_some());
        let low = bop.collect_requests(
            &access(50_000),
            &PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q0),
        );
        let mid = bop.collect_requests(
            &access(60_000),
            &PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q2),
        );
        let high = bop.collect_requests(
            &access(70_000),
            &PrefetchContext::default().with_bandwidth(BandwidthQuartile::Q3),
        );
        assert_eq!(low.len(), 4);
        assert_eq!(mid.len(), 2);
        assert_eq!(high.len(), 1);
    }

    #[test]
    fn learning_restarts_after_each_phase() {
        let mut bop = BopPrefetcher::new(BopConfig::default());
        let _ = drive(&mut bop, (0..4000u64).map(|i| i * 2));
        let first = bop.best_offset();
        assert!(first.is_some());
        // Switch the stream: after enough accesses a new phase adapts the offset.
        let _ = drive(&mut bop, (0..8000u64).map(|i| 10_000_000 + i * 5));
        let second = bop.best_offset();
        assert!(second.is_some());
        assert_ne!(first, second, "BOP must adapt to the new dominant offset");
    }

    #[test]
    fn storage_is_about_1_3_kb() {
        let bop = BopPrefetcher::new(BopConfig::default());
        let kb = bop.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (0.4..2.0).contains(&kb),
            "BOP storage should be ~1 KB, got {kb:.2}"
        );
    }

    #[test]
    fn name_distinguishes_ebop() {
        assert_eq!(BopPrefetcher::new(BopConfig::default()).name(), "BOP");
        assert_eq!(BopPrefetcher::new(BopConfig::enhanced()).name(), "eBOP");
    }
}
