//! Baseline hardware prefetchers and composite (adjunct) prefetchers used to
//! evaluate DSPatch.
//!
//! The DSPatch paper compares against the state of the art circa 2019:
//!
//! * [`StridePrefetcher`] — the PC-based stride prefetcher at the L1 of the
//!   baseline configuration (Table 2).
//! * [`SppPrefetcher`] — the Signature Pattern Prefetcher (Kim et al., MICRO
//!   2016), the state-of-the-art delta prefetcher, plus its
//!   bandwidth-enhanced variant eSPP (Section 2.1).
//! * [`BopPrefetcher`] — the Best Offset Prefetcher (Michaud, HPCA 2016) and
//!   its bandwidth-enhanced eBOP variant (Section 2.2).
//! * [`SmsPrefetcher`] — Spatial Memory Streaming (Somogyi et al., ISCA
//!   2006) with a configurable pattern-history-table size (Figure 5).
//! * [`AmpmPrefetcher`] — Access Map Pattern Matching (Ishii et al., 2009),
//!   evaluated but not plotted by the paper.
//! * [`StreamPrefetcher`] — an aggressive, fairly inaccurate streaming
//!   prefetcher used for the appendix cache-pollution study (Figure 20).
//! * [`AdjunctPrefetcher`] — runs a primary prefetcher and a lightweight
//!   adjunct side by side and merges their requests (DSPatch+SPP, BOP+SPP,
//!   SMS+SPP; Sections 5.1 and 5.2).
//!
//! Every prefetcher implements [`dspatch_types::Prefetcher`] and reports its
//! hardware budget through `storage_bits`, reproducing Table 3.

pub mod ampm;
pub mod any;
pub mod bop;
pub mod composite;
pub mod sms;
pub mod spp;
pub mod stream;
pub mod stride;

pub use ampm::{AmpmConfig, AmpmPrefetcher};
pub use any::AnyPrefetcher;
pub use bop::{BopConfig, BopPrefetcher};
pub use composite::AdjunctPrefetcher;
pub use sms::{SmsConfig, SmsPrefetcher};
pub use spp::{SppConfig, SppPrefetcher};
pub use stream::{StreamConfig, StreamPrefetcher};
pub use stride::{StrideConfig, StridePrefetcher};

use dspatch::{DsPatch, DsPatchConfig};
use dspatch_types::Prefetcher;

/// Convenience constructors for the exact prefetcher line-up the paper
/// evaluates (Figures 12, 14, 15, 17, 18).
pub mod lineup {
    use super::*;

    /// Standalone SPP with the paper's Table 3 configuration.
    pub fn spp() -> Box<dyn Prefetcher> {
        Box::new(SppPrefetcher::new(SppConfig::default()))
    }

    /// Bandwidth-enhanced SPP (eSPP, Section 2.1).
    pub fn espp() -> Box<dyn Prefetcher> {
        Box::new(SppPrefetcher::new(SppConfig::enhanced()))
    }

    /// Standalone BOP with the paper's Table 3 configuration.
    pub fn bop() -> Box<dyn Prefetcher> {
        Box::new(BopPrefetcher::new(BopConfig::default()))
    }

    /// Bandwidth-enhanced BOP (eBOP, Section 2.2).
    pub fn ebop() -> Box<dyn Prefetcher> {
        Box::new(BopPrefetcher::new(BopConfig::enhanced()))
    }

    /// Standalone SMS with a 16K-entry pattern history table (88 KB).
    pub fn sms() -> Box<dyn Prefetcher> {
        Box::new(SmsPrefetcher::new(SmsConfig::default()))
    }

    /// SMS constrained to 256 PHT entries — iso-storage with DSPatch
    /// (Figures 5 and 14).
    pub fn sms_iso_storage() -> Box<dyn Prefetcher> {
        Box::new(SmsPrefetcher::new(SmsConfig::with_pht_entries(256)))
    }

    /// Standalone DSPatch with the paper's default configuration.
    pub fn dspatch() -> Box<dyn Prefetcher> {
        Box::new(DsPatch::new(DsPatchConfig::default()))
    }

    /// DSPatch as a lightweight adjunct to SPP (the paper's headline
    /// configuration).
    pub fn dspatch_plus_spp() -> Box<dyn Prefetcher> {
        Box::new(crate::any::composites::dspatch_plus_spp())
    }

    /// BOP as an adjunct to SPP (Figure 14).
    pub fn bop_plus_spp() -> Box<dyn Prefetcher> {
        Box::new(crate::any::composites::bop_plus_spp())
    }

    /// eBOP as an adjunct to SPP (Figure 15).
    pub fn ebop_plus_spp() -> Box<dyn Prefetcher> {
        Box::new(crate::any::composites::ebop_plus_spp())
    }

    /// 256-entry SMS as an adjunct to SPP — iso-storage with DSPatch
    /// (Figures 5 and 14).
    pub fn sms_iso_plus_spp() -> Box<dyn Prefetcher> {
        Box::new(crate::any::composites::sms_iso_plus_spp())
    }

    /// The DSPatch ablation variants of Figure 19.
    pub fn dspatch_always_covp_plus_spp() -> Box<dyn Prefetcher> {
        Box::new(crate::any::composites::dspatch_always_covp_plus_spp())
    }

    /// The ModCovP ablation variant of Figure 19, as an adjunct to SPP.
    pub fn dspatch_mod_covp_plus_spp() -> Box<dyn Prefetcher> {
        Box::new(crate::any::composites::dspatch_mod_covp_plus_spp())
    }
}
