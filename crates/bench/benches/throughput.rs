//! Benchmarks raw simulator throughput on the fixed perf-snapshot scenarios
//! (see `dspatch_harness::perf` and the `perf_snapshot` binary, which emits
//! `BENCH_sim_throughput.json` from the same workloads), plus one benchmark
//! per registry prefetcher so wins and regressions attribute to individual
//! components rather than to the machine model.

use criterion::{criterion_group, criterion_main, Criterion};
use dspatch_harness::perf::{
    attribution_lineup, run_baseline_snapshot, run_four_core_snapshot, run_prefetcher_snapshot,
    run_single_thread_snapshot,
};

const BENCH_ACCESSES: usize = 24_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("baseline_single_thread", |b| {
        b.iter(|| run_baseline_snapshot(BENCH_ACCESSES).cycles)
    });
    group.bench_function("dspatch_spp_single_thread", |b| {
        b.iter(|| run_single_thread_snapshot(BENCH_ACCESSES).cycles)
    });
    group.bench_function("four_core", |b| {
        b.iter(|| run_four_core_snapshot(BENCH_ACCESSES / 4).cycles)
    });
    group.finish();

    let mut group = c.benchmark_group("sim_throughput_per_prefetcher");
    group.sample_size(10);
    for kind in attribution_lineup() {
        group.bench_function(kind.spec_name(), |b| {
            b.iter(|| run_prefetcher_snapshot(kind, BENCH_ACCESSES).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
