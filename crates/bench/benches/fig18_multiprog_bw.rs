//! Regenerates Figure 18: multi-programmed mixes vs DRAM bandwidth at reduced scale and benchmarks its unit of work.

use criterion::{criterion_group, criterion_main, Criterion};
use dspatch_bench::{bench_scale, figures, measured_scale, runner, PrefetcherKind};
use dspatch_harness::runner::run_workload;
use dspatch_sim::SystemConfig;
use dspatch_trace::workloads::suite;

#[allow(unused_variables)]
fn regenerate_figure() {
    let scale = bench_scale();
    let table = figures::FigureId::Fig18.run(&scale);
    println!("\n{table}");
}

fn bench(c: &mut Criterion) {
    // Regenerate and print the figure data once.
    regenerate_figure();
    // Criterion-measured unit of work: one workload simulated with the
    // paper's headline prefetcher at a tiny scale.
    let scale = measured_scale();
    let workloads = scale.select_workloads(suite());
    let config = SystemConfig::single_thread();
    let _ = &runner::geomean(&[1.0]);
    let mut group = c.benchmark_group("fig18_multiprog_bw");
    group.sample_size(10);
    group.bench_function("dspatch_plus_spp_single_workload", |b| {
        b.iter(|| {
            run_workload(
                &workloads[0],
                PrefetcherKind::DspatchPlusSpp,
                &config,
                &scale,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
