//! Shared helpers for the per-figure Criterion benchmark targets.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper at a reduced [`RunScale`] through the named-figure registry
//! ([`figures::FigureId`], which routes through the shared campaign engine)
//! and then registers a Criterion measurement of the experiment's core unit
//! of work, so `cargo bench` both reproduces the evaluation data and tracks
//! the simulator's performance over time.

pub use dspatch_harness::runner::{PrefetcherKind, RunScale};
pub use dspatch_harness::{experiments, figures, runner, Table};

// Bench targets that post-process snapshot documents go through the same
// unified result layer as the rest of the workspace: `throughput_rows`
// flattens a `BENCH_sim_throughput.json` document, `host_cpus` is the
// per-host stamp every snapshot records, and the analytics engine turns
// either into queryable columns (see `perf::regression_gate` for the
// committed-vs-measured trend the CI gate runs).
pub use dspatch_harness::analytics::{self, ColumnarView, Query};
pub use dspatch_harness::perf::{host_cpus, throughput_rows};

/// The scale used by the benchmark targets: one workload per category and
/// short traces, so the full set of figures regenerates in minutes. Worker
/// threads follow the machine (`available_parallelism`).
pub fn bench_scale() -> RunScale {
    RunScale {
        accesses_per_workload: 4_000,
        workloads_per_category: 1,
        mixes: 2,
        threads: dspatch_harness::runner::default_threads(),
        sim_workers: 0,
        sampling: None,
    }
}

/// A smaller scale used for the Criterion-measured unit of work.
pub fn measured_scale() -> RunScale {
    RunScale {
        accesses_per_workload: 1_500,
        workloads_per_category: 1,
        mixes: 1,
        threads: 1,
        sim_workers: 0,
        sampling: None,
    }
}
