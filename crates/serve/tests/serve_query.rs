//! `GET /query` and the `/results` compat shim over a **preloaded** store:
//! duplicate-row semantics ("newest code_version wins unless
//! `all_versions=1`"), the shared parameter grammar, and byte parity
//! between the served body and the analytics engine the CLI calls.
//!
//! The store is written directly with two code versions of the same cell —
//! something a live server can never produce in one process — before the
//! server boots on the directory.

use dspatch_harness::analytics::{self, ColumnarView, Query, QueryFormat};
use dspatch_harness::{Json, ResultRow, ResultStore};
use dspatch_serve::{http_request, Server, ServerConfig};
use dspatch_sim::{
    CacheStats, CoreResult, DramStats, PollutionBreakdown, PrefetchAccounting, SimResult,
};
use std::net::SocketAddr;
use std::path::PathBuf;

fn sim(ipc_milli: u64) -> SimResult {
    SimResult {
        cores: vec![CoreResult {
            workload: "w".to_owned(),
            prefetcher: "p".to_owned(),
            instructions: ipc_milli,
            finish_cycle: 1000,
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            accounting: PrefetchAccounting {
                l2_demand_accesses: 100,
                covered: 40,
                uncovered: 60,
                prefetches_issued: 50,
                prefetches_used: 40,
                prefetches_unused: 10,
            },
        }],
        llc: CacheStats::default(),
        dram: DramStats::default(),
        pollution: PollutionBreakdown::default(),
        cycles: 1000,
        cache_geometry: Vec::new(),
        sampling: None,
    }
}

fn row(workload: &str, prefetcher: &str, version: &str, ipc_milli: u64) -> ResultRow {
    let mut row = ResultRow::new(
        format!("fp|{workload}|{prefetcher}|{version}"),
        "query smoke".to_owned(),
        workload.to_owned(),
        prefetcher.to_owned(),
        "1T".to_owned(),
        1000,
        String::new(),
        sim(ipc_milli),
    );
    row.code_version = version.to_owned();
    row
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dspatch-serve-{tag}-{}", std::process::id()));
    drop(std::fs::remove_dir_all(&dir));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = http_request(addr, "GET", path, None).expect("request");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, text) = get(addr, path);
    let json = Json::parse(&text).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}\n{text}"));
    (status, json)
}

#[test]
fn query_engine_and_results_shim_share_version_semantics() {
    let store_dir = temp_dir("query");
    {
        let mut store = ResultStore::open(&store_dir).expect("store opens");
        // The same SPP cell simulated by two releases, plus its baseline.
        for row in [
            row("alpha", "Baseline", "0.1.0", 1000),
            row("alpha", "SPP", "0.0.9", 1200),
            row("alpha", "SPP", "0.1.0", 1500),
        ] {
            assert!(store.insert(&row).expect("insert"));
        }
    }
    let server = Server::start(&ServerConfig {
        store_dir: store_dir.clone(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let matched = |path: &str| {
        let (status, json) = get_json(addr, path);
        assert_eq!(status, 200, "query {path}");
        json.get("matched").and_then(Json::as_u64).expect("matched") as usize
    };

    // Newest code_version wins by default; history on request.
    assert_eq!(matched("/results"), 2, "superseded 0.0.9 row hidden");
    assert_eq!(matched("/results?all_versions=1"), 3);
    assert_eq!(matched("/results?prefetcher=SPP"), 1);
    assert_eq!(matched("/results?prefetcher=SPP&all_versions=1"), 2);

    // The surviving SPP row must be the 0.1.0 one.
    let (_, json) = get_json(addr, "/results?prefetcher=SPP");
    let survivor = match json.get("results") {
        Some(Json::Arr(rows)) => rows.first().cloned().expect("one row"),
        _ => panic!("results array"),
    };
    assert_eq!(
        survivor.get("code_version").and_then(Json::as_str),
        Some("0.1.0")
    );

    // Unknown /results parameters are a 400, not silently ignored.
    let (status, _) = get(addr, "/results?bogus=1");
    assert_eq!(status, 400);

    // /query speaks the full grammar (where=, trend=), applying the same
    // version semantics: a trend keeps every version by construction.
    assert_eq!(matched("/query?where=prefetcher%3DSPP&all_versions=1"), 2);
    let (status, json) = get_json(addr, "/query?group_by=prefetcher&trend=ipc");
    assert_eq!(status, 200);
    let rows = match json.get("rows") {
        Some(Json::Arr(rows)) => rows.clone(),
        _ => panic!("rows array"),
    };
    // Baseline@0.1.0, SPP@0.0.9, SPP@0.1.0 — versions ascending per group.
    assert_eq!(rows.len(), 3);
    assert_eq!(
        rows[1].get("code_version").and_then(Json::as_str),
        Some("0.0.9")
    );
    assert_eq!(rows[1].get("mean_ipc").and_then(Json::as_f64), Some(1.2));
    assert_eq!(
        rows[2].get("code_version").and_then(Json::as_str),
        Some("0.1.0")
    );

    // Bad grammar is the client's fault: 400 with the spec error class.
    let (status, json) = get_json(addr, "/query?agg=median:ipc");
    assert_eq!(status, 400);
    assert_eq!(json.get("class").and_then(Json::as_str), Some("spec"));

    // Byte parity with the engine the CLI drives: the served body equals
    // a local ColumnarView::run + render of the same store and query.
    let params = vec![
        ("group_by".to_owned(), "prefetcher".to_owned()),
        ("agg".to_owned(), "mean:ipc".to_owned()),
        ("all_versions".to_owned(), "1".to_owned()),
    ];
    let query = Query::from_params(&params).expect("query parses");
    let store = ResultStore::open(&store_dir).expect("store reopens");
    let local = analytics::render(
        &ColumnarView::from_store(&store).run(&query).expect("runs"),
        QueryFormat::Json,
    );
    let (status, served) = get(
        addr,
        "/query?group_by=prefetcher&agg=mean%3Aipc&all_versions=1&format=json",
    );
    assert_eq!(status, 200);
    assert_eq!(served, local, "served bytes == engine bytes");

    server.begin_drain();
    server.wait();
}
