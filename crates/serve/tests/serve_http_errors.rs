//! Hostile-input and error-path behavior of the service over real TCP:
//! typed 400s from the hardened JSON parser, 404/405 routing, the request
//! body cap, deterministic 429 rate limiting, `/healthz`, and the drain
//! rejection. No test here runs a simulation.

use dspatch_harness::Json;
use dspatch_serve::{http_request, ManualClock, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dspatch-serve-{tag}-{}", std::process::id()));
    drop(std::fs::remove_dir_all(&dir));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn body_json(body: &[u8]) -> Json {
    Json::parse(std::str::from_utf8(body).expect("utf-8")).expect("JSON body")
}

#[test]
fn routing_parsing_and_drain_errors_are_typed() {
    let server = Server::start(&ServerConfig {
        store_dir: temp_dir("errors"),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // Liveness.
    let (status, _, body) = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    assert_eq!(
        body_json(&body).get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Unknown resources and wrong methods.
    let (status, _, _) = http_request(addr, "GET", "/campaigns/no-such-id", None).expect("404");
    assert_eq!(status, 404);
    let (status, _, _) = http_request(addr, "GET", "/nope", None).expect("404");
    assert_eq!(status, 404);
    let (status, headers, _) = http_request(addr, "DELETE", "/campaigns", None).expect("405");
    assert_eq!(status, 405);
    assert!(headers.iter().any(|(n, v)| n == "allow" && v == "POST"));

    // Hostile bodies surface the hardened parser's typed kinds.
    let (status, _, body) =
        http_request(addr, "POST", "/campaigns", Some("{\"a\": ")).expect("400");
    assert_eq!(status, 400);
    assert_eq!(
        body_json(&body).get("kind").and_then(Json::as_str),
        Some("syntax")
    );
    let dup = r#"{"name": "x", "name": "y", "cells": []}"#;
    let (status, _, body) = http_request(addr, "POST", "/campaigns", Some(dup)).expect("400");
    assert_eq!(status, 400);
    assert_eq!(
        body_json(&body).get("kind").and_then(Json::as_str),
        Some("duplicate_key")
    );
    let bomb = "[".repeat(200);
    let (status, _, body) = http_request(addr, "POST", "/campaigns", Some(&bomb)).expect("400");
    assert_eq!(status, 400);
    assert_eq!(
        body_json(&body).get("kind").and_then(Json::as_str),
        Some("depth_exceeded")
    );
    // Valid JSON, invalid spec.
    let (status, _, body) =
        http_request(addr, "POST", "/campaigns", Some("{\"zonk\": 1}")).expect("400");
    assert_eq!(status, 400);
    let message = body_json(&body)
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .to_owned();
    assert!(message.contains("invalid campaign spec"), "got: {message}");

    // Oversized bodies are refused from the Content-Length alone, before a
    // single body byte is read (so this request never sends one).
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /campaigns HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            dspatch_serve::http::MAX_BODY + 1
        )
        .expect("send headers");
        stream.flush().expect("flush");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        let (status, _, _) = dspatch_serve::parse_http_response(&raw).expect("parse");
        assert_eq!(status, 413);
    }

    // Draining: submissions are refused with 503, health says so, and the
    // server exits cleanly.
    let (status, _, _) = http_request(addr, "POST", "/admin/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    let (status, _, _) = http_request(addr, "POST", "/campaigns", Some("{}")).expect("503");
    assert_eq!(status, 503);
    server.begin_drain();
    server.wait();
}

#[test]
fn rate_limiting_is_deterministic_with_a_manual_clock() {
    let clock = Arc::new(ManualClock::new());
    let server = Server::start_with_clock(
        &ServerConfig {
            store_dir: temp_dir("ratelimit"),
            rate_burst: 2,
            rate_per_sec: 1.0,
            ..ServerConfig::default()
        },
        clock.clone(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    // The burst passes, the next request is throttled with Retry-After.
    for _ in 0..2 {
        let (status, _, _) = http_request(addr, "GET", "/results", None).expect("in burst");
        assert_eq!(status, 200);
    }
    let (status, headers, _) = http_request(addr, "GET", "/results", None).expect("throttled");
    assert_eq!(status, 429);
    assert!(headers.iter().any(|(n, v)| n == "retry-after" && v == "1"));

    // /healthz is never limited.
    let (status, _, _) = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);

    // Advancing the deterministic clock refills exactly one token.
    clock.advance_millis(1_000);
    let (status, _, _) = http_request(addr, "GET", "/results", None).expect("refilled");
    assert_eq!(status, 200);
    let (status, _, _) = http_request(addr, "GET", "/results", None).expect("throttled again");
    assert_eq!(status, 429);

    server.begin_drain();
    server.wait();
}
