//! End-to-end service round-trip over real TCP: boot `dspatch-serve` on an
//! ephemeral port, submit a smoke campaign, poll to completion, and assert
//!
//! 1. the results document is byte-identical to what the CLI path
//!    (`run_campaign_with` + `CampaignResult::to_json().render()`, exactly
//!    what `dspatch-lab --spec --format json` prints) produces, and
//! 2. identical resubmissions — same process *and* after a restart on the
//!    same store directory — perform **zero** new simulator invocations,
//!    proven with the global [`dspatch_sim::simulations_started`] counter.
//!
//! The simulation-counting assertions live in a single `#[test]` so no
//! concurrent test in this process can perturb the counter between the
//! before/after reads.

use dspatch_harness::campaign::{run_campaign_with, CampaignSpec, ExecOptions};
use dspatch_harness::Json;
use dspatch_serve::{http_request, Server, ServerConfig};
use dspatch_sim::simulations_started;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The smoke spec submitted over the wire — scale pinned (threads included)
/// so the rendered stats are deterministic across hosts.
const SPEC: &str = r#"{
    "name": "serve smoke",
    "scale": {"accesses_per_workload": 600, "workloads_per_category": 1, "mixes": 1, "threads": 2},
    "cells": [{
        "label": "cloud",
        "targets": {"category": "cloud"},
        "prefetchers": ["spp", "dspatch_plus_spp"],
        "config": {"base": "single_thread"},
        "baseline": true
    }]
}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dspatch-serve-{tag}-{}", std::process::id()));
    drop(std::fs::remove_dir_all(&dir));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn config(store_dir: PathBuf) -> ServerConfig {
    ServerConfig {
        store_dir,
        ..ServerConfig::default()
    }
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, _, body) = http_request(addr, "GET", path, None).expect("request");
    let text = String::from_utf8(body).expect("utf-8 body");
    let json = Json::parse(&text).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}\n{text}"));
    (status, json)
}

fn poll_done(addr: SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, json) = get_json(addr, &format!("/campaigns/{id}"));
        assert_eq!(status, 200, "status endpoint");
        match json.get("status").and_then(Json::as_str) {
            Some("done") => return,
            Some("failed") => panic!("campaign failed: {}", json.render()),
            _ => {}
        }
        assert!(Instant::now() < deadline, "campaign did not finish in time");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn percent_encode(text: &str) -> String {
    text.bytes()
        .map(|b| {
            if b.is_ascii_alphanumeric() || b"-_.~".contains(&b) {
                (b as char).to_string()
            } else {
                format!("%{b:02X}")
            }
        })
        .collect()
}

#[test]
fn round_trip_parity_and_zero_resimulation() {
    // The ground truth: the exact bytes `dspatch-lab --spec --format json`
    // would print (no store, no journal — the plain CLI path).
    let spec = CampaignSpec::parse(SPEC).expect("spec parses");
    let scale = spec
        .scale
        .as_ref()
        .expect("embedded scale")
        .resolve()
        .expect("scale");
    let expected = run_campaign_with(&spec, &scale, &ExecOptions::default())
        .expect("reference run")
        .to_json()
        .render();

    let store_dir = temp_dir("roundtrip");
    let server = Server::start(&config(store_dir.clone())).expect("server starts");
    let addr = server.local_addr();

    // Submit over real TCP; a fresh campaign is 202 Accepted.
    let (status, _, body) = http_request(addr, "POST", "/campaigns", Some(SPEC)).expect("submit");
    assert_eq!(
        status,
        202,
        "fresh submission: {}",
        String::from_utf8_lossy(&body)
    );
    let submitted = Json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("status JSON");
    let id = submitted
        .get("id")
        .and_then(Json::as_str)
        .expect("campaign id")
        .to_owned();

    let before = simulations_started();
    poll_done(addr, &id);
    assert!(
        simulations_started() > before,
        "the first run must actually simulate"
    );

    // Results are present until done (202 while queued/running is covered by
    // construction — poll_done raced through those), and byte-identical to
    // the CLI path once done.
    let (status, _, body) =
        http_request(addr, "GET", &format!("/campaigns/{id}/results"), None).expect("results");
    assert_eq!(status, 200);
    let served = String::from_utf8(body).expect("utf-8 results");
    assert_eq!(
        served, expected,
        "serve results must be byte-identical to the CLI document"
    );

    // The event stream replays the full history: started → cells → finished.
    let (status, headers, body) =
        http_request(addr, "GET", &format!("/campaigns/{id}/events"), None).expect("events");
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v == "chunked"));
    let events: Vec<Json> = String::from_utf8(body)
        .expect("utf-8 events")
        .lines()
        .map(|line| Json::parse(line).expect("event line is JSON"))
        .collect();
    let kind = |e: &Json| e.get("event").and_then(Json::as_str).map(str::to_owned);
    assert_eq!(kind(&events[0]).as_deref(), Some("started"));
    assert_eq!(
        kind(events.last().expect("events")).as_deref(),
        Some("finished")
    );
    assert!(
        events
            .iter()
            .filter(|e| kind(e).as_deref() == Some("cell"))
            .count()
            >= 3
    );

    // Resubmitting the identical spec in the same process attaches to the
    // existing campaign: 200, same id, zero new simulations.
    let before = simulations_started();
    let (status, _, body) = http_request(addr, "POST", "/campaigns", Some(SPEC)).expect("resubmit");
    assert_eq!(status, 200, "identical spec is already known");
    let resubmitted = Json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("JSON");
    assert_eq!(
        resubmitted.get("id").and_then(Json::as_str),
        Some(id.as_str())
    );
    assert_eq!(
        simulations_started(),
        before,
        "resubmission must not simulate"
    );

    // The flat query endpoint is a shim over the store-backed analytics
    // engine, so it lists one row per *stored simulation* — campaign rows
    // plus the memoized baselines (`stats.sims_run` of a fresh run).
    let expected_json = Json::parse(&expected).expect("expected parses");
    let stored_rows = expected_json
        .get("stats")
        .and_then(|stats| stats.get("sims_run"))
        .and_then(Json::as_u64)
        .expect("stats.sims_run") as usize;
    let matched = |path: &str| {
        let (status, json) = get_json(addr, path);
        assert_eq!(status, 200, "query {path}");
        json.get("matched").and_then(Json::as_u64).expect("matched") as usize
    };
    assert_eq!(matched("/results"), stored_rows);
    assert_eq!(matched("/results?figure=serve+smoke"), stored_rows);
    assert_eq!(matched("/results?figure=some+other+figure"), 0);
    let first_prefetcher = expected_json
        .get("rows")
        .and_then(|rows| match rows {
            Json::Arr(rows) => rows.first(),
            _ => None,
        })
        .and_then(|row| row.get("prefetcher"))
        .and_then(Json::as_str)
        .expect("row prefetcher")
        .to_owned();
    let prefetcher_rows = match expected_json.get("rows") {
        Some(Json::Arr(rows)) => rows
            .iter()
            .filter(|row| {
                row.get("prefetcher").and_then(Json::as_str) == Some(first_prefetcher.as_str())
            })
            .count(),
        _ => 0,
    };
    assert_eq!(
        matched(&format!(
            "/results?prefetcher={}",
            percent_encode(&first_prefetcher)
        )),
        prefetcher_rows
    );
    // `target` stays accepted as the legacy alias for `workload`.
    let first_target = expected_json
        .get("rows")
        .and_then(|rows| match rows {
            Json::Arr(rows) => rows.first(),
            _ => None,
        })
        .and_then(|row| row.get("target"))
        .and_then(Json::as_str)
        .expect("row target")
        .to_owned();
    assert!(
        matched(&format!(
            "/results?target={}",
            percent_encode(&first_target)
        )) > 0
    );

    // Graceful drain: /admin/shutdown flips the flag, wait() returns.
    let (status, _, _) = http_request(addr, "POST", "/admin/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    server.begin_drain();
    server.wait();

    // Restart on the same store directory: the recorded campaign replays
    // through the executor, every cell a store hit — zero simulations —
    // and the results document is still byte-identical.
    let before = simulations_started();
    let server = Server::start(&config(store_dir)).expect("server restarts");
    let addr = server.local_addr();
    let (_, _, body) = http_request(addr, "POST", "/campaigns", Some(SPEC)).expect("resubmit");
    let resubmitted = Json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("JSON");
    assert_eq!(
        resubmitted.get("id").and_then(Json::as_str),
        Some(id.as_str()),
        "content address is stable across restarts"
    );
    poll_done(addr, &id);
    assert_eq!(
        simulations_started(),
        before,
        "after a restart the store must serve every cell without simulating"
    );
    let (status, _, body) = http_request(addr, "GET", &format!("/campaigns/{id}/results"), None)
        .expect("results after restart");
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8(body).expect("utf-8"),
        expected,
        "store-served results must be byte-identical to the CLI document"
    );
    // The status document accounts for the cache: store hits, no fresh sims.
    let (_, status_json) = get_json(addr, &format!("/campaigns/{id}"));
    let stat = |key: &str| {
        status_json
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats.{key} in {}", status_json.render()))
    };
    assert_eq!(stat("fresh_sims"), 0);
    assert_eq!(stat("store_hits"), stat("sims_run"));

    server.begin_drain();
    server.wait();
}
