//! Request routing: URL space → campaign registry / result store / queue.
//!
//! Every endpoint answers JSON. Harness failures map onto HTTP statuses
//! through the PR 7 error taxonomy ([`error_status`]), mirroring the
//! `dspatch-lab` exit-code table: spec errors are the client's fault (400),
//! journal/store identity conflicts are 409, everything else on the error
//! path is the server's problem (500).

use crate::http::{Request, Response};
use crate::queue::{lock_unpoisoned, Campaign, Phase, ServeState, SubmitError, Submitted};
use crate::rate_limit::RateLimiter;
use dspatch_harness::analytics::{self, ColumnarView, Query, QueryFormat, QueryOutput};
use dspatch_harness::campaign::CampaignSpec;
use dspatch_harness::{ErrorClass, HarnessError, Json};
use std::sync::Arc;

/// What the connection handler should do with a routed request.
#[derive(Debug)]
pub enum Reply {
    /// Write this response and close.
    Full(Response),
    /// Stream the campaign's JSON-lines event feed (chunked) until it
    /// drains, then close.
    Events(Arc<Campaign>),
}

/// HTTP status for a typed harness failure, reusing the exit-code taxonomy.
pub fn error_status(error: &HarnessError) -> u16 {
    match error.class() {
        // The submitted spec is at fault.
        ErrorClass::Spec => 400,
        // The store/journal on disk belongs to different code or campaign.
        ErrorClass::Mismatch => 409,
        // I/O failures, corruption, and cell panics are server-side.
        ErrorClass::Io | ErrorClass::Corrupt | ErrorClass::Cell => 500,
    }
}

fn error_body(status: u16, message: &str) -> Response {
    let body = Json::obj([
        ("error", Json::str(message)),
        ("status", Json::num(f64::from(status))),
    ]);
    Response::json(status, body.render())
}

fn harness_error_body(error: &HarnessError) -> Response {
    let status = error_status(error);
    let body = Json::obj([
        ("error", Json::str(error.to_string())),
        ("class", Json::str(error.class().label())),
        ("status", Json::num(f64::from(status))),
        ("detail", error.to_json()),
    ]);
    Response::json(status, body.render())
}

fn method_not_allowed(allow: &str) -> Response {
    error_body(405, &format!("method not allowed; allowed: {allow}")).with_header("Allow", allow)
}

fn not_found(path: &str) -> Response {
    error_body(404, &format!("no such resource: {path}"))
}

/// Routes one parsed request. `client` keys the rate limiter (peer IP).
pub fn route(
    state: &Arc<ServeState>,
    limiter: &RateLimiter,
    client: &str,
    request: &Request,
) -> Reply {
    // /healthz must stay reachable for liveness probes even when a client
    // is being throttled.
    if request.path != "/healthz" {
        if let Err(retry_after) = limiter.try_acquire(client) {
            let response = error_body(429, "rate limit exceeded")
                .with_header("Retry-After", retry_after.to_string());
            return Reply::Full(response);
        }
    }
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match segments.as_slice() {
        ["healthz"] => match method {
            "GET" => Reply::Full(healthz(state)),
            _ => Reply::Full(method_not_allowed("GET")),
        },
        ["campaigns"] => match method {
            "POST" => Reply::Full(submit(state, &request.body)),
            _ => Reply::Full(method_not_allowed("POST")),
        },
        ["campaigns", id] => match method {
            "GET" => Reply::Full(status(state, id)),
            _ => Reply::Full(method_not_allowed("GET")),
        },
        ["campaigns", id, "events"] => match method {
            "GET" => match state.get(id) {
                Some(campaign) => Reply::Events(campaign),
                None => Reply::Full(not_found(&request.path)),
            },
            _ => Reply::Full(method_not_allowed("GET")),
        },
        ["campaigns", id, "results"] => match method {
            "GET" => Reply::Full(results_of(state, id)),
            _ => Reply::Full(method_not_allowed("GET")),
        },
        ["results"] => match method {
            "GET" => Reply::Full(query_results(state, request)),
            _ => Reply::Full(method_not_allowed("GET")),
        },
        ["query"] => match method {
            "GET" => Reply::Full(run_query(state, request)),
            _ => Reply::Full(method_not_allowed("GET")),
        },
        ["admin", "shutdown"] => match method {
            "POST" => Reply::Full(shutdown(state)),
            _ => Reply::Full(method_not_allowed("POST")),
        },
        _ => Reply::Full(not_found(&request.path)),
    }
}

fn healthz(state: &Arc<ServeState>) -> Response {
    let body = Json::obj([
        (
            "status",
            Json::str(if state.draining() { "draining" } else { "ok" }),
        ),
        ("campaigns", Json::num(state.campaigns().len() as f64)),
        ("stored_cells", Json::num(state.stored_cells() as f64)),
    ]);
    Response::json(200, body.render())
}

/// `POST /campaigns`: the body is a campaign spec document — the *same
/// bytes* `dspatch-lab --spec <file>` accepts, which is what makes CLI/serve
/// parity trivial to state and test.
fn submit(state: &Arc<ServeState>, body: &[u8]) -> Response {
    // Refuse before parsing: a draining server takes no new work at all.
    if state.draining() {
        return error_body(503, "server is draining; not accepting work");
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return error_body(400, "request body is not UTF-8"),
    };
    // Parse JSON first so syntax problems surface with the typed kind and
    // byte offset from the hardened parser.
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(err) => {
            let status = 400;
            let body = Json::obj([
                ("error", Json::str(err.to_string())),
                ("kind", Json::str(err.kind.label())),
                ("offset", Json::num(err.offset as f64)),
                ("status", Json::num(f64::from(status))),
            ]);
            return Response::json(status, body.render());
        }
    };
    let spec = match CampaignSpec::from_json(&json) {
        Ok(spec) => spec,
        Err(message) => return error_body(400, &format!("invalid campaign spec: {message}")),
    };
    match state.submit(spec) {
        Ok(submitted) => {
            let campaign = submitted.campaign();
            let status = match submitted {
                Submitted::New(_) => 202,
                Submitted::Existing(_) => 200,
            };
            Response::json(status, campaign.status_json().render())
                .with_header("Location", format!("/campaigns/{}", campaign.id))
        }
        Err(SubmitError::Spec(message)) => {
            error_body(400, &format!("invalid campaign scale: {message}"))
        }
        Err(SubmitError::Draining) => error_body(503, "server is draining; not accepting work"),
        Err(SubmitError::QueueFull { capacity }) => {
            error_body(503, &format!("queue full (capacity {capacity})"))
                .with_header("Retry-After", "1")
        }
    }
}

fn status(state: &Arc<ServeState>, id: &str) -> Response {
    match state.get(id) {
        Some(campaign) => Response::json(200, campaign.status_json().render()),
        None => not_found(&format!("/campaigns/{id}")),
    }
}

/// `GET /campaigns/:id/results`: once done, the body is the exact
/// `CampaignResult::to_json().render()` bytes — byte-identical to
/// `dspatch-lab --spec ... --format json` output for the same spec.
fn results_of(state: &Arc<ServeState>, id: &str) -> Response {
    let Some(campaign) = state.get(id) else {
        return not_found(&format!("/campaigns/{id}"));
    };
    match campaign.phase() {
        Phase::Done => match campaign.result_json() {
            Some(body) => Response::json(200, body),
            None => error_body(500, "completed campaign lost its result"),
        },
        Phase::Failed => match campaign.error() {
            Some(error) => harness_error_body(&error),
            None => error_body(500, "failed campaign lost its error"),
        },
        Phase::Queued | Phase::Running => {
            Response::json(202, campaign.status_json().render()).with_header("Retry-After", "1")
        }
    }
}

/// Loads the analytics view from the shared result store. The lock is held
/// only for the copy into columns; queries then run lock-free.
fn load_view(state: &Arc<ServeState>) -> ColumnarView {
    let store = lock_unpoisoned(state.store());
    ColumnarView::from_store(&store)
}

/// `GET /query?...`: the full analytics engine over the result store.
///
/// Parameters are the exact grammar `dspatch-lab query` speaks
/// ([`Query::from_params`]): `where=FIELD<OP>VALUE`, bare `FIELD=VALUE`
/// filters, `group_by=`, `agg=FN:METRIC`, `trend=METRIC`,
/// `all_versions=1`, plus `format=table|json|csv` (default `json`). The
/// body is byte-identical to the CLI's output for the same query — both
/// call [`analytics::render`] on the same engine.
fn run_query(state: &Arc<ServeState>, request: &Request) -> Response {
    let mut format = QueryFormat::Json;
    let mut params: Vec<(String, String)> = Vec::new();
    for (key, value) in &request.query {
        if key == "format" {
            match QueryFormat::parse(value) {
                Some(parsed) => format = parsed,
                None => {
                    return error_body(400, &format!("unknown format '{value}' (table/json/csv)"))
                }
            }
        } else {
            params.push((key.clone(), value.clone()));
        }
    }
    let query = match Query::from_params(&params) {
        Ok(query) => query,
        Err(error) => return harness_error_body(&error),
    };
    let output = match load_view(state).run(&query) {
        Ok(output) => output,
        Err(error) => return harness_error_body(&error),
    };
    let body = analytics::render(&output, format);
    match format {
        QueryFormat::Json => Response::json(200, body),
        QueryFormat::Table | QueryFormat::Csv => Response::text(200, body),
    }
}

/// `GET /results?figure=&target=&workload=&prefetcher=&config=`: the
/// legacy flat row listing, now a compat shim over the same analytics
/// engine as `/query`. All filters are exact-match and optional; `figure`
/// matches the campaign name and `target` is an alias for `workload`.
/// Superseded duplicates are hidden — when the store holds the same cell
/// simulated by several code versions, only the **newest** `code_version`
/// rows count, unless `all_versions=1` asks for the full history.
fn query_results(state: &Arc<ServeState>, request: &Request) -> Response {
    let mut params: Vec<(String, String)> = Vec::new();
    for (key, value) in &request.query {
        let key = match key.as_str() {
            // The pre-analytics listing named the workload column "target".
            "target" => "workload",
            key @ ("figure" | "workload" | "prefetcher" | "config" | "all_versions") => key,
            other => {
                return error_body(
                    400,
                    &format!(
                        "unknown /results parameter '{other}' \
                         (figure/target/workload/prefetcher/config/all_versions; \
                         /query speaks the full grammar)"
                    ),
                )
            }
        };
        params.push((key.to_owned(), value.clone()));
    }
    let query = match Query::from_params(&params) {
        Ok(query) => query,
        Err(error) => return harness_error_body(&error),
    };
    let output = match load_view(state).run(&query) {
        Ok(output) => output,
        Err(error) => return harness_error_body(&error),
    };
    let QueryOutput { columns, rows } = output;
    let results: Vec<Json> = rows
        .into_iter()
        .map(|row| Json::Obj(columns.iter().cloned().zip(row).collect()))
        .collect();
    let body = Json::obj([
        ("matched", Json::num(results.len() as f64)),
        ("results", Json::Arr(results)),
    ]);
    Response::json(200, body.render())
}

fn shutdown(state: &Arc<ServeState>) -> Response {
    state.begin_drain();
    let body = Json::obj([("status", Json::str("draining"))]);
    Response::json(200, body.render())
}
