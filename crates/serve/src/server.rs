//! The server: a `TcpListener`, a small pool of acceptor/handler threads,
//! one campaign-runner thread, and a graceful drain protocol.
//!
//! One request per connection (`Connection: close`) keeps the hand-rolled
//! HTTP layer honest: no keep-alive bookkeeping, no pipelining, and a
//! handler thread is never parked on an idle socket. The runner executes
//! campaigns one at a time — the executor parallelizes *inside* a campaign
//! and owns the thread budget, so stacking campaigns would oversubscribe
//! the host.
//!
//! Drain protocol: [`Server::begin_drain`] flips the state flag, wakes the
//! runner, and unblocks every acceptor with a dummy self-connection.
//! Acceptors finish the request in hand and exit; the runner finishes the
//! queue (accepted work always completes) and exits; [`Server::wait`] joins
//! everything and returns, letting `main` exit 0.

use crate::http::{read_request, ChunkedWriter, RequestError, Response};
use crate::queue::ServeState;
use crate::rate_limit::{Clock, MonotonicClock, RateLimiter};
use crate::routes::{route, Reply};
use dspatch_harness::{HarnessError, Json};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration; every knob has a CLI flag in `dspatch-serve`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address.
    pub addr: String,
    /// Bind port; `0` picks an ephemeral port (tests).
    pub port: u16,
    /// Acceptor/handler threads.
    pub http_threads: usize,
    /// Bounded campaign queue length.
    pub queue_capacity: usize,
    /// Result-store directory (`results.jsonl` + `campaigns.jsonl`).
    pub store_dir: PathBuf,
    /// Rate-limit burst capacity per client; `0` disables limiting.
    pub rate_burst: u32,
    /// Rate-limit refill, tokens per second.
    pub rate_per_sec: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1".to_owned(),
            port: 0,
            http_threads: 2,
            queue_capacity: 16,
            store_dir: PathBuf::from("dspatch-store"),
            rate_burst: 0,
            rate_per_sec: 10.0,
        }
    }
}

/// A running server.
pub struct Server {
    state: Arc<ServeState>,
    local_addr: SocketAddr,
    acceptors: Vec<JoinHandle<()>>,
    runner: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("acceptors", &self.acceptors.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, replays recorded campaigns from the store directory, and
    /// spawns the acceptor pool and the runner. Pass a [`Clock`] to make
    /// rate-limit time deterministic in tests; production uses
    /// [`MonotonicClock`].
    ///
    /// # Errors
    ///
    /// Store open failures (typed) and bind failures (as
    /// [`HarnessError::Io`]).
    pub fn start(config: &ServerConfig) -> Result<Server, HarnessError> {
        Self::start_with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// [`Server::start`] with an explicit rate-limiter clock.
    ///
    /// # Errors
    ///
    /// See [`Server::start`].
    pub fn start_with_clock(
        config: &ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Server, HarnessError> {
        let state = ServeState::open(&config.store_dir, config.queue_capacity)?;
        let replayed = state.replay_recorded();
        if replayed > 0 {
            eprintln!("dspatch-serve: replaying {replayed} recorded campaign(s) from the store");
        }
        let bind_to = format!("{}:{}", config.addr, config.port);
        let listener = TcpListener::bind(&bind_to)
            .map_err(|error| HarnessError::io(&*bind_to, "bind", &error))?;
        let local_addr = listener
            .local_addr()
            .map_err(|error| HarnessError::io(&*bind_to, "local_addr", &error))?;
        let limiter = Arc::new(RateLimiter::new(
            config.rate_burst,
            config.rate_per_sec,
            clock,
        ));
        let mut acceptors = Vec::new();
        for worker in 0..config.http_threads.max(1) {
            let listener = listener
                .try_clone()
                .map_err(|error| HarnessError::io(&*bind_to, "clone listener", &error))?;
            let state = state.clone();
            let limiter = limiter.clone();
            let handle = std::thread::Builder::new()
                .name(format!("serve-http-{worker}"))
                .spawn(move || accept_loop(&listener, &state, &limiter))
                .map_err(|error| HarnessError::io("serve-http", "spawn", &error))?;
            acceptors.push(handle);
        }
        let runner_state = state.clone();
        let runner = std::thread::Builder::new()
            .name("serve-runner".to_owned())
            .spawn(move || runner_state.runner_loop())
            .map_err(|error| HarnessError::io("serve-runner", "spawn", &error))?;
        Ok(Server {
            state,
            local_addr,
            acceptors,
            runner: Some(runner),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service state.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Whether a drain has been requested (signal handler or
    /// `POST /admin/shutdown`).
    pub fn draining(&self) -> bool {
        self.state.draining()
    }

    /// Starts the graceful drain; idempotent. Acceptors stop taking
    /// connections, the runner finishes the queue.
    pub fn begin_drain(&self) {
        self.state.begin_drain();
        // Unblock every acceptor parked in accept(): each dummy connection
        // wakes exactly one.
        for _ in 0..self.acceptors.len() {
            drop(TcpStream::connect(self.local_addr));
        }
    }

    /// Joins every thread. Call after [`Server::begin_drain`]; returns when
    /// accepted work has completed and all sockets are closed.
    pub fn wait(mut self) {
        for handle in self.acceptors.drain(..) {
            drop(handle.join());
        }
        if let Some(runner) = self.runner.take() {
            drop(runner.join());
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServeState>, limiter: &Arc<RateLimiter>) {
    loop {
        if state.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                // A drain wake-up connection carries no request;
                // handle_connection reads EOF and returns immediately.
                handle_connection(stream, &peer, state, limiter);
            }
            Err(_) => {
                if state.draining() {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    peer: &SocketAddr,
    state: &Arc<ServeState>,
    limiter: &Arc<RateLimiter>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let request = match read_request(&mut reader) {
        Ok(Some(request)) => request,
        // Immediate EOF: a drain wake-up or a client that connected and
        // left. Nothing to answer.
        Ok(None) => return,
        Err(error) => {
            let (status, message) = match &error {
                RequestError::Bad(message) => (400, message.as_str()),
                RequestError::TooLarge(message) => (413, message.as_str()),
                RequestError::Io(_) => return,
            };
            let body = Json::obj([
                ("error", Json::str(message)),
                ("status", Json::num(f64::from(status))),
            ]);
            drop(Response::json(status, body.render()).write_to(&mut write_half));
            return;
        }
    };
    match route(state, limiter, &peer.ip().to_string(), &request) {
        Reply::Full(response) => {
            drop(response.write_to(&mut write_half));
        }
        Reply::Events(campaign) => {
            stream_events(&mut write_half, &campaign);
        }
    }
}

/// Streams a campaign's event feed as chunked JSON lines until the campaign
/// reaches a terminal phase and every event has been delivered.
fn stream_events(stream: &mut TcpStream, campaign: &Arc<crate::queue::Campaign>) {
    let Ok(mut writer) = ChunkedWriter::begin(stream, 200, "application/jsonl") else {
        return;
    };
    let mut cursor = 0;
    loop {
        let (events, drained) = campaign.wait_events(cursor);
        cursor += events.len();
        for event in events {
            if writer.chunk(format!("{event}\n").as_bytes()).is_err() {
                // Client went away; stop streaming.
                return;
            }
        }
        if drained {
            drop(writer.finish());
            return;
        }
    }
}

/// A decoded response: status, lower-cased headers, body (de-chunked).
pub type RawResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// A convenience used by tests and the binary: full request/response over a
/// fresh connection to `addr`.
///
/// # Errors
///
/// I/O errors talking to the server.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<RawResponse> {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr)?;
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: dspatch-serve\r\n");
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
        request.push_str("Content-Type: application/json\r\n");
    }
    request.push_str("Connection: close\r\n\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_http_response(&raw)
}

/// Parses a raw HTTP/1.1 response, decoding chunked transfer encoding.
///
/// # Errors
///
/// `InvalidData` on malformed responses.
pub fn parse_http_response(raw: &[u8]) -> std::io::Result<RawResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("non-UTF-8 headers"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let mut body = raw[split + 4..].to_vec();
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if chunked {
        body = decode_chunked(&body).ok_or_else(|| bad("bad chunked body"))?;
    }
    Ok((status, headers, body))
}

fn decode_chunked(mut body: &[u8]) -> Option<Vec<u8>> {
    let mut decoded = Vec::new();
    loop {
        let line_end = body.windows(2).position(|w| w == b"\r\n")?;
        let size_text = std::str::from_utf8(&body[..line_end]).ok()?;
        let size = usize::from_str_radix(size_text.trim(), 16).ok()?;
        body = &body[line_end + 2..];
        if size == 0 {
            return Some(decoded);
        }
        if body.len() < size + 2 {
            return None;
        }
        decoded.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
}
