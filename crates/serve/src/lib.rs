//! `dspatch-serve`: a resident campaign service over the harness.
//!
//! The CLI (`dspatch-lab`) runs one campaign and exits; this crate keeps the
//! harness resident behind a small HTTP API, backed by the same
//! content-addressed [`dspatch_harness::ResultStore`]. Submitting a spec
//! enqueues it; identical `(spec, scale, code-version)` cells — across
//! requests *and* restarts — are served from the store without touching the
//! simulator, and the results endpoint returns bytes identical to
//! `dspatch-lab --spec <file> --format json`.
//!
//! Everything is hand-rolled on `std` (TCP listener + worker pool, HTTP/1.1
//! subset, token-bucket rate limiting) under the workspace's no-registry
//! discipline — the same reason `harness::json` exists.
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /campaigns` | Submit a spec document; 202 new, 200 already known |
//! | `GET /campaigns/:id` | Status, per-cell progress, quarantines |
//! | `GET /campaigns/:id/events` | Chunked JSON-lines progress stream |
//! | `GET /campaigns/:id/results` | The exact CLI-parity results document |
//! | `GET /results?figure=&workload=&prefetcher=&config=` | Query all rows |
//! | `GET /healthz` | Liveness (never rate-limited) |
//! | `POST /admin/shutdown` | Begin graceful drain |

#![warn(missing_docs)]

pub mod http;
pub mod queue;
pub mod rate_limit;
pub mod routes;
pub mod server;

pub use queue::{Campaign, Phase, ServeState, SubmitError, Submitted};
pub use rate_limit::{Clock, ManualClock, MonotonicClock, RateLimiter};
pub use routes::error_status;
pub use server::{http_request, parse_http_response, Server, ServerConfig};
