//! The campaign registry and asynchronous job queue feeding the harness
//! executor.
//!
//! A submitted spec resolves to a campaign **id** — the PR 7
//! `campaign_fingerprint` over its normalized JSON and resolved scale — so
//! resubmitting an identical `(spec, scale)` is idempotent: the second
//! request attaches to the first campaign instead of enqueueing new work.
//! One runner thread drains the bounded queue a campaign at a time (the
//! executor already parallelizes *inside* a campaign and shares its thread
//! budget with per-job `effective_workers()`, so stacking campaigns would
//! oversubscribe), executing through [`run_campaign_with`] with the shared
//! content-addressed [`ResultStore`] — which is what makes results durable
//! *across* campaigns and process restarts.
//!
//! Completed clean campaigns are appended to `campaigns.jsonl` next to the
//! store; on startup the server resubmits them, and because every cell is a
//! store hit they re-materialize without a single simulator invocation.

use dspatch_harness::campaign::{
    run_campaign_with, CampaignResult, CampaignSpec, ExecOptions, ProgressEvent,
};
use dspatch_harness::journal::campaign_fingerprint;
use dspatch_harness::runner::RunScale;
use dspatch_harness::store::ResultStore;
use dspatch_harness::{HarnessError, Json, SharedStore};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// File (next to the result store) recording completed campaigns for
/// startup replay.
pub const CAMPAIGNS_FILE: &str = "campaigns.jsonl";

/// Lifecycle of a submitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepted, waiting for the runner.
    Queued,
    /// The runner is executing it.
    Running,
    /// Completed; results available.
    Done,
    /// The executor returned a typed error (bad spec, store/journal I/O).
    Failed,
}

impl Phase {
    /// Stable lower-case name used in status documents.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
        }
    }
}

#[derive(Debug, Default)]
struct Progress {
    completed: usize,
    total: usize,
    cached: usize,
}

#[derive(Debug)]
struct Inner {
    phase: Phase,
    progress: Progress,
    /// JSON-lines progress events, in emission order.
    events: Vec<String>,
    /// The completed result (queryable rows).
    result: Option<CampaignResult>,
    /// The exact `to_json().render()` bytes — byte-identical to
    /// `dspatch-lab --spec <file> --format json` for the same spec.
    result_json: Option<String>,
    error: Option<HarnessError>,
}

/// One submitted campaign: identity, spec, and observable state.
#[derive(Debug)]
pub struct Campaign {
    /// Content id: `campaign_fingerprint(spec, scale)`.
    pub id: String,
    /// The parsed spec.
    pub spec: CampaignSpec,
    /// The resolved scale (embedded `"scale"` or the smoke default — the
    /// same resolution `dspatch-lab --spec` applies with no flags).
    pub scale: RunScale,
    inner: Mutex<Inner>,
    notify: Condvar,
}

pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Campaign {
    fn new(id: String, spec: CampaignSpec, scale: RunScale) -> Self {
        Self {
            id,
            spec,
            scale,
            inner: Mutex::new(Inner {
                phase: Phase::Queued,
                progress: Progress::default(),
                events: Vec::new(),
                result: None,
                result_json: None,
                error: None,
            }),
            notify: Condvar::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        lock_unpoisoned(&self.inner).phase
    }

    /// The status document for `GET /campaigns/:id`.
    pub fn status_json(&self) -> Json {
        let inner = lock_unpoisoned(&self.inner);
        let mut entries = vec![
            ("id".to_owned(), Json::str(&self.id)),
            ("name".to_owned(), Json::str(&self.spec.name)),
            ("status".to_owned(), Json::str(inner.phase.label())),
            (
                "progress".to_owned(),
                Json::obj([
                    ("completed", Json::num(inner.progress.completed as f64)),
                    ("total", Json::num(inner.progress.total as f64)),
                    ("cached", Json::num(inner.progress.cached as f64)),
                ]),
            ),
        ];
        if let Some(result) = &inner.result {
            entries.push((
                "stats".to_owned(),
                Json::obj([
                    ("sims_run", Json::num(result.stats.sims_run as f64)),
                    (
                        "baseline_sims",
                        Json::num(result.stats.baseline_sims as f64),
                    ),
                    ("memo_hits", Json::num(result.stats.memo_hits as f64)),
                    ("journal_hits", Json::num(result.stats.journal_hits as f64)),
                    ("store_hits", Json::num(result.stats.store_hits as f64)),
                    ("fresh_sims", {
                        let cached = result.stats.journal_hits + result.stats.store_hits;
                        Json::num(result.stats.sims_run.saturating_sub(cached) as f64)
                    }),
                    ("threads", Json::num(result.stats.threads as f64)),
                ]),
            ));
            entries.push((
                "quarantined".to_owned(),
                Json::num(result.failures.len() as f64),
            ));
            if !result.failures.is_empty() {
                let quarantines = result.failures.iter().map(|failure| {
                    Json::obj([
                        ("target", Json::str(&failure.target)),
                        ("prefetcher", Json::str(&failure.prefetcher)),
                        ("config", Json::str(&failure.config)),
                        ("error", failure.error.to_json()),
                    ])
                });
                entries.push(("quarantines".to_owned(), Json::Arr(quarantines.collect())));
            }
        }
        if let Some(error) = &inner.error {
            entries.push(("error".to_owned(), error.to_json()));
        }
        Json::Obj(entries)
    }

    /// The exact results document, available once `Done`.
    pub fn result_json(&self) -> Option<String> {
        lock_unpoisoned(&self.inner).result_json.clone()
    }

    /// The completed result, for the `/results` query index.
    pub fn result(&self) -> Option<CampaignResult> {
        lock_unpoisoned(&self.inner).result.clone()
    }

    /// The failure, once `Failed`.
    pub fn error(&self) -> Option<HarnessError> {
        lock_unpoisoned(&self.inner).error.clone()
    }

    fn push_event(&self, event: Json) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.events.push(event.render_compact());
        drop(inner);
        self.notify.notify_all();
    }

    /// Returns events from index `from` on, blocking until at least one new
    /// event exists or the campaign reaches a terminal phase. The flag is
    /// `true` when no further events will ever arrive.
    pub fn wait_events(&self, from: usize) -> (Vec<String>, bool) {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            let terminal = matches!(inner.phase, Phase::Done | Phase::Failed);
            if inner.events.len() > from || terminal {
                let fresh = inner.events[from.min(inner.events.len())..].to_vec();
                let drained = terminal && from + fresh.len() >= inner.events.len();
                return (fresh, drained);
            }
            inner = match self.notify.wait_timeout(inner, Duration::from_millis(500)) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// Submission outcome: a fresh campaign or an attach to an identical one.
#[derive(Debug)]
pub enum Submitted {
    /// Newly enqueued.
    New(Arc<Campaign>),
    /// An identical `(spec, scale)` already exists (any phase) — the
    /// content-addressed idempotency the service is built around.
    Existing(Arc<Campaign>),
}

impl Submitted {
    /// The campaign either way.
    pub fn campaign(&self) -> &Arc<Campaign> {
        match self {
            Submitted::New(campaign) | Submitted::Existing(campaign) => campaign,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The spec embeds an invalid scale.
    Spec(String),
    /// The server is draining: no new work.
    Draining,
    /// The queue is at capacity.
    QueueFull {
        /// The configured bound.
        capacity: usize,
    },
}

#[derive(Default)]
struct Registry {
    by_id: HashMap<String, Arc<Campaign>>,
    order: Vec<String>,
}

/// Shared service state: the registry, the queue, and the durable store.
pub struct ServeState {
    store: SharedStore,
    store_dir: PathBuf,
    registry: Mutex<Registry>,
    queue: Mutex<VecDeque<Arc<Campaign>>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    draining: AtomicBool,
}

impl std::fmt::Debug for ServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("store_dir", &self.store_dir)
            .field("queue_capacity", &self.queue_capacity)
            .field("draining", &self.draining)
            .finish_non_exhaustive()
    }
}

impl ServeState {
    /// Opens (or creates) the store under `store_dir` and builds the state.
    ///
    /// # Errors
    ///
    /// Propagates [`ResultStore::open`] failures (I/O, corruption, foreign
    /// file).
    pub fn open(store_dir: &Path, queue_capacity: usize) -> Result<Arc<Self>, HarnessError> {
        let store = ResultStore::open(store_dir)?;
        Ok(Arc::new(Self {
            store: Arc::new(Mutex::new(store)),
            store_dir: store_dir.to_path_buf(),
            registry: Mutex::new(Registry::default()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            draining: AtomicBool::new(false),
        }))
    }

    /// The shared store handle.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Stored cell count (for `/healthz`).
    pub fn stored_cells(&self) -> usize {
        lock_unpoisoned(&self.store).len()
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins the drain: no new submissions; the runner exits once the
    /// queue is empty. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Campaign by id.
    pub fn get(&self, id: &str) -> Option<Arc<Campaign>> {
        lock_unpoisoned(&self.registry).by_id.get(id).cloned()
    }

    /// Every campaign, in submission order.
    pub fn campaigns(&self) -> Vec<Arc<Campaign>> {
        let registry = lock_unpoisoned(&self.registry);
        registry
            .order
            .iter()
            .filter_map(|id| registry.by_id.get(id).cloned())
            .collect()
    }

    /// Submits a spec. The id is the content fingerprint of `(spec, scale)`,
    /// so an identical resubmission attaches to the existing campaign.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(self: &Arc<Self>, spec: CampaignSpec) -> Result<Submitted, SubmitError> {
        let scale = match &spec.scale {
            Some(scale) => scale.resolve().map_err(SubmitError::Spec)?,
            None => RunScale::smoke(),
        };
        let id = campaign_fingerprint(&spec.to_json(), &scale);
        let mut registry = lock_unpoisoned(&self.registry);
        if let Some(existing) = registry.by_id.get(&id) {
            return Ok(Submitted::Existing(existing.clone()));
        }
        if self.draining() {
            return Err(SubmitError::Draining);
        }
        let mut queue = lock_unpoisoned(&self.queue);
        if queue.len() >= self.queue_capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.queue_capacity,
            });
        }
        let campaign = Arc::new(Campaign::new(id.clone(), spec, scale));
        registry.by_id.insert(id.clone(), campaign.clone());
        registry.order.push(id);
        queue.push_back(campaign.clone());
        drop(queue);
        drop(registry);
        self.queue_cv.notify_all();
        Ok(Submitted::New(campaign))
    }

    /// The runner loop: executes queued campaigns one at a time until a
    /// drain begins **and** the queue is empty (accepted work always
    /// completes — that is the graceful half of graceful drain).
    pub fn runner_loop(self: &Arc<Self>) {
        loop {
            let next = {
                let mut queue = lock_unpoisoned(&self.queue);
                loop {
                    if let Some(campaign) = queue.pop_front() {
                        break Some(campaign);
                    }
                    if self.draining() {
                        break None;
                    }
                    queue = match self
                        .queue_cv
                        .wait_timeout(queue, Duration::from_millis(200))
                    {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            };
            let Some(campaign) = next else { return };
            self.run_one(&campaign);
        }
    }

    fn run_one(self: &Arc<Self>, campaign: &Arc<Campaign>) {
        {
            let mut inner = lock_unpoisoned(&campaign.inner);
            inner.phase = Phase::Running;
        }
        campaign.notify.notify_all();

        let sink_campaign = campaign.clone();
        let opts = ExecOptions {
            store: Some(self.store.clone()),
            progress: Some(Arc::new(move |event: &ProgressEvent| {
                observe(&sink_campaign, event);
            })),
            ..ExecOptions::default()
        };
        match run_campaign_with(&campaign.spec, &campaign.scale, &opts) {
            Ok(result) => {
                let clean = result.failures.is_empty();
                {
                    let mut inner = lock_unpoisoned(&campaign.inner);
                    inner.result_json = Some(result.to_json().render());
                    inner.result = Some(result);
                    inner.phase = Phase::Done;
                }
                campaign.notify.notify_all();
                if clean {
                    self.record_for_replay(campaign);
                }
            }
            Err(error) => {
                campaign.push_event(Json::obj([
                    ("event", Json::str("failed")),
                    ("error", error.to_json()),
                ]));
                {
                    let mut inner = lock_unpoisoned(&campaign.inner);
                    inner.error = Some(error);
                    inner.phase = Phase::Failed;
                }
                campaign.notify.notify_all();
            }
        }
    }

    /// Appends a completed campaign to `campaigns.jsonl` so a restarted
    /// server re-materializes it from the store. Best-effort: a write
    /// failure costs restart warm-up, not correctness, so it is reported
    /// and swallowed.
    fn record_for_replay(&self, campaign: &Arc<Campaign>) {
        let line = Json::obj([(
            "campaign",
            Json::obj([
                ("id", Json::str(&campaign.id)),
                ("spec", campaign.spec.to_json()),
            ]),
        )])
        .render_compact();
        let path = self.store_dir.join(CAMPAIGNS_FILE);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut file| {
                file.write_all(line.as_bytes())?;
                file.write_all(b"\n")?;
                file.flush()
            });
        if let Err(error) = appended {
            eprintln!(
                "dspatch-serve: cannot record campaign {} in {}: {error}",
                campaign.id,
                path.display()
            );
        }
    }

    /// Resubmits every campaign recorded in `campaigns.jsonl`. Every cell is
    /// a store hit, so replayed campaigns re-materialize without simulator
    /// work. Malformed lines (at most a torn final append) are skipped.
    /// Returns how many campaigns were enqueued.
    pub fn replay_recorded(self: &Arc<Self>) -> usize {
        let path = self.store_dir.join(CAMPAIGNS_FILE);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return 0;
        };
        let mut enqueued = 0;
        for line in text.lines() {
            let Ok(json) = Json::parse(line) else {
                continue;
            };
            let Some(spec_json) = json.get("campaign").and_then(|c| c.get("spec")) else {
                continue;
            };
            let Ok(spec) = CampaignSpec::from_json(spec_json) else {
                continue;
            };
            if matches!(self.submit(spec), Ok(Submitted::New(_))) {
                enqueued += 1;
            }
        }
        enqueued
    }
}

/// Translates one executor [`ProgressEvent`] into the campaign's observable
/// progress counters and its JSON-lines event feed.
fn observe(campaign: &Arc<Campaign>, event: &ProgressEvent) {
    let json = match event {
        ProgressEvent::Started { total, cached } => {
            let mut inner = lock_unpoisoned(&campaign.inner);
            inner.progress.total = *total;
            inner.progress.cached = *cached;
            drop(inner);
            Json::obj([
                ("event", Json::str("started")),
                ("total", Json::num(*total as f64)),
                ("cached", Json::num(*cached as f64)),
            ])
        }
        ProgressEvent::CellFinished {
            key,
            target,
            prefetcher,
            config,
            outcome,
            completed,
            total,
        } => {
            let mut inner = lock_unpoisoned(&campaign.inner);
            inner.progress.completed = (*completed).max(inner.progress.completed);
            inner.progress.total = *total;
            drop(inner);
            Json::obj([
                ("event", Json::str("cell")),
                ("key", Json::str(key)),
                ("target", Json::str(target)),
                ("prefetcher", Json::str(prefetcher)),
                ("config", Json::str(config)),
                ("outcome", Json::str(outcome.label())),
                ("completed", Json::num(*completed as f64)),
                ("total", Json::num(*total as f64)),
            ])
        }
        ProgressEvent::Finished { sims, quarantined } => Json::obj([
            ("event", Json::str("finished")),
            ("sims", Json::num(*sims as f64)),
            ("quarantined", Json::num(*quarantined as f64)),
        ]),
    };
    campaign.push_event(json);
}
