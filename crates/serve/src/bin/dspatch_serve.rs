//! `dspatch-serve`: the resident campaign service.
//!
//! Usage:
//!
//! ```text
//! dspatch-serve --store DIR [--addr IP] [--port N] [--http-threads N]
//!               [--queue N] [--rate-burst N] [--rate-per-sec F]
//! ```
//!
//! Binds, prints `dspatch-serve listening on http://ADDR:PORT` to stdout
//! (scripts and tests scrape the ephemeral port from this line), and serves
//! until SIGTERM/SIGINT or `POST /admin/shutdown`, then drains gracefully —
//! accepted campaigns complete, sockets close, exit 0. Results live in
//! `DIR/results.jsonl` (content-addressed cells) and `DIR/campaigns.jsonl`
//! (completed campaigns, replayed on startup). Exit codes: 0 clean drain,
//! 2 usage error, otherwise the `HarnessError` class codes `dspatch-lab`
//! uses (4 I/O, 5 corrupt store, 6 store/code-version mismatch).

// Failures on serve paths carry typed context; panicking helpers are
// forbidden outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dspatch_serve::{Server, ServerConfig};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dspatch-serve --store DIR [--addr IP] [--port N] [--http-threads N]\n\
         \x20                  [--queue N] [--rate-burst N] [--rate-per-sec F]"
    );
    std::process::exit(2);
}

/// Usage-class failure: exit 2, like `dspatch-lab`.
fn fail(message: &str) -> ! {
    eprintln!("dspatch-serve: {message}");
    std::process::exit(2);
}

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM and SIGINT through the libc `signal`
/// symbol every Unix target links anyway — no crate dependency for two
/// constants and one call.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only touches an AtomicBool, which is
    // async-signal-safe; the handler address stays valid for the process
    // lifetime.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let mut config = ServerConfig::default();
    let mut store_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--store" => store_dir = Some(value("--store")),
            "--addr" => config.addr = value("--addr"),
            "--port" => {
                config.port = value("--port")
                    .parse()
                    .unwrap_or_else(|_| fail("--port needs an integer in 0..=65535"));
            }
            "--http-threads" => {
                config.http_threads = value("--http-threads")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| fail("--http-threads needs an integer >= 1"));
            }
            "--queue" => {
                config.queue_capacity = value("--queue")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| fail("--queue needs an integer >= 1"));
            }
            "--rate-burst" => {
                config.rate_burst = value("--rate-burst")
                    .parse()
                    .unwrap_or_else(|_| fail("--rate-burst needs an integer (0 disables)"));
            }
            "--rate-per-sec" => {
                config.rate_per_sec = value("--rate-per-sec")
                    .parse()
                    .ok()
                    .filter(|rate: &f64| rate.is_finite() && *rate >= 0.0)
                    .unwrap_or_else(|| fail("--rate-per-sec needs a non-negative number"));
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    let Some(store_dir) = store_dir else {
        eprintln!("dspatch-serve: --store DIR is required");
        usage();
    };
    config.store_dir = std::path::PathBuf::from(store_dir);

    install_signal_handlers();

    let server = match Server::start(&config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("dspatch-serve: {error}");
            std::process::exit(error.class().exit_code());
        }
    };
    println!("dspatch-serve listening on http://{}", server.local_addr());
    drop(std::io::stdout().flush());

    // Serve until a signal arrives or a client posts /admin/shutdown.
    while !SHUTDOWN.load(Ordering::SeqCst) && !server.draining() {
        std::thread::sleep(Duration::from_millis(100));
    }

    eprintln!("dspatch-serve: draining (accepted campaigns will complete)");
    server.begin_drain();
    server.wait();
    eprintln!("dspatch-serve: drained cleanly");
}
